#!/usr/bin/env python3
"""Heidi-style multimedia control messaging.

Models the paper's motivating application: Heidi, "a large in-house
project ... used to build and test prototype multimedia software
systems", where "all control messaging between distributed software
components utilized a simple text-based request-response protocol".

The scenario: a session controller wires a camera to a display,
subscribes a monitor for events (pass-by-reference callback), and ships
a codec configuration by value (`incopy`), all over the text protocol.

Run:  python examples/heidi_media_control.py
"""

import time

from repro.heidirmi import Orb
from repro.heidirmi.serialize import GLOBAL_TYPES
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

CONTROL_IDL = """\
module Heidi {
  enum StreamState { Idle, Streaming, Paused };

  struct Format {
    string codec;
    long width;
    long height;
    double fps;
  };

  exception NotConnected { string why; };

  interface Monitor {
    oneway void event(in string what);
  };

  interface Camera {
    Format format();
    void configure(incopy Monitor settingsSink);
    StreamState state();
  };

  interface Display {
    void attach(in Camera source) raises (NotConnected);
    void watch(in Monitor who);
    long frames_shown();
  };
};
"""


def build_classes(ns):
    Heidi_Format = ns["Heidi_Format"]
    Heidi_StreamState = ns["Heidi_StreamState"]
    Heidi_NotConnected = ns["Heidi_NotConnected"]

    class CameraImpl:
        _hd_type_id_ = "IDL:Heidi/Camera:1.0"

        def __init__(self):
            self._state = Heidi_StreamState.Idle
            self.config_log = []

        def format(self):
            return Heidi_Format(codec="mjpeg", width=640, height=480,
                                fps=25.0)

        def configure(self, settings_sink):
            self.config_log.append(type(settings_sink).__name__)

        def state(self):
            return self._state

    class DisplayImpl:
        _hd_type_id_ = "IDL:Heidi/Display:1.0"

        def __init__(self):
            self.source = None
            self.monitors = []
            self.frames = 0

        def attach(self, source):
            if source is None:
                raise Heidi_NotConnected(why="nil camera reference")
            self.source = source
            fmt = source.format()  # remote call back to the camera!
            for monitor in self.monitors:
                monitor.event(f"attached {fmt.codec} {fmt.width}x{fmt.height}")
            self.frames += 1

        def watch(self, who):
            self.monitors.append(who)

        def frames_shown(self):
            return self.frames

    class MonitorImpl:
        _hd_type_id_ = "IDL:Heidi/Monitor:1.0"

        def __init__(self, name):
            self.name = name
            self.events = []

        def event(self, what):
            self.events.append(what)
            print(f"  [{self.name}] event: {what}")

    return CameraImpl, DisplayImpl, MonitorImpl


class SerializableSettings:
    """A by-value codec settings object (the `incopy` path)."""

    def __init__(self, bitrate=2_000_000):
        self.bitrate = bitrate

    def _hd_type_id(self):
        return "IDL:Heidi/Settings:1.0"

    def _hd_marshal(self, call, orb):
        call.put_ulong(self.bitrate)

    @classmethod
    def _hd_unmarshal(cls, call, orb):
        return cls(call.get_ulong())

    # Quacks like a Monitor so the demo IDL accepts it for `incopy`.
    def event(self, what):
        pass


GLOBAL_TYPES.register_value("IDL:Heidi/Settings:1.0", SerializableSettings)


def main():
    spec = parse(CONTROL_IDL, filename="Control.idl")
    ns = generate_module(spec)
    CameraImpl, DisplayImpl, MonitorImpl = build_classes(ns)

    # Three address spaces, as three ORBs (camera node, display node,
    # and the controlling application).
    camera_orb = Orb(transport="tcp", protocol="text").start()
    display_orb = Orb(transport="tcp", protocol="text").start()
    control_orb = Orb(transport="tcp", protocol="text").start()

    try:
        camera_impl = CameraImpl()
        display_impl = DisplayImpl()
        camera_ref = camera_orb.register(camera_impl)
        display_ref = display_orb.register(display_impl)
        print(f"camera  @ {camera_ref.stringify()}")
        print(f"display @ {display_ref.stringify()}")

        camera = control_orb.resolve(camera_ref.stringify())
        display = control_orb.resolve(display_ref.stringify())

        # Subscribe a local monitor: the reference crosses two hops and
        # events come back to this very object.
        monitor = MonitorImpl("control-console")
        display.watch(monitor)

        # Wire the camera to the display: the display node itself calls
        # back into the camera node for the format.
        display.attach(camera)
        time.sleep(0.2)  # oneway events are asynchronous
        assert monitor.events, "expected an attach event"

        # Ship codec settings by value (incopy): the camera receives a
        # copy, no skeleton is ever created for the settings object.
        camera.configure(SerializableSettings(bitrate=4_000_000))
        assert camera_impl.config_log == ["SerializableSettings"]
        print(f"  camera received settings copy: {camera_impl.config_log}")

        # Declared exceptions propagate as Python exceptions.
        try:
            display.attach(None)
        except ns["Heidi_NotConnected"] as exc:
            print(f"  declared exception caught: NotConnected({exc.why!r})")

        print(f"  frames shown: {display.frames_shown()}")
        print("media control demo OK")
    finally:
        control_orb.stop()
        display_orb.stop()
        camera_orb.stop()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's §4.2 Tcl story: bridging a legacy Tcl GUI to the ORB.

Generates the IDL–Tcl mapping (Fig. 10 style stubs plus the small Tcl
ORB library) for a management interface, then — when tclsh is installed
— actually runs the generated Tcl "GUI" as a client of a Python server.

Run:  python examples/tcl_gui_bridge.py
"""

import shutil
import subprocess
import tempfile

from repro.heidirmi import HdSkel, Orb
from repro.heidirmi.serialize import GLOBAL_TYPES
from repro.idl import parse
from repro.mappings import get_pack

MGMT_IDL = """\
interface NodeManager {
  string status(in string node);
  long restart(in string node);
  void log(in string line);
};
"""

TYPE_ID = "IDL:NodeManager:1.0"


class NodeManager_skel(HdSkel):
    _hd_type_id_ = TYPE_ID
    _hd_operations_ = (
        ("status", "_op_status"),
        ("restart", "_op_restart"),
        ("log", "_op_log"),
    )

    def _op_status(self, call, reply):
        reply.put_string(self.impl.status(call.get_string()))

    def _op_restart(self, call, reply):
        reply.put_long(self.impl.restart(call.get_string()))

    def _op_log(self, call, reply):
        self.impl.log(call.get_string())


GLOBAL_TYPES.register_interface(TYPE_ID, skeleton_class=NodeManager_skel)


class NodeManagerImpl:
    def __init__(self):
        self.lines = []

    def status(self, node):
        return f"{node}: healthy"

    def restart(self, node):
        return 1

    def log(self, line):
        self.lines.append(line)


TCL_GUI = """
source "{gen}/orb.tcl"
source "{gen}/NodeManager.tcl"

# ---- the "legacy management GUI", scripted ----
set mgr [createStub "{ref}"]
puts "GUI> status video0  -> [$mgr status video0]"
puts "GUI> restart video0 -> [$mgr restart video0]"
$mgr log "operator clicked restart"
puts "GUI> done"
"""


def main():
    pack = get_pack("tcl_orb")
    spec = parse(MGMT_IDL, filename="NodeManager.idl")
    sink = pack.generate(spec)

    print("Generated Tcl files:")
    for name, text in sink.files().items():
        lines = len(text.splitlines())
        print(f"  {name:20s} {lines:4d} lines")
    print()
    print("Fig. 10-style stub excerpt:")
    stub_text = sink.files()["NodeManager.tcl"]
    for line in stub_text.splitlines()[:14]:
        print(f"  {line}")
    print("  ...")

    if shutil.which("tclsh") is None:
        print("\n(tclsh not installed — skipping the live bridge run)")
        print("tcl bridge demo OK")
        return

    with tempfile.TemporaryDirectory() as gen_dir:
        sink.write_to(gen_dir)
        server = Orb(transport="tcp", protocol="text").start()
        impl = NodeManagerImpl()
        ref = server.register(impl, type_id=TYPE_ID)
        try:
            script = TCL_GUI.format(gen=gen_dir, ref=ref.stringify())
            result = subprocess.run(
                ["tclsh"], input=script, capture_output=True, text=True,
                timeout=30,
            )
            print("\nLive Tcl GUI session against the Python server:")
            for line in result.stdout.splitlines():
                print(f"  {line}")
            if result.returncode != 0:
                print(f"  tcl stderr: {result.stderr}")
            print(f"  server received log lines: {impl.lines}")
        finally:
            server.stop()
    print("tcl bridge demo OK")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Writing a brand-new IDL mapping without touching the compiler.

The paper's central claim: "an IDL mapping can easily be specified and
customized by writing an appropriate template."  This example defines a
complete new mapping — Markdown API documentation — at run time: a
template string plus three small map functions, registered as a pack.
No parser or code-generator changes.

Run:  python examples/custom_mapping.py
"""

from repro.idl import parse
from repro.mappings.base import MappingPack
from repro.mappings.registry import register_pack

SERVICE_IDL = """\
module Billing {
  enum Currency { USD, EUR, JPY };
  struct Invoice { string id; double total; Currency currency; };
  exception Overdue { string invoice_id; long days; };
  interface Ledger {
    Invoice lookup(in string invoice_id) raises (Overdue);
    double balance(in Currency currency = Billing::USD);
    oneway void audit_note(in string text);
    readonly attribute long invoice_count;
  };
};
"""

#: The whole mapping is this template...
DOC_TEMPLATE = """\
@openfile ${basename}.md
# API reference for `${idlFile}`

@foreach allEnumList
## enum `${enumName}`  \\
<sub>${repoId}</sub>

@foreach members -ifMore ', '
`${member}`${ifMore}\\
@end members


@end allEnumList
@foreach allStructList
## struct `${structName}`  \\
<sub>${repoId}</sub>

| field | type |
|---|---|
@foreach memberList -map memberType Doc::MapType
| `${memberName}` | ${memberType} |
@end memberList

@end allStructList
@foreach allExceptionList
## exception `${exceptionName}`

@foreach memberList -map memberType Doc::MapType
- `${memberName}`: ${memberType}
@end memberList

@end allExceptionList
@foreach allInterfaceList
## interface `${interfaceName}`  \\
<sub>${repoId}</sub>

@foreach methodList -map returnType Doc::MapType -map onewayNote Doc::MapOneway
### `${methodName}(\\
@foreach paramList -ifMore ', ' -map paramType Doc::MapType
${paramName}: ${paramType}\\
@if ${defaultParam} != ""
 = ${defaultParam}\\
@fi
${ifMore}\\
@end paramList
) -> ${returnType}`${onewayNote}

@if ${raises} != ""
Raises: ${raises}

@fi
@end methodList
@foreach attributeList -map attributeType Doc::MapType
### attribute `${attributeName}: ${attributeType}` (${attributeQualifier})

@end attributeList
@end allInterfaceList
@closefile
"""

#: ...plus these map functions.
_DOC_TYPES = {
    "long": "integer (32-bit)",
    "ulong": "integer (32-bit, unsigned)",
    "short": "integer (16-bit)",
    "double": "number (64-bit float)",
    "float": "number (32-bit float)",
    "boolean": "boolean",
    "string": "text",
    "void": "nothing",
}


def map_type(value, ctx):
    category = ctx.node.get("type") if ctx.node is not None else ""
    if category in ("objref", "enum", "struct"):
        return f"[`{value}`](#{str(value).split('::')[-1].lower()})"
    if category in ("sequence", "alias"):
        return f"list of `{value}`"
    return _DOC_TYPES.get(category, f"`{value}`")


def map_oneway(value, ctx):
    if ctx.node is not None and ctx.node.get("oneway"):
        return "  — *oneway: fire and forget*"
    return ""


@register_pack
class MarkdownDocPack(MappingPack):
    """A mapping pack defined entirely in this example script."""

    name = "markdown_doc"
    language = "Markdown"
    description = "IDL -> Markdown API documentation (custom-mapping demo)"
    type_table = _DOC_TYPES

    def register_maps(self, registry):
        registry.register("Doc::MapType", map_type)
        registry.register("Doc::MapOneway", map_oneway)

    def load_template_source(self, template_name):
        if template_name == "main.tmpl":
            return DOC_TEMPLATE
        raise KeyError(template_name)


def main():
    spec = parse(SERVICE_IDL, filename="Billing.idl")
    pack = MarkdownDocPack()
    sink = pack.generate(spec)
    document = sink.files()["Billing.md"]
    print(document)
    assert "## interface `Ledger`" in document
    assert "*oneway: fire and forget*" in document
    print("-" * 60)
    print("custom mapping demo OK — a whole new language mapping from one")
    print("template and two map functions, zero compiler changes.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Switching the ORB protocol under unchanged stubs: text ↔ GIOP/IIOP.

The paper's §4.2 ("an IIOP compatible tcl ORB") and §6 ("minimal,
real-time ORBs based on IIOP") motivate a standard binary protocol.
This example runs the *same* generated stubs twice — once over the
telnet-friendly text protocol, once over GIOP 1.0 with CDR marshalling —
and prints the corresponding IOR.

Run:  python examples/iiop_interop.py
"""

from repro.giop import ior_from_reference, reference_from_ior, IOR
from repro.heidirmi import Orb
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

BANK_IDL = """\
module Bank {
  interface Account {
    double balance();
    double deposit(in double amount);
    string owner();
  };
};
"""


class AccountImpl:
    _hd_type_id_ = "IDL:Bank/Account:1.0"

    def __init__(self):
        self._balance = 100.0

    def balance(self):
        return self._balance

    def deposit(self, amount):
        self._balance += amount
        return self._balance

    def owner(self):
        return "Ada Lovelace"


def exercise(protocol):
    print(f"--- protocol: {protocol} ---")
    server = Orb(transport="tcp", protocol=protocol).start()
    client = Orb(transport="tcp", protocol=protocol)
    try:
        reference = server.register(AccountImpl())
        print(f"  HeidiRMI reference: {reference.stringify()}")
        account = client.resolve(reference.stringify())
        print(f"  owner   : {account.owner()}")
        print(f"  balance : {account.balance():.2f}")
        print(f"  deposit : {account.deposit(42.5):.2f}")
        return reference
    finally:
        client.stop()
        server.stop()


def main():
    generate_module(parse(BANK_IDL, filename="Bank.idl"))

    exercise("text")
    reference = exercise("giop")

    # The same object named the CORBA way: a stringified IOR whose IIOP
    # profile carries host, port and object key.
    ior = ior_from_reference(reference)
    stringified = ior.stringify()
    print("--- CORBA-style IOR for the last reference ---")
    print(f"  {stringified[:64]}...")
    parsed = IOR.parse(stringified)
    profile = parsed.iiop_profile()
    print(f"  type_id    : {parsed.type_id}")
    print(f"  IIOP host  : {profile.host}:{profile.port}")
    print(f"  object key : {profile.object_key!r}")
    assert reference_from_ior(parsed) == reference
    print("iiop interop demo OK")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: the paper's pipeline end to end in one script.

1. Parse the paper's A.idl (with the `incopy` and default-parameter
   extensions).
2. Generate the HeidiRMI C++ mapping — the output is the paper's Fig. 3.
3. Generate the live Python mapping and make an actual remote call
   over TCP with the text protocol.

Run:  python examples/quickstart.py
"""

from repro.idl import parse
from repro.mappings import get_pack
from repro.mappings.python_rmi import generate_module
from repro.heidirmi import Orb

A_IDL = """\
module Heidi {
  interface S;
  enum Status {Start, Stop};
  typedef sequence<S> SSequence;
  interface A : S
  {
    void f(in A a);
    void g(incopy S s);
    void p(in long l = 0);
    void q(in Status s = Heidi::Start);
    readonly attribute Status button;
    void s(in boolean b = TRUE);
    void t(in SSequence s);
  };
  interface S { };
};
"""


def show_cpp_mapping(spec):
    print("=" * 72)
    print("Custom HeidiRMI C++ mapping (paper Fig. 3) — template-generated")
    print("=" * 72)
    files = get_pack("heidi_cpp").generate(spec).files()
    print(files["A.hh"])


def run_live_call(spec):
    print("=" * 72)
    print("Live call through the generated Python mapping")
    print("=" * 72)
    ns = generate_module(spec)
    Heidi_Status = ns["Heidi_Status"]

    class AImpl:
        """A legacy-style implementation: no generated base required."""

        _hd_type_id_ = "IDL:Heidi/A:1.0"

        def f(self, a):
            print(f"  server: f(a={a!r})")

        def g(self, s):
            print(f"  server: g(s={s!r})")

        def p(self, l):
            print(f"  server: p(l={l})")

        def q(self, s):
            name = Heidi_Status.MEMBERS[s]
            print(f"  server: q(s={name})")

        def s(self, b):
            print(f"  server: s(b={b})")

        def t(self, seq):
            print(f"  server: t({len(seq)} element(s))")

        def get_button(self):
            return Heidi_Status.Start

    server = Orb(transport="tcp", protocol="text").start()
    client = Orb(transport="tcp", protocol="text")
    try:
        reference = server.register(AImpl())
        print(f"  stringified reference: {reference.stringify()}")
        a = client.resolve(reference.stringify())
        a.p()          # default parameter l = 0
        a.p(42)
        a.q()          # default parameter s = Heidi::Start
        a.s(False)
        a.t([])
        button = a.get_button()
        print(f"  client: GetButton() -> {Heidi_Status.MEMBERS[button]}")
    finally:
        client.stop()
        server.stop()


def main():
    spec = parse(A_IDL, filename="A.idl")
    show_cpp_mapping(spec)
    run_live_call(spec)
    print("\nquickstart OK")


if __name__ == "__main__":
    main()

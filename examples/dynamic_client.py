#!/usr/bin/env python3
"""A generic object browser: no generated stubs, only the IR.

The paper (§5) describes OmniBroker's persistent Interface Repository
"in support of a distributed development environment".  This example
shows what that buys: a client that has *no generated code at all* —
it loads interface metadata from a persisted IR directory and invokes
operations dynamically, like a management console attaching to an
arbitrary CORBA object.

Run:  python examples/dynamic_client.py
"""

import tempfile

from repro.est import InterfaceRepository
from repro.heidirmi import Orb
from repro.heidirmi.dii import DynamicCaller
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

DEVICE_IDL = """\
module Dev {
  enum Power { Off, On, Standby };
  struct Info { string model; long firmware; };
  interface Device {
    Info info();
    Power power();
    void set_power(in Power p);
    long uptime_seconds();
    readonly attribute string serial;
  };
};
"""


class DeviceImpl:
    _hd_type_id_ = "IDL:Dev/Device:1.0"

    def __init__(self, ns):
        self.ns = ns
        self._power = ns["Dev_Power"].On

    def info(self):
        return self.ns["Dev_Info"](model="HD-9000", firmware=42)

    def power(self):
        return self._power

    def set_power(self, p):
        self._power = p

    def uptime_seconds(self):
        return 86_400

    def get_serial(self):
        return "SN-0451"


def main():
    spec = parse(DEVICE_IDL, filename="Dev.idl")

    # --- the "server side of the organisation": has generated code ----
    ns = generate_module(spec)
    server = Orb(transport="tcp", protocol="text").start()
    reference = server.register(DeviceImpl(ns))
    print(f"device online: {reference.stringify()}")

    # --- publish the interface metadata as a persistent IR ------------
    with tempfile.TemporaryDirectory() as ir_dir:
        publisher = InterfaceRepository()
        publisher.add(spec, name="Dev.idl")
        publisher.save(ir_dir)
        print(f"interface repository persisted to {ir_dir}")

        # --- the browser: a different process conceptually — it loads
        # the IR from disk and never imports any generated module ------
        repository = InterfaceRepository.load(ir_dir)
        client = Orb(transport="tcp", protocol="text")
        caller = DynamicCaller(client, repository)

        type_id = reference.type_id
        print(f"\nbrowsing {type_id}")
        print(f"  operations: {', '.join(caller.operations(type_id))}")

        info = caller.invoke(reference, "info")
        print(f"  info()            -> {info}")
        power_members = repository.lookup_scoped("Dev::Power").get("members")
        power = caller.invoke(reference, "power")
        print(f"  power()           -> {power_members[power]}")
        caller.invoke(reference, "set_power", "Standby")
        power = caller.invoke(reference, "power")
        print(f"  after set_power   -> {power_members[power]}")
        print(f"  uptime_seconds()  -> {caller.invoke(reference, 'uptime_seconds')}")
        print(f"  serial attribute  -> {caller.invoke(reference, '_get_serial')}")

        client.stop()
    server.stop()
    print("\ndynamic client demo OK — a stub-free client drove the object")
    print("entirely from persisted interface metadata.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The telnet anecdote, as a demo.

"Utilizing such a text-based protocol permitted a 'human' client to
telnet into the bootstrap port of a Heidi application and type in
simple HeidiRMI requests to debug the system" (paper, §4.2).

This script starts a server and then plays the human: raw lines typed
at the bootstrap port, with the server's readable replies printed.

Run:  python examples/telnet_debug.py
"""

from repro.heidirmi import Orb
from repro.heidirmi.transport import get_transport
from repro.idl import parse
from repro.mappings.python_rmi import generate_module

IDL = """\
interface Jukebox {
  string play(in string title);
  long queue_length();
  void stop();
};
"""


class JukeboxImpl:
    _hd_type_id_ = "IDL:Jukebox:1.0"

    def __init__(self):
        self.queue = ["blue danube", "take five"]

    def play(self, title):
        self.queue.append(title)
        return f"now playing: {title}"

    def queue_length(self):
        return len(self.queue)

    def stop(self):
        self.queue.clear()


def main():
    generate_module(parse(IDL, filename="Jukebox.idl"))
    server = Orb(transport="tcp", protocol="text").start()
    ref = server.register(JukeboxImpl())
    print(f"server ready; bootstrap port {server.port}")
    print(f"object reference: {ref.stringify()}")
    print()

    # The "human" session: exactly the lines one would type into telnet.
    session = [
        f"CALL {ref.stringify()} play moon%20river",
        f"CALL {ref.stringify()} queue_length",
        "what commands are there?",                     # a confused human
        f"CALL {ref.stringify()} selfdestruct",         # a hopeful human
        f"CALL {ref.stringify()} stop",
        f"CALL {ref.stringify()} queue_length",
    ]

    channel = get_transport("tcp").connect(*server.address)
    try:
        for line in session:
            print(f"human> {line}")
            channel.send(line.encode("ascii") + b"\n")
            print(f"orb  > {channel.recv_line().decode('ascii')}")
            print()
    finally:
        channel.close()
        server.stop()
    print("telnet demo OK — every reply was readable, and typos did not")
    print("kill the connection.")


if __name__ == "__main__":
    main()

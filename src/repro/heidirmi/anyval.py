"""Self-describing values: the IDL ``any`` type.

An ``any`` carries its own type tag on the wire, so both protocols can
transport values whose type is unknown at compile time (the mechanism a
``CORBA::Any``/``HdAny`` provides).  The supported value universe is
closed and self-describing:

====================  ===========================================
Python value          wire tag
====================  ===========================================
``None``              ``null``
``bool``              ``boolean``
``int``               ``long`` (``longlong`` outside 32-bit range)
``float``             ``double``
``str``               ``string``
``list``/``tuple``    ``sequence`` (elements are anys, recursively)
stub / reference      ``objref``
====================  ===========================================

Generated code calls :func:`put_any`/:func:`get_any` for parameters of
IDL type ``any``; plain Python values go in and come out — the tagging
is entirely the wire's business.
"""

from repro.heidirmi.errors import MarshalError
from repro.heidirmi.objref import ObjectReference
from repro.heidirmi.serialize import get_object, put_object

_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

_TAGS = ("null", "boolean", "long", "longlong", "double", "string",
         "sequence", "objref")


def tag_of(value):
    """The wire tag :func:`put_any` would choose for *value*."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        if _INT32_MIN <= value <= _INT32_MAX:
            return "long"
        if _INT64_MIN <= value <= _INT64_MAX:
            return "longlong"
        raise MarshalError(f"integer {value} exceeds 64 bits; no any tag")
    if isinstance(value, float):
        return "double"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (list, tuple)):
        return "sequence"
    if isinstance(value, ObjectReference) or hasattr(value, "_hd_ref"):
        return "objref"
    raise MarshalError(
        f"no any mapping for {type(value).__name__}; supported: None, bool, "
        "int, float, str, list/tuple, object references"
    )


def put_any(call, value, orb=None, _depth=0):
    """Marshal *value* with its type tag."""
    if _depth > 32:
        raise MarshalError("any nesting too deep (cycle?)")
    tag = tag_of(value)
    # The tag travels as an enum so the text wire shows the name while
    # CDR spends four bytes on the index.
    call.put_enum(tag, _TAGS.index(tag))
    if tag == "null":
        return
    if tag == "boolean":
        call.put_boolean(value)
    elif tag == "long":
        call.put_long(value)
    elif tag == "longlong":
        call.put_longlong(value)
    elif tag == "double":
        call.put_double(float(value))
    elif tag == "string":
        call.put_string(value)
    elif tag == "sequence":
        call.begin("any-sequence")
        call.put_ulong(len(value))
        for item in value:
            put_any(call, item, orb, _depth=_depth + 1)
        call.end()
    elif tag == "objref":
        put_object(call, value, orb)


def get_any(call, orb=None, registry=None, _depth=0):
    """Unmarshal a tagged value back into plain Python."""
    if _depth > 32:
        raise MarshalError("any nesting too deep")
    tag = _TAGS[call.get_enum(_TAGS)]
    if tag == "null":
        return None
    if tag == "boolean":
        return call.get_boolean()
    if tag == "long":
        return call.get_long()
    if tag == "longlong":
        return call.get_longlong()
    if tag == "double":
        return call.get_double()
    if tag == "string":
        return call.get_string()
    if tag == "sequence":
        call.begin("any-sequence")
        items = [
            get_any(call, orb, registry, _depth=_depth + 1)
            for _ in range(call.get_ulong())
        ]
        call.end()
        return items
    # objref
    return get_object(call, orb, registry=registry)

"""Abstract marshalling interface shared by all wire protocols.

A :class:`Marshaller` turns typed values into a payload; an
:class:`Unmarshaller` pulls typed values back out.  The ``Call`` object
(paper, Fig. 4) exposes exactly this surface — "functions for marshaling
and unmarshaling all primitive data types, as well as additional begin
and end functions that permit structuring of the call request so that
such composite data types as structs or sequences can be easily
represented".

Two implementations ship: the newline-terminated text format
(:mod:`repro.heidirmi.textwire`) and CDR (:mod:`repro.giop.cdr` via
:mod:`repro.giop.iiop`).
"""


class Marshaller:
    """Typed put-interface; subclasses encode into their wire format."""

    __slots__ = ()

    def put_boolean(self, value):
        raise NotImplementedError

    def put_octet(self, value):
        raise NotImplementedError

    def put_char(self, value):
        raise NotImplementedError

    def put_short(self, value):
        raise NotImplementedError

    def put_ushort(self, value):
        raise NotImplementedError

    def put_long(self, value):
        raise NotImplementedError

    def put_ulong(self, value):
        raise NotImplementedError

    def put_longlong(self, value):
        raise NotImplementedError

    def put_ulonglong(self, value):
        raise NotImplementedError

    def put_float(self, value):
        raise NotImplementedError

    def put_double(self, value):
        raise NotImplementedError

    def put_string(self, value):
        raise NotImplementedError

    def put_enum(self, name, index):
        """Enums carry both spellings: text writes *name*, CDR *index*."""
        raise NotImplementedError

    def put_objref(self, stringified):
        """A stringified object reference, or None for nil."""
        raise NotImplementedError

    def begin(self, name=""):
        """Open a composite value (struct/sequence/exception)."""
        raise NotImplementedError

    def end(self):
        """Close the innermost composite value."""
        raise NotImplementedError

    def payload(self):
        """The encoded payload bytes."""
        raise NotImplementedError


class Unmarshaller:
    """Typed get-interface matching :class:`Marshaller`."""

    __slots__ = ()

    def get_boolean(self):
        raise NotImplementedError

    def get_octet(self):
        raise NotImplementedError

    def get_char(self):
        raise NotImplementedError

    def get_short(self):
        raise NotImplementedError

    def get_ushort(self):
        raise NotImplementedError

    def get_long(self):
        raise NotImplementedError

    def get_ulong(self):
        raise NotImplementedError

    def get_longlong(self):
        raise NotImplementedError

    def get_ulonglong(self):
        raise NotImplementedError

    def get_float(self):
        raise NotImplementedError

    def get_double(self):
        raise NotImplementedError

    def get_string(self):
        raise NotImplementedError

    def get_enum(self, members):
        """Return the enum *index*; *members* is the name tuple."""
        raise NotImplementedError

    def get_objref(self):
        """A stringified reference or None for nil."""
        raise NotImplementedError

    def begin(self, name=""):
        raise NotImplementedError

    def end(self):
        raise NotImplementedError

    def at_end(self):
        """True when the payload is exhausted (used for optional data)."""
        raise NotImplementedError

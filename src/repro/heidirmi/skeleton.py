"""Server-side skeleton base class.

HeidiRMI skeletons *delegate* to the implementation object instead of
being inherited by it (paper, Fig. 2), so "no restructuring of the
existing class hierarchy is necessary".  Skeleton classes mirror the IDL
inheritance graph, and dispatching recurses up it: "The dispatch method
of A_skel first attempts to dispatch an incoming request to methods
defined in the interface A.  If this fails, then dispatching is
delegated to the dispatch method of S_skel, continuing recursively up
the skeleton class hierarchy.  If A inherits from more than one
interface, then dispatching is delegated to each of the corresponding
skeleton super-classes in order."
"""

from repro.heidirmi.dispatch import make_dispatcher
from repro.heidirmi.errors import MethodNotFound
from repro.heidirmi.serialize import get_object, put_object


class HdSkel:
    """Generic skeleton functionality; generated classes subclass this.

    A generated subclass declares:

    - ``_hd_type_id_`` — the interface's repository ID;
    - ``_hd_operations_`` — (wire-operation-name, method-name) pairs for
      the operations *declared by this interface itself*;
    - ``_hd_parent_skels_`` — skeleton classes of the direct IDL bases,
      in declaration order.
    """

    _hd_type_id_ = ""
    _hd_operations_ = ()
    _hd_parent_skels_ = ()

    def __init__(self, impl, orb, dispatch_strategy=None):
        #: The target object implementation; the skeleton only delegates.
        self.impl = impl
        self.orb = orb
        self._strategy = dispatch_strategy or (
            orb.dispatch_strategy if orb is not None else "hash"
        )
        # Resolution memo: operation -> unbound handler.  The recursive
        # walk up the skeleton hierarchy always lands on the same
        # handler for a given operation, so each name resolves once.
        self._handlers = {}

    @property
    def _orb(self):
        """Uniform ORB accessor shared with HdStub (generated code uses it)."""
        return self.orb

    # -- dispatcher construction ------------------------------------------

    @classmethod
    def _own_dispatcher(cls, strategy):
        """The dispatcher over *this class's own* operations, cached."""
        cache = cls.__dict__.get("_hd_dispatch_cache_")
        if cache is None:
            cache = {}
            setattr(cls, "_hd_dispatch_cache_", cache)
        dispatcher = cache.get(strategy)
        if dispatcher is None:
            entries = [
                (wire_name, method_name)
                for wire_name, method_name in cls.__dict__.get(
                    "_hd_operations_", cls._hd_operations_
                )
            ]
            dispatcher = make_dispatcher(strategy, entries)
            cache[strategy] = dispatcher
        return dispatcher

    # -- dispatching ---------------------------------------------------------

    def dispatch(self, call, reply):
        """Dispatch *call*; raises MethodNotFound if no class handles it."""
        handler = self._handlers.get(call.operation)
        if handler is not None:
            if call.trace_span is not None:
                call.trace_span.set("dispatch.path", "memo")
            handler(self, call, reply)
            return
        handler = self._resolve_handler(type(self), call.operation)
        if handler is not None:
            self._handlers[call.operation] = handler
            if call.trace_span is not None:
                call.trace_span.set("dispatch.path", "resolved")
            handler(self, call, reply)
            return
        if call.trace_span is not None:
            call.trace_span.set("dispatch.path", "builtin")
        if self._dispatch_builtin(call, reply):
            return
        raise MethodNotFound(call.operation, self._hd_type_id_)

    def _resolve_handler(self, skel_class, operation):
        """The recursive hierarchy walk, yielding the handler function."""
        dispatcher = skel_class._own_dispatcher(self._strategy)
        method_name = dispatcher.lookup(operation)
        if method_name is not None:
            return getattr(skel_class, method_name)
        for parent in skel_class.__dict__.get(
            "_hd_parent_skels_", skel_class._hd_parent_skels_
        ):
            handler = self._resolve_handler(parent, operation)
            if handler is not None:
                return handler
        return None

    def _dispatch_builtin(self, call, reply):
        """CORBA-style built-in operations every object answers.

        ``_is_a`` performs the dynamic type check *remotely* — the
        Heidi runtime type information consulted across the wire —
        and ``_non_existent`` is the standard liveness probe.
        """
        if call.operation == "_is_a":
            candidate = call.get_string()
            registry = self.orb.types if self.orb is not None else None
            if registry is not None:
                result = registry.is_a(self._hd_type_id_, candidate)
            else:
                result = candidate == self._hd_type_id_
            reply.put_boolean(result)
            return True
        if call.operation == "_non_existent":
            reply.put_boolean(False)
            return True
        return False

    def _dispatch_class(self, skel_class, call, reply):
        """Try *skel_class*'s own table, then its parents recursively."""
        dispatcher = skel_class._own_dispatcher(self._strategy)
        method_name = dispatcher.lookup(call.operation)
        if method_name is not None:
            handler = getattr(skel_class, method_name)
            handler(self, call, reply)
            return True
        for parent in skel_class.__dict__.get(
            "_hd_parent_skels_", skel_class._hd_parent_skels_
        ):
            if self._dispatch_class(parent, call, reply):
                return True
        return False

    def operations(self):
        """Every operation reachable through this skeleton's hierarchy."""
        names = []
        self._collect_operations(type(self), names)
        return names

    def _collect_operations(self, skel_class, names):
        for wire_name, _ in skel_class.__dict__.get(
            "_hd_operations_", skel_class._hd_operations_
        ):
            if wire_name not in names:
                names.append(wire_name)
        for parent in skel_class.__dict__.get(
            "_hd_parent_skels_", skel_class._hd_parent_skels_
        ):
            self._collect_operations(parent, names)

    # -- helpers used by generated operation methods ---------------------------

    def _put_object(self, call, obj, direction="in"):
        put_object(call, obj, self.orb, direction=direction)

    def _get_object(self, call):
        return get_object(call, self.orb,
                          registry=self.orb.types if self.orb else None)

    def __repr__(self):
        return (
            f"<{type(self).__name__} for {type(self.impl).__name__} "
            f"({self._hd_type_id_})>"
        )

"""Skeleton dispatch strategies.

"Many IDL compilers use string comparisons to implement the dispatching
logic in the skeleton.  Such a scheme can be very expensive for
interfaces with a large number of methods with long names.  Alternate
schemes that utilize nested comparisons, or a hash-table can result in
faster dispatching" (paper, Section 2, citing Flick).  All three schemes
are implemented here and are selectable per ORB or per skeleton; the
dispatch benchmark measures the claim.
"""


class Dispatcher:
    """Maps an operation name to its handler, or None."""

    strategy = "?"

    def __init__(self, entries):
        """*entries* is an iterable of (operation-name, handler) pairs."""
        raise NotImplementedError

    def lookup(self, operation):
        raise NotImplementedError

    def operations(self):
        """All operation names this dispatcher serves."""
        raise NotImplementedError


class LinearDispatcher(Dispatcher):
    """Sequential string comparison — the naive generated-code scheme."""

    strategy = "linear"

    def __init__(self, entries):
        self._entries = list(entries)

    def lookup(self, operation):
        for name, handler in self._entries:
            # Deliberate full string comparison per entry, as in the
            # strcmp-chain code the paper criticises.
            if name == operation:
                return handler
        return None

    def operations(self):
        return [name for name, _ in self._entries]


class NestedDispatcher(Dispatcher):
    """Binary search over sorted names — Flick's nested-comparison scheme.

    The generated C code would be a balanced tree of nested if/else
    string comparisons; an explicit binary search over a sorted array is
    the same comparison structure.
    """

    strategy = "nested"

    def __init__(self, entries):
        ordered = sorted(entries, key=lambda pair: pair[0])
        self._names = [name for name, _ in ordered]
        self._handlers = [handler for _, handler in ordered]

    def lookup(self, operation):
        low, high = 0, len(self._names) - 1
        while low <= high:
            mid = (low + high) // 2
            name = self._names[mid]
            if name == operation:
                return self._handlers[mid]
            if name < operation:
                low = mid + 1
            else:
                high = mid - 1
        return None

    def operations(self):
        return list(self._names)


class HashDispatcher(Dispatcher):
    """Hash-table lookup — O(1) expected."""

    strategy = "hash"

    def __init__(self, entries):
        self._table = dict(entries)

    def lookup(self, operation):
        return self._table.get(operation)

    def operations(self):
        return list(self._table)


_STRATEGIES = {
    "linear": LinearDispatcher,
    "nested": NestedDispatcher,
    "hash": HashDispatcher,
}


def make_dispatcher(strategy, entries):
    """Build a dispatcher; *strategy* is linear/nested/hash."""
    try:
        factory = _STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown dispatch strategy {strategy!r}; "
            f"choose from {sorted(_STRATEGIES)}"
        ) from None
    return factory(entries)


def available_strategies():
    return sorted(_STRATEGIES)

"""The ``Call`` object — the unit of a remote method invocation.

When a stub method is invoked "a new *Call* object that provides the
generic functionality for making a remote method call is created"
(paper, Fig. 4).  The stringified object reference of the target forms
the header of the call; parameters are marshalled into it; *invoking*
the call sends the request and yields a :class:`Reply`.

A ``Call`` delegates its typed put/get surface to the active protocol's
marshaller, so exactly the same stub code runs over the text protocol
and over GIOP.
"""

from repro.heidirmi.errors import MarshalError

#: Reply status values.
STATUS_OK = "OK"
STATUS_EXCEPTION = "EXC"
STATUS_ERROR = "ERR"


class _DelegatingWriter:
    """Shared put-surface that forwards to a marshaller."""

    __slots__ = ()

    def __init__(self, marshaller):
        self._m = marshaller

    def put_boolean(self, value):
        self._m.put_boolean(value)

    def put_octet(self, value):
        self._m.put_octet(value)

    def put_char(self, value):
        self._m.put_char(value)

    def put_short(self, value):
        self._m.put_short(value)

    def put_ushort(self, value):
        self._m.put_ushort(value)

    def put_long(self, value):
        self._m.put_long(value)

    def put_ulong(self, value):
        self._m.put_ulong(value)

    def put_longlong(self, value):
        self._m.put_longlong(value)

    def put_ulonglong(self, value):
        self._m.put_ulonglong(value)

    def put_float(self, value):
        self._m.put_float(value)

    def put_double(self, value):
        self._m.put_double(value)

    def put_string(self, value):
        self._m.put_string(value)

    def put_enum(self, name, index):
        self._m.put_enum(name, index)

    def put_objref(self, stringified):
        self._m.put_objref(stringified)

    def begin(self, name=""):
        self._m.begin(name)

    def end(self):
        self._m.end()

    def payload(self):
        return self._m.payload()

    def replay_into(self, marshaller):
        """Re-apply the recorded puts into another marshaller.

        Supported when the underlying marshaller records operations
        (GIOP needs this to re-encode parameters at the correct
        alignment after its variable-length header).
        """
        replay = getattr(self._m, "replay", None)
        if replay is None:
            raise MarshalError(
                f"{type(self._m).__name__} does not support replay"
            )
        replay(marshaller)


class _DelegatingReader:
    """Shared get-surface that forwards to an unmarshaller."""

    __slots__ = ()

    def __init__(self, unmarshaller):
        self._u = unmarshaller

    def get_boolean(self):
        return self._u.get_boolean()

    def get_octet(self):
        return self._u.get_octet()

    def get_char(self):
        return self._u.get_char()

    def get_short(self):
        return self._u.get_short()

    def get_ushort(self):
        return self._u.get_ushort()

    def get_long(self):
        return self._u.get_long()

    def get_ulong(self):
        return self._u.get_ulong()

    def get_longlong(self):
        return self._u.get_longlong()

    def get_ulonglong(self):
        return self._u.get_ulonglong()

    def get_float(self):
        return self._u.get_float()

    def get_double(self):
        return self._u.get_double()

    def get_string(self):
        return self._u.get_string()

    def get_enum(self, members):
        return self._u.get_enum(members)

    def get_objref(self):
        return self._u.get_objref()

    def begin(self, name=""):
        self._u.begin(name)

    def end(self):
        self._u.end()

    def at_end(self):
        return self._u.at_end()


class Call(_DelegatingWriter, _DelegatingReader):
    """An outgoing request (writer side) or an incoming one (reader side).

    Client side: construct with ``target``/``operation`` and a
    marshaller, put the parameters, then hand it to the ORB to invoke.
    Server side: the protocol builds it with an unmarshaller over the
    received payload; the skeleton gets the parameters back out.
    """

    # One Call per request on the hot path: keep instances dict-free.
    # _giop_request_id is GIOP's server-side stash of the incoming id.
    __slots__ = ("_m", "_u", "target", "operation", "oneway",
                 "request_id", "_giop_request_id",
                 "trace_context", "trace_span",
                 "deadline", "idempotent", "_wire_tail", "_dl_token")

    def __init__(self, target, operation, marshaller=None, unmarshaller=None,
                 oneway=False, request_id=None, idempotent=False):
        # The mixin __init__s are one-line slot stores; assign directly
        # (one Call per request — the two calls are measurable).
        if marshaller is not None:
            self._m = marshaller
        if unmarshaller is not None:
            self._u = unmarshaller
        if marshaller is None and unmarshaller is None:
            raise MarshalError("a Call needs a marshaller or an unmarshaller")
        #: Stringified object reference of the target (the Call header).
        self.target = target
        self.operation = operation
        self.oneway = oneway
        #: Correlation id for pipelined protocols (``text2``, GIOP);
        #: ``None`` on protocols without one (``text``) and on oneways.
        self.request_id = request_id
        #: Wire-propagated trace context token (``trace_id-span_id``):
        #: set by an observing client before send, recovered from the
        #: header by the server-side protocol parser; None when untraced.
        self.trace_context = None
        #: The in-process Span riding this call (client span on the
        #: sending side, server span while dispatching); never on wire.
        self.trace_span = None
        #: :class:`repro.resilience.Deadline` budget: set client-side
        #: before send (propagated as remaining ms on the wire),
        #: re-anchored server-side at parse time; None when unbounded.
        self.deadline = None
        #: Declared retry-safe: the resilient invoke path may retry
        #: this call under a RetryPolicy (oneways always qualify).
        self.idempotent = idempotent
        #: Text encoders' memo of the marshalled target/operation/args
        #: tail, so a retry re-enqueues the same bytes under a fresh
        #: request id instead of re-escaping and re-joining the tokens.
        self._wire_tail = None
        #: Pre-rendered ``dl=<ms>`` token, stamped by the resilient
        #: engine alongside a fresh default-budget deadline (the token
        #: for a full budget is attempt-invariant, so the plan renders
        #: it once).  None means the encoders compute remaining ms.
        self._dl_token = None

    @property
    def writable(self):
        return hasattr(self, "_m")

    @property
    def readable(self):
        return hasattr(self, "_u")

    # begin/end exist on both the writer and the reader surface; resolve
    # by which side this Call actually has (a request is one-sided).
    def begin(self, name=""):
        if hasattr(self, "_m"):
            self._m.begin(name)
        else:
            self._u.begin(name)

    def end(self):
        if hasattr(self, "_m"):
            self._m.end()
        else:
            self._u.end()


class Reply(_DelegatingWriter, _DelegatingReader):
    """The result of an invocation.

    ``status`` is ``OK`` (results follow), ``EXC`` (a declared user
    exception; ``repo_id`` names it and its members follow), or ``ERR``
    (a system-level failure; ``repo_id`` holds a category and the
    payload a message).
    """

    # ``retry_after`` is only ever assigned on overload-shed error
    # replies (server-side when shedding, GIOP decode from the HDRA
    # ServiceContext); it stays *unset* on the hot path — readers use
    # ``getattr(reply, "retry_after", None)`` so every OK reply skips
    # the store entirely.
    __slots__ = ("_m", "_u", "status", "repo_id", "request_id",
                 "retry_after")

    def __init__(self, status=STATUS_OK, repo_id="", marshaller=None,
                 unmarshaller=None, request_id=None):
        if marshaller is not None:
            self._m = marshaller
        if unmarshaller is not None:
            self._u = unmarshaller
        if marshaller is None and unmarshaller is None:
            raise MarshalError("a Reply needs a marshaller or an unmarshaller")
        self.status = status
        self.repo_id = repo_id
        #: Echoes the request's correlation id on pipelined protocols.
        self.request_id = request_id

    def begin(self, name=""):
        if hasattr(self, "_m"):
            self._m.begin(name)
        else:
            self._u.begin(name)

    def end(self):
        if hasattr(self, "_m"):
            self._m.end()
        else:
            self._u.end()

    @property
    def is_ok(self):
        return self.status == STATUS_OK

    @property
    def is_exception(self):
        return self.status == STATUS_EXCEPTION

    @property
    def is_error(self):
        return self.status == STATUS_ERROR

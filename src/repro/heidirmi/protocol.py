"""Pluggable ORB protocols.

"Most IDL compilers generate stubs and skeletons that utilize an
abstract interface to the ORB [... which] keeps the generated code
independent of any particular ORB protocol, permitting the utilization
of alternate protocols" (paper, Section 2).  :class:`Protocol` is that
abstract interface; stubs and skeletons only ever see Call/Reply.

Implementations: :class:`TextProtocol` here (the paper's newline
ASCII format), :class:`Text2Protocol` (the same token grammar framed
with a request id, enabling pipelining and connection multiplexing)
and :class:`repro.giop.iiop.GiopProtocol`.
"""

import itertools

from repro.heidirmi.call import (
    STATUS_ERROR,
    STATUS_EXCEPTION,
    STATUS_OK,
    Call,
    Reply,
)
from repro.heidirmi.errors import ProtocolError
from repro.heidirmi.textwire import (
    TextMarshaller,
    TextUnmarshaller,
    escape_token,
    unescape_token,
)
from repro.resilience.deadline import Deadline

#: Prefix of the optional trace-context header token.  A stringified
#: object reference always starts with ``@``, so a ``ctx=`` token in
#: target position is unambiguous — peers that never send it (or strip
#: it) interoperate with peers that do.  The token body is the pure-hex
#: ``trace_id-span_id`` pair (see ``repro.observe.context``), already
#: printable ASCII, so it needs no escaping.
_CTX_PREFIX = "ctx="

#: Prefix of the optional deadline header token, same design as
#: ``ctx=``: it sits between the verb (and id) and the ``@``-target, so
#: it can never be mistaken for either.  The body is the *remaining
#: budget* in whole milliseconds — a relative quantity that needs no
#: clock synchronisation; the server re-anchors it on its own monotonic
#: clock at parse time.
_DL_PREFIX = "dl="


def _parse_deadline_token(token):
    """``dl=<ms>`` → a server-side re-anchored Deadline."""
    try:
        ms = int(token[len(_DL_PREFIX):])
    except ValueError:
        raise ProtocolError(f"bad deadline token {token!r}") from None
    if ms < 0:
        raise ProtocolError(f"negative deadline {ms}ms")
    return Deadline.after(ms / 1000.0)

#: Memo for header tokens (targets, operation names): the same handful
#: of strings heads every request on a connection, so escaping each
#: once beats re-scanning them per call.  Bounded against churn.
_HEADER_ESCAPES = {}


def _escape_header(text):
    token = _HEADER_ESCAPES.get(text)
    if token is None:
        if len(_HEADER_ESCAPES) >= 4096:
            _HEADER_ESCAPES.clear()
        token = escape_token(text)
        _HEADER_ESCAPES[text] = token
    return token


class Protocol:
    """Encodes Calls and Replies onto a Channel."""

    name = "?"

    #: True when the protocol frames a request id on every two-way
    #: message, so replies can complete out of order and one channel can
    #: be shared by many concurrent callers.  Protocols that correlate
    #: purely by ordering (the original text protocol) leave this False.
    supports_multiplexing = False

    def next_request_id(self):
        """Allocate a correlation id (multiplexing protocols only)."""
        raise ProtocolError(
            f"protocol {self.name!r} has no request ids; "
            "it cannot be pipelined or multiplexed"
        )

    def new_marshaller(self):
        raise NotImplementedError

    def send_request(self, channel, call):
        raise NotImplementedError

    def recv_request(self, channel, object_exists=None):
        """Read one request; returns a readable Call.

        *object_exists* is an optional callable over the raw object key
        that protocols with locate machinery (GIOP) may consult; the
        text protocol has no such control messages and ignores it.
        """
        raise NotImplementedError

    def send_reply(self, channel, reply):
        raise NotImplementedError

    def recv_reply(self, channel):
        """Read one reply; returns a readable Reply."""
        raise NotImplementedError


class TextProtocol(Protocol):
    """The newline-terminated ASCII request/response protocol."""

    name = "text"

    def new_marshaller(self):
        return TextMarshaller()

    # -- requests ------------------------------------------------------------

    def send_request(self, channel, call):
        # Build the line in one pass at the token level; going through
        # payload() would encode and re-decode the same bytes.
        pieces = ["ONEWAY" if call.oneway else "CALL"]
        if call.trace_context is not None:
            # Optional service context: traced callers lead the header
            # with a ctx= token; untraced peers simply never emit one.
            pieces.append(_CTX_PREFIX + call.trace_context)
        if call.deadline is not None:
            pieces.append(_DL_PREFIX + str(call.deadline.remaining_ms()))
        pieces.append(_escape_header(call.target))
        pieces.append(_escape_header(call.operation))
        pieces += call._m.tokens()
        channel.send((" ".join(pieces) + "\n").encode("ascii"))

    def recv_request(self, channel, object_exists=None):
        line = channel.recv_line().decode("ascii", errors="replace")
        tokens = line.split()
        if not tokens:
            raise ProtocolError("empty request line")
        verb = tokens[0]
        if verb not in ("CALL", "ONEWAY"):
            raise ProtocolError(
                f"expected CALL or ONEWAY, got {verb!r} "
                "(request shape: CALL <objref> <operation> <args...>)"
            )
        head = 1
        trace_context = None
        deadline = None
        # Optional service-context tokens (ctx=, dl=) sit between the
        # verb and the target; a target is a stringified reference and
        # always starts with '@', so the scan is unambiguous.  Accept
        # them in either order.
        while len(tokens) > head:
            token = tokens[head]
            if token.startswith(_CTX_PREFIX):
                trace_context = token[len(_CTX_PREFIX):]
            elif token.startswith(_DL_PREFIX):
                deadline = _parse_deadline_token(token)
            else:
                break
            head += 1
        if len(tokens) < head + 2:
            raise ProtocolError("request needs an object reference and an operation")
        call = Call(
            unescape_token(tokens[head]),
            unescape_token(tokens[head + 1]),
            unmarshaller=TextUnmarshaller.adopt(tokens, head + 2),
            oneway=(verb == "ONEWAY"),
        )
        call.trace_context = trace_context
        call.deadline = deadline
        return call

    # -- replies ----------------------------------------------------------------

    def send_reply(self, channel, reply):
        pieces = ["RET", reply.status]
        if reply.status in (STATUS_EXCEPTION, STATUS_ERROR):
            pieces.append(escape_token(reply.repo_id))
        pieces += reply._m.tokens()
        channel.send((" ".join(pieces) + "\n").encode("ascii"))

    def recv_reply(self, channel):
        line = channel.recv_line().decode("ascii", errors="replace")
        tokens = line.split()
        if len(tokens) < 2 or tokens[0] != "RET":
            raise ProtocolError(f"malformed reply line {line!r}")
        status = tokens[1]
        if status == STATUS_OK:
            return Reply(
                status=STATUS_OK, unmarshaller=TextUnmarshaller.adopt(tokens, 2)
            )
        if status in (STATUS_EXCEPTION, STATUS_ERROR):
            if len(tokens) < 3:
                raise ProtocolError(f"{status} reply needs an identifier")
            return Reply(
                status=status,
                repo_id=unescape_token(tokens[2]),
                unmarshaller=TextUnmarshaller.adopt(tokens, 3),
            )
        raise ProtocolError(f"unknown reply status {status!r}")


class Text2Protocol(TextProtocol):
    """The text grammar framed with a request id (``text2``).

    Identical tokens and escapes to the classic protocol, but every
    two-way message leads with a decimal request id so replies can be
    correlated out of order::

        CALL2 <id> <objref> <operation> <token>...
        ONEWAY2 <objref> <operation> <token>...
        RET2 <id> OK <token>...
        RET2 <id> EXC <repo-id> <token>...
        RET2 <id> ERR <category> <message-token>

    Oneways carry no id — nothing ever correlates back to them.
    Request ids start at 1; **id 0 is reserved** for ``RET2 0 ERR``
    replies to requests the server could not parse (there is no id to
    echo), which a multiplexed client treats as a channel-level failure
    rather than an orphaned reply.  The wire stays one printable-ASCII
    line per message, so the telnet debugging story survives: a human
    types ``CALL2 7 ...`` and greps for ``RET2 7``.
    """

    name = "text2"
    supports_multiplexing = True

    def __init__(self):
        self._request_ids = itertools.count(1)

    def next_request_id(self):
        # next() on an itertools.count is atomic under the GIL, so the
        # hot path needs no lock here.
        return next(self._request_ids)

    # -- requests ------------------------------------------------------------

    def send_request(self, channel, call):
        if call.oneway:
            pieces = ["ONEWAY2"]
        else:
            if call.request_id is None:
                call.request_id = self.next_request_id()
            pieces = ["CALL2", str(call.request_id)]
        if call.trace_context is not None:
            # Same optional service-context slot as the classic text
            # protocol: right before the target, which always starts
            # with '@' and so can never read as a ctx= token.
            pieces.append(_CTX_PREFIX + call.trace_context)
        if call.deadline is not None:
            pieces.append(_DL_PREFIX + str(call.deadline.remaining_ms()))
        pieces.append(_escape_header(call.target))
        pieces.append(_escape_header(call.operation))
        pieces += call._m.tokens()
        channel.send((" ".join(pieces) + "\n").encode("ascii"))

    def recv_request(self, channel, object_exists=None):
        line = channel.recv_line().decode("ascii", errors="replace")
        tokens = line.split()
        if not tokens:
            raise ProtocolError("empty request line")
        verb = tokens[0]
        if verb == "CALL2":
            # Inlined _parse_id: this runs once per incoming request.
            try:
                request_id = int(tokens[1])
            except IndexError:
                raise ProtocolError("CALL2 needs a request id") from None
            except ValueError:
                raise ProtocolError(
                    f"bad request id {tokens[1]!r}"
                ) from None
            if request_id < 0:
                raise ProtocolError(f"negative request id {request_id}")
            head = 2
            oneway = False
        elif verb == "ONEWAY2":
            request_id = None
            head = 1
            oneway = True
        else:
            raise ProtocolError(
                f"expected CALL2 or ONEWAY2, got {verb!r} "
                "(request shape: CALL2 <id> <objref> <operation> <args...>)"
            )
        trace_context = None
        deadline = None
        # Same optional service-context scan as the classic protocol
        # (ctx= and dl= in either order before the '@'-target).
        while len(tokens) > head:
            token = tokens[head]
            if token.startswith(_CTX_PREFIX):
                trace_context = token[len(_CTX_PREFIX):]
            elif token.startswith(_DL_PREFIX):
                deadline = _parse_deadline_token(token)
            else:
                break
            head += 1
        if len(tokens) < head + 2:
            raise ProtocolError("request needs an object reference and an operation")
        call = Call(
            unescape_token(tokens[head]),
            unescape_token(tokens[head + 1]),
            unmarshaller=TextUnmarshaller.adopt(tokens, head + 2),
            oneway=oneway,
            request_id=request_id,
        )
        call.trace_context = trace_context
        call.deadline = deadline
        return call

    @staticmethod
    def _parse_id(token):
        if token is None:
            raise ProtocolError("CALL2 needs a request id")
        try:
            request_id = int(token)
        except ValueError:
            raise ProtocolError(f"bad request id {token!r}") from None
        if request_id < 0:
            raise ProtocolError(f"negative request id {request_id}")
        return request_id

    # -- replies ----------------------------------------------------------------

    def send_reply(self, channel, reply):
        # Id 0 is the reserved "no correlation" id: only error replies
        # to unparseable requests carry it (real ids start at 1), and
        # the client side treats an ERR so tagged as channel-level.
        request_id = reply.request_id if reply.request_id is not None else 0
        pieces = ["RET2", str(request_id), reply.status]
        if reply.status in (STATUS_EXCEPTION, STATUS_ERROR):
            pieces.append(escape_token(reply.repo_id))
        pieces += reply._m.tokens()
        channel.send((" ".join(pieces) + "\n").encode("ascii"))

    def recv_reply(self, channel):
        line = channel.recv_line().decode("ascii", errors="replace")
        tokens = line.split()
        if len(tokens) < 3 or tokens[0] != "RET2":
            raise ProtocolError(f"malformed reply line {line!r}")
        # Inlined _parse_id: this runs once per reply on the demux thread.
        try:
            request_id = int(tokens[1])
        except ValueError:
            raise ProtocolError(f"bad request id {tokens[1]!r}") from None
        if request_id < 0:
            raise ProtocolError(f"negative request id {request_id}")
        status = tokens[2]
        if status == STATUS_OK:
            return Reply(
                status=STATUS_OK,
                unmarshaller=TextUnmarshaller.adopt(tokens, 3),
                request_id=request_id,
            )
        if status in (STATUS_EXCEPTION, STATUS_ERROR):
            if len(tokens) < 4:
                raise ProtocolError(f"{status} reply needs an identifier")
            return Reply(
                status=status,
                repo_id=unescape_token(tokens[3]),
                unmarshaller=TextUnmarshaller.adopt(tokens, 4),
                request_id=request_id,
            )
        raise ProtocolError(f"unknown reply status {status!r}")


_PROTOCOLS = {"text": TextProtocol, "text2": Text2Protocol}


def get_protocol(name):
    """Look up a protocol by name; GIOP self-registers on import."""
    if name == "giop" and "giop" not in _PROTOCOLS:
        # Imported lazily so the text-only ORB has no GIOP footprint.
        from repro.giop.iiop import GiopProtocol

        _PROTOCOLS["giop"] = GiopProtocol
    factory = _PROTOCOLS.get(name)
    if factory is None:
        raise ProtocolError(f"unknown protocol {name!r}")
    return factory()


def register_protocol(name, factory):
    """Register a custom protocol (the configurable-ORB hook)."""
    _PROTOCOLS[name] = factory

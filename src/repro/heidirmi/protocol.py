"""Pluggable ORB protocols — thin byte-pumps over ``repro.wire``.

"Most IDL compilers generate stubs and skeletons that utilize an
abstract interface to the ORB [... which] keeps the generated code
independent of any particular ORB protocol, permitting the utilization
of alternate protocols" (paper, Section 2).  :class:`Protocol` is that
abstract interface; stubs and skeletons only ever see Call/Reply.

Since the sans-I/O refactor the parse/emit logic lives in the pure
state machines of :mod:`repro.wire` (``wire.text``, ``wire.giop``);
the classes here only *pump*: one blocking read per frame, fed into
the machine, one event out.  The same machines drive the asyncio
front-end in :mod:`repro.wire.aio` byte-chunk at a time — that is the
protocol/transport seam the paper claims, made literal.

Implementations: :class:`TextProtocol` here (the paper's newline
ASCII format), :class:`Text2Protocol` (the same token grammar framed
with a request id, enabling pipelining and connection multiplexing)
and :class:`repro.giop.iiop.GiopProtocol`.
"""

from repro.heidirmi.errors import CommunicationError, ProtocolError
from repro.heidirmi.textwire import TextMarshaller
from repro.wire import events as wire_events
from repro.wire.bufferplan import BufferPlan
from repro.wire.correlation import RequestIdAllocator
from repro.wire.text import (
    BYE_FRAME,
    BYE_LINE,
    Text2Wire,
    TextWire,
    encode_reply,
    encode_reply2,
    encode_request,
    encode_request2,
    parse_reply2_line,
    parse_reply_line,
    parse_request2_line,
    parse_request_id,
    parse_request_line,
)

#: Per-channel machine stash attributes.  Parse state is per direction
#: per connection, and one Protocol instance is shared across every
#: connection of an Orb, so the machines live on the channel — the same
#: idiom the GIOP scratch ids always used.  Delegating wrappers
#: (ChaosChannel) grow the attribute on the wrapper, which is exactly
#: the isolation the chaos layer wants.
_CLIENT_MACHINE = "_wire_client"
_SERVER_MACHINE = "_wire_server"


def send_frame(channel, data):
    """Flush one emitted frame to *channel*.

    Emitters return scatter-gather :class:`BufferPlan` objects.  Sinks
    that can flush a plan without joining it (the blocking channel's
    ``sendmsg`` path, the asyncio writer's ``writelines`` path, the
    communicator's coalescing buffers) advertise ``accepts_plans``;
    anything else — test sinks, third-party channels — receives the
    joined contiguous bytes, exactly what the pre-plan protocols sent.
    """
    if type(data) is BufferPlan and \
            not getattr(channel, "accepts_plans", False):
        data = data.to_bytes()
    channel.send(data)


def close_received(role, detail):
    """The blocking-API exception for an orderly close frame.

    The *role* decides what the close means: a client that receives one
    mid-wait lost nothing — the server is draining and explicitly hands
    the call back as a retryable failure (``kind="draining"``, which the
    default retry policy accepts and the flight recorder treats as
    clean).  A server that receives one is just watching its peer leave
    (``kind="peer-closed"``, routine, never a postmortem).
    """
    if role == "client":
        return CommunicationError(
            f"peer is draining: {detail}", kind="draining"
        )
    return CommunicationError(f"peer sent {detail}", kind="peer-closed")


def pump_event(channel, machine):
    """Block until *machine* yields one event, feeding exact frames.

    The machine says what it needs next (one line, or an exact byte
    count) and the channel's own blocking primitives fetch it — so the
    blocking stack performs the *same reads it always did* (same
    deadline enforcement, same chaos injection points, same
    ``has_buffered`` accounting) while all parsing happens sans-I/O.
    """
    if machine.has_buffered:
        event = machine.next_event()
        if event is not wire_events.NEED_DATA:
            return event
    while True:
        hint = machine.read_hint()
        if hint[0] == "line":
            event = machine.feed_line(channel.recv_line())
        else:
            event = machine.feed_frame(channel.recv_exact(hint[1]))
        if event is not wire_events.NEED_DATA:
            return event


def pump_line_event(channel, machine):
    """:func:`pump_event` specialised for line-hinted (text) machines.

    ``feed_line`` always produces an event from one complete line, so
    the hint round-trip disappears; only leftover buffered bytes (a
    driver that mixed in ``feed_bytes``) take the generic path.
    """
    if machine.has_buffered:
        event = machine.next_event()
        if event is not wire_events.NEED_DATA:
            return event
    return machine.feed_line(channel.recv_line())


def channel_machine(channel, role, factory):
    """The per-channel wire machine for *role*, built on first use.

    A channel carrying a flight recorder (``channel.flight``) hands it
    to the machine as its tap, so every event the machine emits lands
    in the ring with its exact frame bytes.
    """
    attribute = _CLIENT_MACHINE if role == "client" else _SERVER_MACHINE
    machine = getattr(channel, attribute, None)
    if machine is None:
        machine = factory(role)
        recorder = getattr(channel, "flight", None)
        if recorder is not None:
            machine.tap = recorder
        setattr(channel, attribute, machine)
    return machine


class Protocol:
    """Encodes Calls and Replies onto a Channel."""

    name = "?"

    #: True when the protocol frames a request id on every two-way
    #: message, so replies can complete out of order and one channel can
    #: be shared by many concurrent callers.  Protocols that correlate
    #: purely by ordering (the original text protocol) leave this False.
    supports_multiplexing = False

    #: The sans-I/O state machine class backing this protocol (a
    #: :class:`repro.wire.machine.WireMachine` subclass), used by both
    #: the blocking pumps below and the asyncio front-end.
    machine_class = None

    def next_request_id(self):
        """Allocate a correlation id (multiplexing protocols only)."""
        raise ProtocolError(
            f"protocol {self.name!r} has no request ids; "
            "it cannot be pipelined or multiplexed"
        )

    def client_machine(self, **kwargs):
        """A fresh client-role wire machine (parses replies)."""
        return self.machine_class("client", **kwargs)

    def server_machine(self, **kwargs):
        """A fresh server-role wire machine (parses requests)."""
        return self.machine_class("server", **kwargs)

    def new_marshaller(self):
        raise NotImplementedError

    def send_request(self, channel, call):
        raise NotImplementedError

    def recv_request(self, channel, object_exists=None):
        """Read one request; returns a readable Call.

        *object_exists* is an optional callable over the raw object key
        that protocols with locate machinery (GIOP) may consult; the
        text protocol has no such control messages and ignores it.
        """
        raise NotImplementedError

    def send_reply(self, channel, reply):
        raise NotImplementedError

    def recv_reply(self, channel):
        """Read one reply; returns a readable Reply."""
        raise NotImplementedError

    def send_close(self, channel):
        """Send the protocol's orderly-close frame, if it has one.

        Called by a draining server right before closing the socket
        (text2 ``BYE``, GIOP CloseConnection).  The classic text
        protocol has no close message — EOF is its only goodbye — so
        the base implementation sends nothing.
        """

    # -- shared pump plumbing ----------------------------------------------

    def _pump_request(self, channel):
        machine = channel_machine(channel, "server", self.machine_class)
        event = pump_event(channel, machine)
        if type(event) is wire_events.WireViolation:
            raise ProtocolError(event.message)
        if type(event) is wire_events.CloseReceived:
            raise close_received("server", "an orderly close")
        return event.call

    def _pump_reply(self, channel):
        machine = channel_machine(channel, "client", self.machine_class)
        event = pump_event(channel, machine)
        if type(event) is wire_events.WireViolation:
            raise ProtocolError(event.message)
        if type(event) is wire_events.CloseReceived:
            raise close_received("client", "an orderly close")
        return event.reply


class TextProtocol(Protocol):
    """The newline-terminated ASCII request/response protocol."""

    name = "text"
    machine_class = TextWire

    def new_marshaller(self):
        return TextMarshaller()

    def send_request(self, channel, call):
        send_frame(channel, encode_request(call))

    # The receive side mirrors the send side: one blocking ``recv_line``
    # (the channel is the line-demarcating buffer) handed straight to
    # the machines' pure line parsers — this is the per-call hot path.
    # A per-channel machine exists only when a chunk-style driver fed it
    # (``feed_bytes``); any bytes it buffered are drained first so no
    # message can overtake another.  A flight-recorded channel keeps the
    # direct parse and taps the recorder with the raw line plus the
    # parsed result — routing every line through a machine just to reach
    # its tap costs double-digit throughput, while the direct tap
    # synthesizes the identical record (the recorder pins the event repr
    # formats; replay through a fresh machine still compares equal).

    _parse_request_line = staticmethod(parse_request_line)
    _parse_reply_line = staticmethod(parse_reply_line)

    #: The raw line that means "orderly close" (None for the classic
    #: protocol, whose only goodbye is EOF; ``BYE`` for text2).  Checked
    #: on the direct-parse paths below; the machine paths surface the
    #: same condition as a CloseReceived event.
    _close_line = None

    def recv_request(self, channel, object_exists=None):
        machine = getattr(channel, _SERVER_MACHINE, None)
        if machine is not None and (
            machine.has_buffered or machine.tap is not None
        ):
            event = pump_line_event(channel, machine)
            if type(event) is wire_events.WireViolation:
                raise ProtocolError(event.message)
            if type(event) is wire_events.CloseReceived:
                raise close_received("server", "BYE (orderly close)")
            return event.call
        raw = channel.recv_line()
        if raw == self._close_line:
            recorder = getattr(channel, "flight", None)
            if recorder is not None:
                recorder.record_close(raw, "server")
            raise close_received("server", "BYE (orderly close)")
        line = raw.decode("ascii", errors="replace")
        recorder = getattr(channel, "flight", None)
        if recorder is None:
            return self._parse_request_line(line)
        try:
            call = self._parse_request_line(line)
        except ProtocolError as exc:
            recorder.record_violation(raw, str(exc), "server")
            raise
        recorder.record_request(raw, call)
        return call

    def send_reply(self, channel, reply):
        send_frame(channel, encode_reply(reply))

    def recv_reply(self, channel):
        machine = getattr(channel, _CLIENT_MACHINE, None)
        if machine is not None and (
            machine.has_buffered or machine.tap is not None
        ):
            event = pump_line_event(channel, machine)
            if type(event) is wire_events.WireViolation:
                raise ProtocolError(event.message)
            if type(event) is wire_events.CloseReceived:
                raise close_received("client", "BYE (orderly close)")
            return event.reply
        raw = channel.recv_line()
        if raw == self._close_line:
            recorder = getattr(channel, "flight", None)
            if recorder is not None:
                recorder.record_close(raw, "client")
            raise close_received("client", "BYE (orderly close)")
        line = raw.decode("ascii", errors="replace")
        recorder = getattr(channel, "flight", None)
        if recorder is None:
            return self._parse_reply_line(line)
        try:
            reply = self._parse_reply_line(line)
        except ProtocolError as exc:
            recorder.record_violation(raw, str(exc), "client")
            raise
        recorder.record_reply(raw, reply)
        return reply


class Text2Protocol(TextProtocol):
    """The text grammar framed with a request id (``text2``).

    Identical tokens and escapes to the classic protocol, but every
    two-way message leads with a decimal request id so replies can be
    correlated out of order::

        CALL2 <id> <objref> <operation> <token>...
        ONEWAY2 <objref> <operation> <token>...
        RET2 <id> OK <token>...
        RET2 <id> EXC <repo-id> <token>...
        RET2 <id> ERR <category> <message-token>

    Oneways carry no id — nothing ever correlates back to them.
    Request ids start at 1; **id 0 is reserved** for ``RET2 0 ERR``
    replies to requests the server could not parse (there is no id to
    echo), which a multiplexed client treats as a channel-level failure
    rather than an orphaned reply.  The wire stays one printable-ASCII
    line per message, so the telnet debugging story survives: a human
    types ``CALL2 7 ...`` and greps for ``RET2 7``.
    """

    name = "text2"
    supports_multiplexing = True
    machine_class = Text2Wire

    _parse_request_line = staticmethod(parse_request2_line)
    _parse_reply_line = staticmethod(parse_reply2_line)

    def __init__(self):
        self._request_ids = RequestIdAllocator()

    def next_request_id(self):
        return self._request_ids.next()

    def send_request(self, channel, call):
        if not call.oneway and call.request_id is None:
            call.request_id = self.next_request_id()
        send_frame(channel, encode_request2(call))

    _parse_id = staticmethod(parse_request_id)

    _close_line = BYE_LINE

    def send_reply(self, channel, reply):
        send_frame(channel, encode_reply2(reply))

    def send_close(self, channel):
        """Send the ``BYE`` frame — text2's orderly-close message."""
        channel.send(BYE_FRAME)


_PROTOCOLS = {"text": TextProtocol, "text2": Text2Protocol}


def get_protocol(name):
    """Look up a protocol by name; GIOP self-registers on import."""
    if name == "giop" and "giop" not in _PROTOCOLS:
        # Imported lazily so the text-only ORB has no GIOP footprint.
        from repro.giop.iiop import GiopProtocol

        _PROTOCOLS["giop"] = GiopProtocol
    factory = _PROTOCOLS.get(name)
    if factory is None:
        raise ProtocolError(f"unknown protocol {name!r}")
    return factory()


def register_protocol(name, factory):
    """Register a custom protocol (the configurable-ORB hook)."""
    _PROTOCOLS[name] = factory

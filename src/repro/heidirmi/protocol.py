"""Pluggable ORB protocols.

"Most IDL compilers generate stubs and skeletons that utilize an
abstract interface to the ORB [... which] keeps the generated code
independent of any particular ORB protocol, permitting the utilization
of alternate protocols" (paper, Section 2).  :class:`Protocol` is that
abstract interface; stubs and skeletons only ever see Call/Reply.

Implementations: :class:`TextProtocol` here (the paper's newline
ASCII format) and :class:`repro.giop.iiop.GiopProtocol`.
"""

from repro.heidirmi.call import (
    STATUS_ERROR,
    STATUS_EXCEPTION,
    STATUS_OK,
    Call,
    Reply,
)
from repro.heidirmi.errors import ProtocolError
from repro.heidirmi.textwire import (
    TextMarshaller,
    TextUnmarshaller,
    escape_token,
    unescape_token,
)


class Protocol:
    """Encodes Calls and Replies onto a Channel."""

    name = "?"

    def new_marshaller(self):
        raise NotImplementedError

    def send_request(self, channel, call):
        raise NotImplementedError

    def recv_request(self, channel, object_exists=None):
        """Read one request; returns a readable Call.

        *object_exists* is an optional callable over the raw object key
        that protocols with locate machinery (GIOP) may consult; the
        text protocol has no such control messages and ignores it.
        """
        raise NotImplementedError

    def send_reply(self, channel, reply):
        raise NotImplementedError

    def recv_reply(self, channel):
        """Read one reply; returns a readable Reply."""
        raise NotImplementedError


class TextProtocol(Protocol):
    """The newline-terminated ASCII request/response protocol."""

    name = "text"

    def new_marshaller(self):
        return TextMarshaller()

    # -- requests ------------------------------------------------------------

    def send_request(self, channel, call):
        verb = "ONEWAY" if call.oneway else "CALL"
        head = f"{verb} {escape_token(call.target)} {escape_token(call.operation)}"
        payload = call.payload().decode("ascii")
        line = f"{head} {payload}" if payload else head
        channel.send(line.encode("ascii") + b"\n")

    def recv_request(self, channel, object_exists=None):
        line = channel.recv_line().decode("ascii", errors="replace")
        tokens = line.split()
        if not tokens:
            raise ProtocolError("empty request line")
        verb = tokens[0]
        if verb not in ("CALL", "ONEWAY"):
            raise ProtocolError(
                f"expected CALL or ONEWAY, got {verb!r} "
                "(request shape: CALL <objref> <operation> <args...>)"
            )
        if len(tokens) < 3:
            raise ProtocolError("request needs an object reference and an operation")
        target = unescape_token(tokens[1])
        operation = unescape_token(tokens[2])
        return Call(
            target,
            operation,
            unmarshaller=TextUnmarshaller(tokens[3:]),
            oneway=(verb == "ONEWAY"),
        )

    # -- replies ----------------------------------------------------------------

    def send_reply(self, channel, reply):
        pieces = ["RET", reply.status]
        if reply.status in (STATUS_EXCEPTION, STATUS_ERROR):
            pieces.append(escape_token(reply.repo_id))
        payload = reply.payload().decode("ascii")
        if payload:
            pieces.append(payload)
        channel.send(" ".join(pieces).encode("ascii") + b"\n")

    def recv_reply(self, channel):
        line = channel.recv_line().decode("ascii", errors="replace")
        tokens = line.split()
        if len(tokens) < 2 or tokens[0] != "RET":
            raise ProtocolError(f"malformed reply line {line!r}")
        status = tokens[1]
        if status == STATUS_OK:
            return Reply(
                status=STATUS_OK, unmarshaller=TextUnmarshaller(tokens[2:])
            )
        if status in (STATUS_EXCEPTION, STATUS_ERROR):
            if len(tokens) < 3:
                raise ProtocolError(f"{status} reply needs an identifier")
            return Reply(
                status=status,
                repo_id=unescape_token(tokens[2]),
                unmarshaller=TextUnmarshaller(tokens[3:]),
            )
        raise ProtocolError(f"unknown reply status {status!r}")


_PROTOCOLS = {"text": TextProtocol}


def get_protocol(name):
    """Look up a protocol by name; GIOP self-registers on import."""
    if name == "giop" and "giop" not in _PROTOCOLS:
        # Imported lazily so the text-only ORB has no GIOP footprint.
        from repro.giop.iiop import GiopProtocol

        _PROTOCOLS["giop"] = GiopProtocol
    factory = _PROTOCOLS.get(name)
    if factory is None:
        raise ProtocolError(f"unknown protocol {name!r}")
    return factory()


def register_protocol(name, factory):
    """Register a custom protocol (the configurable-ORB hook)."""
    _PROTOCOLS[name] = factory

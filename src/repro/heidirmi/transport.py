"""Transports: byte channels under the wire protocols.

Two transports ship, both presenting the same :class:`Channel` surface:

- ``tcp`` — real TCP sockets, one listener per ORB bootstrap port;
- ``inproc`` — in-process rendezvous through ``socket.socketpair``,
  used by tests and benchmarks to measure protocol cost without the
  kernel network stack (still real bytes through real sockets).

A channel supports line reads (text protocol) and exact-count reads
(GIOP framing), with its own receive buffer so the two can interleave.
"""

import collections
import select
import socket
import threading
import time
import weakref

from repro.heidirmi.errors import CommunicationError, DeadlineExceeded
from repro.wire.bufferplan import BufferPlan

#: Default budget for connection establishment, in seconds.  Only
#: covers the connect itself; overridable per Orb/ConnectionCache
#: (``connect_timeout=``) and clamped further by per-call deadlines.
DEFAULT_CONNECT_TIMEOUT = 30.0

_MAX_LINE = 1 << 20  # 1 MiB: a request line beyond this is an attack/bug.

#: Compact the receive buffer once this much consumed prefix accumulates.
_COMPACT_THRESHOLD = 1 << 16


class _DeadlineWatchdog:
    """Process-wide scanner that kills channels at deadline expiry.

    Deadlined channels stay in plain blocking mode — a socket with a
    timeout set pays an internal poll on *every* send and recv, which
    was the dominant per-call cost of the resilience stack.  Instead a
    single daemon thread ticks every :data:`_TICK` seconds, reads each
    watched channel's ``_deadline`` attribute (a GIL-atomic load — no
    per-call locking anywhere), and calls ``_expire_deadline()``
    (shutdown, which unblocks the in-flight operation) on whatever is
    overdue.  A channel registers here once, the first time it ever
    gets a deadline; after that, arming and disarming are plain
    attribute stores on the channel.  The tick bounds enforcement
    latency at ~``_TICK`` past the deadline — deliberate slack: every
    blocking point still pre-checks the remaining budget exactly, the
    watchdog only exists to unblock an operation that is *stuck*.
    """

    _TICK = 0.05

    def __init__(self):
        self._lock = threading.Lock()
        self._channels = weakref.WeakSet()  # guarded-by: self._lock
        self._thread = None  # guarded-by: self._lock

    def watch(self, channel):
        with self._lock:
            self._channels.add(channel)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="heidirmi-deadline-watchdog",
                    daemon=True,
                )
                self._thread.start()

    def _run(self):
        while True:
            time.sleep(self._TICK)
            now = time.monotonic()
            # Snapshot under the registration lock; expire outside it.
            with self._lock:
                channels = list(self._channels)
            for channel in channels:
                deadline = channel._deadline
                if (deadline is not None and deadline <= now
                        and not channel._closed):
                    channel._expire_deadline()


_WATCHDOG = _DeadlineWatchdog()


class Channel:
    """A bidirectional byte stream over a connected socket."""

    #: Optional byte-accounting hook (``repro.observe`` ChannelMeter):
    #: when set, every send/recv reports its byte count.  A class-level
    #: None default keeps the unobserved hot path at one attribute test.
    meter = None

    #: Optional flight-recorder hook (``repro.observe.flight``): when
    #: set, every successful send records the outbound frame bytes in
    #: the channel's bounded ring.  Inbound frames are recorded at the
    #: wire-machine tap instead (typed events, not raw chunks).  Same
    #: class-level-None idiom as ``meter``.
    flight = None

    #: This channel can flush a scatter-gather BufferPlan without
    #: joining it (``socket.sendmsg``); see ``protocol.send_frame``.
    accepts_plans = True

    def __init__(self, sock, peer="?"):
        self._sock = sock
        # Receive buffer: a growable bytearray with a consumed-prefix
        # offset, so per-segment appends and reads are amortized O(n)
        # instead of recopying the whole buffer (b"" += chunk) each time.
        self._buffer = bytearray()
        self._start = 0
        self._closed = False
        self.peer = peer
        # Serialize writers: an ORB may share a channel between threads.
        self._send_lock = threading.Lock()
        # Absolute monotonic expiry bounding send/recv; None means
        # block forever as always.  Only the watchdog reads this on its
        # tick — send/recv themselves never touch the clock; an expiry
        # surfaces as the watchdog's shutdown unblocking them.
        self._deadline = None
        # Set by the watchdog when it kills this channel at expiry, so
        # the unblocked send/recv can tell "deadline fired" apart from
        # an ordinary peer failure.
        self._expired = False
        # True once this channel has registered with the watchdog; the
        # registration happens at most once per channel lifetime.
        self._watched = False

    def set_deadline(self, expires_at):
        """Arm (or, with None, disarm) an absolute ``time.monotonic()``
        expiry that bounds every subsequent send and recv.

        The socket itself stays in plain blocking mode — a socket in
        timeout mode pays an internal poll on *every* send and recv,
        which is exactly the per-call resilience tax this design
        removes.  Instead the expiry is filed with the process-wide
        deadline watchdog, which wakes at the earliest armed expiry and
        shuts the socket down; the blocked operation then surfaces
        :class:`DeadlineExceeded`.  Expiry closes the channel — a
        timed-out channel has a frame in an unknown half-written /
        half-read state and cannot be reused.  Never arm this on a
        multiplexed channel: its one demux reader waits on behalf of
        every caller, so a single call's budget would kill the shared
        channel; the completion table enforces deadlines there instead.

        Arming and disarming are plain attribute stores — the watchdog
        reads ``_deadline`` directly on its tick — so the zero- and
        long-budget hot paths pay no locking, no syscalls, no timers.
        """
        self._deadline = expires_at
        if expires_at is not None and not self._watched:
            self._watched = True
            _WATCHDOG.watch(self)

    def _expire_deadline(self):
        """Watchdog upcall at expiry: unblock any in-flight operation."""
        self._expired = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def send(self, data):
        if self._closed:
            raise CommunicationError(
                f"channel to {self.peer} is closed", kind="channel-closed"
            )
        plan = data if type(data) is BufferPlan else None
        try:
            with self._send_lock:
                # Plain blocking send even when deadlined: if the
                # budget runs out mid send, the watchdog shuts the
                # socket down under us and the OSError maps below.
                if plan is not None:
                    self._flush_plan(plan)
                else:
                    self._sock.sendall(data)
        except OSError as exc:
            expired = self._expired
            self.close()
            if expired:
                raise DeadlineExceeded(
                    f"deadline expired in send to {self.peer}"
                ) from exc
            raise CommunicationError(
                f"send to {self.peer} failed: {exc}", kind="send-failed"
            ) from exc
        if self.meter is not None:
            self.meter.sent(len(data))
        if self.flight is not None:
            # The flight ring stores frames by reference; hand it
            # contiguous immutable bytes, never pooled segments.
            self.flight.record_out(
                plan.to_bytes() if plan is not None else data)
        if plan is not None:
            # The frame is on the wire (sendall semantics) and every
            # hook has run: the plan's owned segments go back to the
            # pool.  Borrowed segments are untouched by recycling.
            plan.recycle()

    def _flush_plan(self, plan):
        """Flush a BufferPlan's segments with one scatter-gather send.

        ``sendmsg`` may stop short (signal, partial socket buffer);
        the loop drops fully-sent segments and trims the split one, so
        the plan itself is never copied into a contiguous join.
        """
        sendmsg = getattr(self._sock, "sendmsg", None)
        if sendmsg is None:
            self._sock.sendall(plan.to_bytes())
            return
        views = [memoryview(segment) for segment in plan.segments()]
        remaining = len(plan)
        while remaining > 0:
            sent = sendmsg(views)
            remaining -= sent
            if remaining <= 0:
                break
            while views and sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            if sent:
                views[0] = views[0][sent:]

    def _fill(self):
        try:
            # Plain blocking recv even when deadlined: at expiry the
            # watchdog's shutdown unblocks it with EOF (or an error),
            # mapped below.
            chunk = self._sock.recv(65536)
        except OSError as exc:
            expired = self._expired
            self.close()
            if expired:
                raise DeadlineExceeded(
                    f"deadline expired waiting for {self.peer}"
                ) from exc
            raise CommunicationError(
                f"recv from {self.peer} failed: {exc}", kind="recv-failed"
            ) from exc
        if not chunk:
            expired = self._expired
            self.close()
            if expired:
                raise DeadlineExceeded(
                    f"deadline expired waiting for {self.peer}"
                )
            raise CommunicationError(
                f"peer {self.peer} closed the connection", kind="peer-closed"
            )
        if self.meter is not None:
            self.meter.received(len(chunk))
        try:
            self._buffer += chunk
        except BufferError:
            # A zero-copy recv_exact view is still alive, pinning the
            # buffer against resize.  Reallocate: copy the unconsumed
            # remainder into a fresh buffer and leave the old one to
            # the outstanding views.
            fresh = bytearray(memoryview(self._buffer)[self._start:])
            fresh += chunk
            self._buffer = fresh
            self._start = 0

    def wait_readable(self, timeout):
        """Block until a recv would not block, at most *timeout* seconds.

        Returns True when bytes are buffered/readable (or the channel is
        dead — the next recv then raises promptly rather than blocking);
        False when the timeout elapsed with nothing to read.  This is
        the select-timeout half of pump-side deadline enforcement: the
        demultiplexer parks here for exactly the completion table's
        earliest expiry instead of each caller polling its own budget.
        """
        if len(self._buffer) > self._start:
            return True
        if self._closed:
            return True
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):
            return True  # fd died under us; let recv surface the error
        return bool(ready)

    @property
    def has_buffered(self):
        """Bytes already received but not yet consumed?

        Servers use this as a cheap backlog probe: while more requests
        are already waiting in the buffer, replies can be coalesced into
        one send instead of paying a syscall each.
        """
        return len(self._buffer) > self._start

    def _compact(self):
        # Each resize falls back to reallocation when outstanding
        # recv_exact views pin the current buffer (BufferError).
        if self._start == len(self._buffer):
            try:
                self._buffer.clear()
            except BufferError:
                self._buffer = bytearray()
            self._start = 0
        elif self._start > _COMPACT_THRESHOLD:
            try:
                del self._buffer[: self._start]
            except BufferError:
                self._buffer = bytearray(
                    memoryview(self._buffer)[self._start:])
            self._start = 0

    def recv_line(self):
        """Read up to and including ``\\n``; returns the line without it."""
        scan = self._start
        while True:
            index = self._buffer.find(b"\n", scan)
            if index >= 0:
                break
            scan = len(self._buffer)
            if scan - self._start > _MAX_LINE:
                self.close()
                raise CommunicationError(
                    "request line too long", kind="frame-overflow"
                )
            self._fill()
        buffer = self._buffer
        line = buffer[self._start : index]
        # Inline _compact(): this runs once per message.  (Line reads
        # never hand out views of the buffer, so resizing cannot raise
        # here; only recv_exact pins the buffer.)
        start = index + 1
        if start == len(buffer):
            buffer.clear()
            self._start = 0
        elif start > _COMPACT_THRESHOLD:
            del buffer[:start]
            self._start = 0
        else:
            self._start = start
        while line and line[-1] == 0x0D:  # rstrip(b"\r"), no realloc
            del line[-1]
        return line

    def recv_exact(self, count):
        """Read exactly *count* bytes, as a read-only view.

        The view aliases the receive buffer — zero copies between the
        socket and the CDR decoder.  It stays valid indefinitely: if
        the buffer must grow or compact while views are outstanding,
        it reallocates and the old storage lives on behind them.
        """
        while len(self._buffer) - self._start < count:
            self._fill()
        data = memoryview(self._buffer).toreadonly()[
            self._start : self._start + count]
        self._start += count
        self._compact()
        return data

    def close(self):
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass

    @property
    def closed(self):
        return self._closed


class Listener:
    """Accept side of a transport; yields Channels."""

    def accept(self):
        raise NotImplementedError

    def close(self):
        raise NotImplementedError

    @property
    def address(self):
        """(host, port) the listener is actually bound to."""
        raise NotImplementedError


class Transport:
    """Factory for listeners and outgoing channels."""

    name = "?"

    def listen(self, host, port):
        raise NotImplementedError

    def connect(self, host, port, timeout=None):
        """Open a channel; *timeout* bounds establishment in seconds.

        ``None`` means the transport's default.  (The connection cache
        tolerates transports registered before this parameter existed
        by falling back to the two-argument form.)
        """
        raise NotImplementedError


# ---------------------------------------------------------------------------
# TCP
# ---------------------------------------------------------------------------


class TcpListener(Listener):
    def __init__(self, host, port):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
        except OSError as exc:
            raise CommunicationError(
                f"cannot bind {host}:{port}: {exc}", kind="bind-failed"
            ) from exc
        self._sock.listen(64)
        self._closed = False

    def accept(self):
        try:
            conn, peer = self._sock.accept()
        except OSError as exc:
            if self._closed:
                raise CommunicationError(
                    "listener closed", kind="listener-closed"
                ) from exc
            raise CommunicationError(
                f"accept failed: {exc}", kind="accept-failed"
            ) from exc
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return Channel(conn, peer=f"{peer[0]}:{peer[1]}")

    def close(self):
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def address(self):
        return self._sock.getsockname()[:2]


class TcpTransport(Transport):
    name = "tcp"

    def listen(self, host, port):
        return TcpListener(host, port)

    def connect(self, host, port, timeout=None):
        if timeout is None:
            timeout = DEFAULT_CONNECT_TIMEOUT
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        # socket.timeout is an OSError subclass: catch it first so a
        # black-holed endpoint reads differently from a refused one.
        except (socket.timeout, TimeoutError) as exc:
            raise CommunicationError(
                f"connect {host}:{port} timed out after {timeout}s",
                kind="connect-timeout",
            ) from exc
        except OSError as exc:
            raise CommunicationError(
                f"cannot connect {host}:{port}: {exc}", kind="connect-refused"
            ) from exc
        # The timeout only covers connection establishment; a pooled
        # connection must block indefinitely on its next recv, not time
        # out (and kill the channel) after sitting idle in the cache.
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return Channel(sock, peer=f"{host}:{port}")


# ---------------------------------------------------------------------------
# In-process
# ---------------------------------------------------------------------------


class _InProcRegistry:
    """Process-global rendezvous: (host, port) → listener queue."""

    def __init__(self):
        self._lock = threading.Lock()
        self._listeners = {}  # guarded-by: self._lock
        self._next_port = 1  # guarded-by: self._lock

    def listen(self, host, port):
        with self._lock:
            if port == 0:
                while (host, self._next_port) in self._listeners:
                    self._next_port += 1
                port = self._next_port
                self._next_port += 1
            key = (host, port)
            if key in self._listeners:
                raise CommunicationError(
                    f"inproc address {host}:{port} already bound",
                    kind="bind-failed",
                )
            listener = InProcListener(host, port, self)
            self._listeners[key] = listener
            return listener

    def connect(self, host, port):
        with self._lock:
            listener = self._listeners.get((host, port))
        if listener is None or listener.closed:
            raise CommunicationError(
                f"no inproc listener at {host}:{port}", kind="connect-refused"
            )
        client_sock, server_sock = socket.socketpair()
        listener.enqueue(Channel(server_sock, peer="inproc-client"))
        return Channel(client_sock, peer=f"inproc:{host}:{port}")

    def unregister(self, host, port):
        with self._lock:
            self._listeners.pop((host, port), None)


class InProcListener(Listener):
    def __init__(self, host, port, registry):
        self._host = host
        self._port = port
        self._registry = registry
        self._pending = collections.deque()  # guarded-by: self._cond
        self._cond = threading.Condition()
        self.closed = False

    def enqueue(self, channel):
        with self._cond:
            self._pending.append(channel)
            self._cond.notify()

    def accept(self):
        with self._cond:
            # An untimed wait is safe: close() flips ``closed`` and
            # notifies under this same condition, so every blocked
            # acceptor wakes — no poll loop needed.
            while not self._pending and not self.closed:
                self._cond.wait()
            if self.closed:
                raise CommunicationError(
                    "listener closed", kind="listener-closed"
                )
            return self._pending.popleft()

    def close(self):
        self._registry.unregister(self._host, self._port)
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    @property
    def address(self):
        return (self._host, self._port)


_INPROC = _InProcRegistry()


class InProcTransport(Transport):
    name = "inproc"

    def listen(self, host, port):
        return _INPROC.listen(host, port)

    def connect(self, host, port, timeout=None):
        # Rendezvous is immediate in-process; the timeout never bites.
        return _INPROC.connect(host, port)


_TRANSPORTS = {
    "tcp": TcpTransport,
    "inproc": InProcTransport,
}

#: Name → name redirects resolved inside :func:`get_transport`, so every
#: caller (Orbs, the connection cache, the chaos layer) sees the same
#: substitution regardless of how it spelled the transport.  The test
#: suite uses this to re-run entire suites over the asyncio transport.
_ALIASES = {}


def set_transport_alias(name, target):
    """Redirect transport *name* to *target* (None removes the alias)."""
    if target is None:
        _ALIASES.pop(name, None)
    else:
        _ALIASES[name] = target


def get_transport(name):
    """Look up a transport by protocol name (``tcp``/``inproc``/``aio``)."""
    name = _ALIASES.get(name, name)
    if name == "aio" and "aio" not in _TRANSPORTS:
        # Imported lazily so the threads-only ORB never touches asyncio.
        import repro.wire.aio  # noqa: F401 (registers itself)
    factory = _TRANSPORTS.get(name)
    if factory is None:
        raise CommunicationError(f"unknown transport {name!r}")
    return factory()


def register_transport(name, factory):
    """Register a custom transport (the configurable-ORB hook)."""
    _TRANSPORTS[name] = factory

"""Base class for IDL-declared (user) exceptions.

Generated exception classes subclass :class:`HdUserException`, carry
their repository ID, and know how to marshal/unmarshal their members.
The server side catches them during dispatch and turns them into ``EXC``
replies; the client side rebuilds and re-raises them.
"""


class HdUserException(Exception):
    """An exception declared in IDL (``raises`` clause)."""

    _hd_repo_id_ = ""

    def _hd_marshal(self, reply, orb):
        """Write the exception members; default has none."""

    @classmethod
    def _hd_unmarshal(cls, reply, orb):
        """Rebuild from a reply; default has no members."""
        return cls()

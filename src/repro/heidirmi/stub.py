"""Client-side stub base class.

"All stubs inherit from a base HdStub class which provides the generic
stub functionality" (paper, Section 3.1).  A generated stub implements
the mapped interface methods; each method builds a Call, marshals its
parameters, invokes it through the ORB and unmarshals the result.
Stub *classes* mirror the IDL inheritance graph (``A_stub(S_stub)``),
so inherited operations come for free.
"""

from repro.heidirmi.call import Call
from repro.heidirmi.errors import DeadlineExceeded, RemoteError
from repro.heidirmi.serialize import get_object, put_object


class HdStub:
    """Generic stub functionality: holds the reference and the ORB."""

    #: Repository ID of the interface this stub class speaks for;
    #: generated subclasses override it.
    _hd_type_id_ = ""
    #: Repository IDs of the direct IDL base interfaces.
    _hd_parents_ = ()

    def __init__(self, reference, orb):
        self._hd_ref = reference
        self._hd_orb = orb

    # -- identity ------------------------------------------------------------

    @property
    def _orb(self):
        """Uniform ORB accessor shared with HdSkel (generated code uses it)."""
        return self._hd_orb

    @property
    def reference(self):
        return self._hd_ref

    def stringify(self):
        return self._hd_ref.stringify()

    def _is_a(self, type_id):
        """Dynamic type check against the registry's inheritance graph."""
        return self._hd_orb.types.is_a(self._hd_ref.type_id, type_id)

    def _remote_is_a(self, type_id):
        """Ask the *server* whether the object conforms to *type_id*.

        Unlike :meth:`_is_a` this consults the implementation's own
        type information (the built-in ``_is_a`` operation every
        skeleton serves), so it works even when the local registry has
        never seen the type.
        """
        call = self._new_call("_is_a")
        call.put_string(type_id)
        return self._invoke(call).get_boolean()

    def _non_existent(self):
        """The standard liveness probe (False means the object exists)."""
        try:
            return self._invoke(self._new_call("_non_existent")).get_boolean()
        except RemoteError:
            return True

    def __eq__(self, other):
        return isinstance(other, HdStub) and self._hd_ref == other._hd_ref

    def __hash__(self):
        return hash(self._hd_ref)

    def __repr__(self):
        return f"<{type(self).__name__} {self._hd_ref.stringify()}>"

    # -- invocation helpers used by generated code ------------------------------

    def _new_call(self, operation, oneway=False, idempotent=False):
        """A writable Call addressed at this stub's object.

        *idempotent* marks the operation retry-safe: a configured
        RetryPolicy may transparently re-send it on retryable failures.
        Generated stubs set it for operations their mapping pack
        declares in ``idempotent_operations``.
        """
        orb = self._hd_orb
        if orb.trace is not None or orb.observer is not None:
            # The Orb wrapper fires the call:new trace event and starts
            # the client span; untraced stubs skip it entirely.
            return orb.create_call(self._hd_ref, operation, oneway=oneway,
                                   idempotent=idempotent)
        return Call(
            self._hd_ref.stringify(),
            operation,
            marshaller=orb.protocol.new_marshaller(),
            oneway=oneway,
            idempotent=idempotent,
        )

    def _invoke(self, call):
        """Send *call*; returns the Reply (already checked for errors)."""
        reply = self._hd_orb.invoke(self._hd_ref, call)
        if reply is None:  # oneway
            return None
        if reply.is_ok:
            return reply
        if reply.is_exception:
            exc = self._hd_orb.rebuild_exception(reply)
            raise exc
        if reply.repo_id == "Overloaded":
            # The server shed the request at admission; surface the
            # typed, retryable error carrying its retry-after hint.
            from repro.resilience.overload import overload_error_from_reply

            raise overload_error_from_reply(reply)
        message = reply.get_string() if not reply.at_end() else "remote error"
        if reply.repo_id == "DeadlineExceeded":
            # The server shed the request because its wire-propagated
            # budget ran out; surface the standard TimeoutError shape.
            raise DeadlineExceeded(message)
        raise RemoteError(message, repo_id=reply.repo_id)

    def _put_object(self, call, obj, direction="in"):
        put_object(call, obj, self._hd_orb, direction=direction)

    def _get_object(self, call):
        return get_object(call, self._hd_orb, registry=self._hd_orb.types)

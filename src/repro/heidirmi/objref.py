"""Stringified object references.

A HeidiRMI object reference has three parts (paper, Section 3.1): the
*bootstrap URL* (a protocol–hostname–port tuple naming a communication
channel to the object's address space), the *object identifier* (unique
within that address space), and the *object type* (a repository ID that
selects the right stub/skeleton).  The canonical stringified form is::

    @tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0
"""

from dataclasses import dataclass, replace
from functools import cached_property

from repro.heidirmi.errors import ProtocolError


@dataclass(frozen=True)
class ObjectReference:
    """One remote-object reference; immutable and hashable."""

    protocol: str
    host: str
    port: int
    object_id: str
    type_id: str

    # cached_property stores straight into __dict__, which a frozen
    # dataclass allows; the reference is immutable, so both renderings
    # are computed once — stringify() heads every outgoing call.
    @cached_property
    def _stringified(self):
        return f"@{self.protocol}:{self.host}:{self.port}#{self.object_id}#{self.type_id}"

    def stringify(self):
        """Render the ``@proto:host:port#oid#typeid`` form."""
        return self._stringified

    def __str__(self):
        return self._stringified

    @cached_property
    def bootstrap(self):
        """The (protocol, host, port) channel tuple."""
        return (self.protocol, self.host, self.port)

    def with_type(self, type_id):
        """The same object seen through a different interface type."""
        return replace(self, type_id=type_id)

    @classmethod
    def parse(cls, text):
        """Parse a stringified reference; raises ProtocolError if malformed."""
        if not text or text[0] != "@":
            raise ProtocolError(f"object reference must start with '@': {text!r}")
        pieces = text[1:].split("#", 2)
        if len(pieces) != 3:
            raise ProtocolError(
                f"object reference needs url#oid#type parts: {text!r}"
            )
        bootstrap, object_id, type_id = pieces
        url_parts = bootstrap.split(":")
        if len(url_parts) != 3:
            raise ProtocolError(
                f"bootstrap URL must be protocol:host:port: {bootstrap!r}"
            )
        protocol, host, port_text = url_parts
        if not protocol or not host:
            raise ProtocolError(f"empty protocol or host in {text!r}")
        try:
            port = int(port_text)
        except ValueError:
            raise ProtocolError(f"port is not a number in {text!r}") from None
        if not 0 < port < 65536:
            raise ProtocolError(f"port {port} out of range in {text!r}")
        if not object_id:
            raise ProtocolError(f"empty object identifier in {text!r}")
        if not type_id.startswith("IDL:"):
            raise ProtocolError(f"type is not a repository ID in {text!r}")
        return cls(
            protocol=protocol,
            host=host,
            port=port,
            object_id=object_id,
            type_id=type_id,
        )

"""``ObjectCommunicator`` — request demarcation over a channel.

"An ObjectCommunicator provides the abstraction of a communication
channel on which individual requests can be demarcated" (paper,
Section 3.1).  It pairs a transport channel with a protocol; the client
side invokes calls through it, the server side pulls requests off it.
"""

from repro.heidirmi.call import Reply, STATUS_ERROR
from repro.heidirmi.errors import CommunicationError


class ObjectCommunicator:
    """One demarcated request/reply stream over a Channel."""

    def __init__(self, channel, protocol):
        self.channel = channel
        self.protocol = protocol

    # -- client side -------------------------------------------------------

    def invoke(self, call):
        """Send *call*; return the Reply (or None for oneway calls)."""
        self.protocol.send_request(self.channel, call)
        if call.oneway:
            return None
        return self.protocol.recv_reply(self.channel)

    # -- server side -------------------------------------------------------

    def next_request(self, object_exists=None):
        """Block for the next incoming request Call."""
        return self.protocol.recv_request(self.channel,
                                          object_exists=object_exists)

    def reply(self, reply):
        self.protocol.send_reply(self.channel, reply)

    def reply_error(self, category, message):
        """Convenience for protocol-level failures (bad request line...)."""
        marshaller = self.protocol.new_marshaller()
        reply = Reply(status=STATUS_ERROR, repo_id=category, marshaller=marshaller)
        reply.put_string(message)
        try:
            self.protocol.send_reply(self.channel, reply)
        except CommunicationError:
            pass  # peer already gone; nothing to report to

    # -- lifecycle ------------------------------------------------------------

    def close(self):
        self.channel.close()

    @property
    def closed(self):
        return self.channel.closed

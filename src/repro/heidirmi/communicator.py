"""``ObjectCommunicator`` — request demarcation over a channel.

"An ObjectCommunicator provides the abstraction of a communication
channel on which individual requests can be demarcated" (paper,
Section 3.1).  It pairs a transport channel with a protocol; the client
side invokes calls through it, the server side pulls requests off it.

Two client-side operating modes:

- **exclusive** (the default, the paper's model): one call in flight at
  a time; ``invoke`` sends the request and blocks for the reply on the
  calling thread.
- **multiplexed** (``multiplexed=True``, protocols with request ids
  only): many callers share the channel concurrently.  Each request is
  tagged with a correlation id and registered in a completion table; a
  single demultiplexing reader thread drains replies off the channel
  and resolves the matching future.  ``invoke_async`` returns the
  future; ``invoke`` is just ``invoke_async(...).result()``.

Oneway batching (``batch_oneways=True``) coalesces small oneway sends
into one channel write; the buffer flushes when it grows past
``batch_max_bytes``/``batch_max_calls``, before any two-way send (so
ordering between a oneway and a later call is preserved), or on an
explicit :meth:`flush`.
"""

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout

from repro.heidirmi.call import Reply, STATUS_ERROR
from repro.heidirmi.errors import (
    CommunicationError,
    DeadlineExceeded,
    HeidiRmiError,
    ProtocolError,
)
from repro.wire.bufferplan import BufferPlan
from repro.wire.correlation import CorrelationTable, is_channel_level_error


class _SendBuffer:
    """A channel-shaped sink that records bytes instead of sending them."""

    #: Coalescing copies every frame into one burst anyway, so a
    #: BufferPlan is appended segment-by-segment (no contiguous join)
    #: and its pooled segments recycled immediately.
    accepts_plans = True

    def __init__(self):
        self.data = bytearray()

    def send(self, payload):
        if type(payload) is BufferPlan:
            for segment in payload.segments():
                self.data += segment
            payload.recycle()
        else:
            self.data += payload


class _BulkCollector:
    """Completion sink for a whole burst: one event, not one per call.

    The demux reader files each correlated reply into ``replies`` and
    sets the event when the last lands — far lighter than a
    ``concurrent.futures.Future`` per call on the hot path.  Only the
    demux thread mutates it after registration.
    """

    __slots__ = ("replies", "remaining", "event", "error")

    def __init__(self, expected):
        self.replies = {}
        self.remaining = expected
        self.event = threading.Event()
        self.error = None

    def add(self, request_id, reply):
        self.replies[request_id] = reply
        self.remaining -= 1
        if self.remaining <= 0:
            self.event.set()

    def fail(self, exc):
        self.error = exc
        self.event.set()


class ObjectCommunicator:
    """One demarcated request/reply stream over a Channel."""

    def __init__(self, channel, protocol, multiplexed=False,
                 batch_oneways=False, batch_max_bytes=8192,
                 batch_max_calls=32, reply_max_bytes=65536,
                 reply_max_calls=256, observer=None):
        self.channel = channel
        # Bound once: the exclusive deadline path arms and disarms the
        # channel expiry on every deadlined call, so the two attribute
        # hops per call are worth pre-resolving.  (``channel`` is fixed
        # for the communicator's lifetime; duck-typed test channels
        # without set_deadline only fail if a deadlined call reaches
        # them, as before.)
        self._set_deadline = getattr(channel, "set_deadline", None)
        self.protocol = protocol
        if multiplexed and not getattr(protocol, "supports_multiplexing", False):
            raise HeidiRmiError(
                f"protocol {protocol.name!r} has no request ids and cannot "
                "be multiplexed; use 'text2' or 'giop'"
            )
        self.multiplexed = multiplexed
        if multiplexed:
            # Protocols with per-channel serial-reply checks (GIOP) relax
            # them when many requests share the channel.
            channel._multiplexed = True
        # Completion table: request id -> Future or _BulkCollector,
        # resolved by the demux loop.  The table itself (and the
        # reserved-id semantics applied in _resolve) is the shared
        # correlation core from repro.wire; the aliases keep the
        # compound register-then-send blocks below on the same lock.
        self._table = CorrelationTable()
        self._pending = self._table.entries  # guarded-by: self._pending_lock
        self._pending_lock = self._table.lock
        self._reader = None
        self._reader_lock = threading.Lock()
        #: Replies whose id matched no waiter (cancelled/buggy peer);
        #: they are dropped, not delivered — this counts them.
        self.orphaned_replies = 0
        self._batch_oneways = batch_oneways
        self._batch_max_bytes = batch_max_bytes
        self._batch_max_calls = batch_max_calls
        self._batch = bytearray()  # guarded-by: self._batch_lock
        self._batch_calls = 0  # guarded-by: self._batch_lock
        self._batch_lock = threading.Lock()
        # Server-side reply coalescing sink; only the serial request
        # loop touches it, so it needs no lock.  Persistent so each
        # buffered reply encodes straight into it with no fresh buffer.
        # Bounded by the reply caps above: coalescing must never
        # withhold replies without limit, but the bound is looser than
        # the oneway batch so a whole pipelined window still goes out
        # in one send.
        self._reply_max_bytes = reply_max_bytes
        self._reply_max_calls = reply_max_calls
        self._reply_sink = _SendBuffer()  # guarded-by: <serial:server-loop>
        self._sink_replies = 0  # guarded-by: <serial:server-loop>
        # Pre-resolved instruments (repro.observe): resolving each once
        # here keeps recording to one method call on the hot path, and
        # the unobserved path to bare ``is None`` tests.
        self._observer = observer
        if observer is not None:
            metrics = observer.metrics
            self._pending_gauge = metrics.gauge("rpc.pending_replies")
            self._demux_batch = metrics.histogram(
                "rpc.demux_batch_replies", buckets=(1, 2, 4, 8, 16, 32, 64,
                                                    128, 256, 512))
            self._coalesced_replies = metrics.counter("rpc.replies_coalesced")
            self._reply_flushes = metrics.counter("rpc.reply_flushes")
            self._oneway_flushes = metrics.counter("rpc.oneway_flushes")
            self._metrics = metrics
        else:
            self._pending_gauge = None
            self._demux_batch = None
            self._coalesced_replies = None
            self._reply_flushes = None
            self._oneway_flushes = None
            self._metrics = None

    def _count_error(self, exc):
        """Bump the per-kind channel error counter (observed mode only)."""
        if self._metrics is not None:
            kind = getattr(exc, "kind", "communication")
            self._metrics.counter("channel.errors", kind=kind).inc()

    # -- client side -------------------------------------------------------

    def invoke(self, call):
        """Send *call*; return the Reply (or None for oneway calls)."""
        deadline = call.deadline
        if call.oneway:
            if deadline is not None and deadline.expired:
                raise DeadlineExceeded(
                    f"deadline expired before oneway {call.operation!r} "
                    "was sent"
                )
            self._send_oneway(call)
            return None
        if self.multiplexed:
            future = self.invoke_async(call)
            if deadline is None:
                return future.result()
            try:
                return future.result(timeout=max(0.0, deadline.remaining()))
            except _FutureTimeout:
                # Only this call's completion-table entry dies; the
                # demux reader and the shared channel keep serving
                # channel-mates, and the late reply (if any) is counted
                # as an orphan.
                self.abandon(call.request_id)
                raise DeadlineExceeded(
                    f"deadline expired waiting for reply to "
                    f"{call.operation!r} (id {call.request_id})"
                ) from None
        self.flush()
        if deadline is not None:
            # Exclusive channels enforce the budget at the socket: a
            # timed-out channel closes (its stream position is unknown).
            self._set_deadline(deadline.expires_at)
        try:
            self.protocol.send_request(self.channel, call)
            if call.trace_span is not None:
                call.trace_span.stage("send")
            return self._recv_reply_checked()
        finally:
            if deadline is not None:
                # Disarming is a plain attribute store, harmless even
                # on a channel the deadline just killed.
                self._set_deadline(None)

    def _recv_reply_checked(self):
        """recv_reply with framing errors normalized to channel failures.

        A ProtocolError mid-reply leaves the stream position unknown —
        the exclusive mirror of the demux reader dying — so the channel
        closes and the caller sees ``kind="peer-protocol-error"``
        (which the connection cache then discards) instead of a leaked,
        poisoned communicator going back into the pool.
        """
        try:
            return self.protocol.recv_reply(self.channel)
        except ProtocolError as exc:
            self.channel.close()
            raise CommunicationError(
                f"unparseable reply from {self.channel.peer}: {exc}",
                kind="peer-protocol-error",
            ) from exc

    def invoke_async(self, call):
        """Send *call* without waiting; returns a Future of the Reply.

        On a multiplexed communicator the calling thread only pays for
        the send — the demux reader completes the future when the
        correlated reply arrives.  On an exclusive communicator the
        round trip runs inline and the returned future is already done
        (the Orb wraps exclusive invokes in a worker thread instead).
        """
        future = Future()
        if call.oneway:
            try:
                self._send_oneway(call)
            except Exception as exc:
                future.set_exception(exc)
            else:
                future.set_result(None)
            return future
        if not self.multiplexed:
            try:
                future.set_result(self.invoke(call))
            except Exception as exc:
                future.set_exception(exc)
            return future
        if call.request_id is None:
            call.request_id = self.protocol.next_request_id()
        deadline = call.deadline
        with self._pending_lock:
            if self.channel.closed:
                raise CommunicationError(
                    f"channel to {self.channel.peer} is closed",
                    kind="channel-closed",
                )
            self._pending[call.request_id] = future
            if deadline is not None:
                # Arm the expiry on the completion-table entry: the
                # demux reader's select timeout enforces it even when
                # nobody blocks on the future (invoke's result-timeout
                # backstop still covers mid-frame stalls).
                self._table.deadlines[call.request_id] = deadline.expires_at
            depth = len(self._pending)
        if self._pending_gauge is not None:
            self._pending_gauge.set(depth)
        self._ensure_reader()
        try:
            self.flush()
            self.protocol.send_request(self.channel, call)
        except BaseException as exc:
            with self._pending_lock:
                self._pending.pop(call.request_id, None)
                self._table.deadlines.pop(call.request_id, None)
            if isinstance(exc, CommunicationError):
                # A failed send killed the channel; spool its flight
                # ring from this thread.  The demux reader reports the
                # same death, but an orderly stop can disarm the
                # recorder before that thread wakes — the once-only
                # spool guard dedupes when both get there.
                self._channel_postmortem(exc)
            raise
        if call.trace_span is not None:
            call.trace_span.stage("send")
        return future

    def invoke_pipelined(self, calls):
        """Send a burst of calls in ONE channel write; returns futures.

        The transmission-policy counterpart of oneway batching for
        two-way traffic: every request in *calls* is tagged, registered
        in the completion table, encoded back-to-back and flushed with a
        single send, so a window of W calls costs one syscall instead of
        W.  Multiplexed communicators only.
        """
        if not self.multiplexed:
            raise HeidiRmiError(
                "pipelined bursts need a multiplexed communicator"
            )
        futures = []
        registered = []
        buffer = _SendBuffer()
        try:
            with self._pending_lock:
                if self.channel.closed:
                    raise CommunicationError(
                        f"channel to {self.channel.peer} is closed",
                        kind="channel-closed",
                    )
                for call in calls:
                    future = Future()
                    if call.oneway:
                        self.protocol.send_request(buffer, call)
                        future.set_result(None)
                    else:
                        if call.request_id is None:
                            call.request_id = self.protocol.next_request_id()
                        self.protocol.send_request(buffer, call)
                        self._pending[call.request_id] = future
                        if call.deadline is not None:
                            self._table.deadlines[call.request_id] = (
                                call.deadline.expires_at
                            )
                        registered.append(call.request_id)
                    futures.append(future)
                depth = len(self._pending)
            if self._pending_gauge is not None:
                self._pending_gauge.set(depth)
            self._ensure_reader()
            self.flush()
            if buffer.data:
                self.channel.send(bytes(buffer.data))
        except BaseException as exc:
            with self._pending_lock:
                for request_id in registered:
                    self._pending.pop(request_id, None)
                    self._table.deadlines.pop(request_id, None)
            if isinstance(exc, CommunicationError):
                # Sender-side spool: see invoke_async.
                self._channel_postmortem(exc)
            raise
        return futures

    def invoke_pipelined_sync(self, calls, deadline=None):
        """Send a burst in ONE write and block until every reply lands.

        The synchronous sibling of :meth:`invoke_pipelined`: same
        single-send transmission policy, but the whole window completes
        through one shared :class:`_BulkCollector` event instead of a
        future per call — the cheapest way to drive a saturated
        pipeline.  Returns replies in call order (None for oneways).
        """
        if not self.multiplexed:
            raise HeidiRmiError(
                "pipelined bursts need a multiplexed communicator"
            )
        if not isinstance(calls, (list, tuple)):
            calls = list(calls)
        expected = sum(1 for call in calls if not call.oneway)
        collector = _BulkCollector(expected)
        registered = []
        buffer = _SendBuffer()
        send_request = self.protocol.send_request
        next_request_id = self.protocol.next_request_id
        pending = self._pending
        try:
            with self._pending_lock:
                if self.channel.closed:
                    raise CommunicationError(
                        f"channel to {self.channel.peer} is closed",
                        kind="channel-closed",
                    )
                for call in calls:
                    if not call.oneway:
                        if call.request_id is None:
                            call.request_id = next_request_id()
                        pending[call.request_id] = collector
                        if call.deadline is not None:
                            self._table.deadlines[call.request_id] = (
                                call.deadline.expires_at
                            )
                        registered.append(call.request_id)
                    send_request(buffer, call)
                depth = len(pending)
            if self._pending_gauge is not None:
                self._pending_gauge.set(depth)
            self._ensure_reader()
            self.flush()
            if buffer.data:
                self.channel.send(bytes(buffer.data))
        except BaseException as exc:
            with self._pending_lock:
                for request_id in registered:
                    self._pending.pop(request_id, None)
                    self._table.deadlines.pop(request_id, None)
            if isinstance(exc, CommunicationError):
                # Sender-side spool: see invoke_async.
                self._channel_postmortem(exc)
            raise
        if registered:
            if deadline is None:
                collector.event.wait()
            elif not collector.event.wait(
                timeout=max(0.0, deadline.remaining())
            ):
                # Unregister what is still outstanding so late replies
                # become counted orphans; channel-mates are untouched.
                with self._pending_lock:
                    for request_id in registered:
                        self._pending.pop(request_id, None)
                        self._table.deadlines.pop(request_id, None)
                    depth = len(self._pending)
                if self._pending_gauge is not None:
                    self._pending_gauge.set(depth)
                raise DeadlineExceeded(
                    f"deadline expired with {collector.remaining} of "
                    f"{len(registered)} replies outstanding"
                )
            if collector.error is not None:
                raise collector.error
        return [None if call.oneway else collector.replies[call.request_id]
                for call in calls]

    def _send_oneway(self, call):
        if not self._batch_oneways:
            self.flush()
            self.protocol.send_request(self.channel, call)
            return
        buffer = _SendBuffer()
        self.protocol.send_request(buffer, call)
        with self._batch_lock:
            self._batch += buffer.data
            self._batch_calls += 1
            full = (len(self._batch) >= self._batch_max_bytes
                    or self._batch_calls >= self._batch_max_calls)
        if full:
            self.flush()

    def flush(self):
        """Push any batched oneway bytes onto the wire."""
        # Unlocked empty peek: flush-before-send ordering only matters
        # for the calling thread's OWN earlier oneways, and those are
        # visible to its own len() read; racing appends by other threads
        # carry no ordering promise against this call.
        if not self._batch:
            return
        with self._batch_lock:
            if not self._batch:
                return
            data = bytes(self._batch)
            self._batch.clear()
            self._batch_calls = 0
        self.channel.send(data)
        if self._oneway_flushes is not None:
            self._oneway_flushes.inc()

    # -- reply demultiplexing ----------------------------------------------

    def _ensure_reader(self):
        if self._reader is not None:
            return
        with self._reader_lock:
            if self._reader is None:
                self._reader = threading.Thread(
                    target=self._demux_loop,
                    name="heidirmi-demux",
                    daemon=True,
                )
                self._reader.start()

    def _enforce_deadlines(self):
        """Park until bytes arrive or the earliest armed expiry passes.

        The pump half of deadline enforcement: instead of every caller
        polling its own budget, the demux reader waits on the channel
        with a timeout equal to the completion table's earliest armed
        expiry and fails exactly the entries that lapsed — with zero
        inbound bytes ever required.  Channel-mates and the shared
        channel itself are untouched; a late reply to an expired id is
        counted as an orphan like any abandoned call's.
        """
        table = self._table
        channel = self.channel
        wait_readable = getattr(channel, "wait_readable", None)
        while True:
            expiry = table.next_expiry()
            if expiry is None:
                return
            now = time.monotonic()
            if expiry > now:
                if wait_readable is None:
                    # Channel cannot wait with a timeout (a bare test
                    # double); caller-side backstops still enforce.
                    return
                if wait_readable(expiry - now):
                    return  # bytes (or channel death): go read them
                now = time.monotonic()
            expired = table.expire(now)
            if expired and self._pending_gauge is not None:
                self._pending_gauge.set(len(table))
            for request_id, waiter in expired:
                exc = DeadlineExceeded(
                    f"deadline expired waiting for reply "
                    f"(id {request_id}) from {channel.peer}"
                )
                if type(waiter) is _BulkCollector:
                    waiter.fail(exc)
                else:
                    waiter.set_exception(exc)

    def _demux_loop(self):
        recv_reply = self.protocol.recv_reply
        channel = self.channel
        deadlines = self._table.deadlines
        while True:
            batch = []
            try:
                # One dict truthiness test on the no-deadline hot path;
                # armed entries route through the select-timeout wait.
                if deadlines and not channel.has_buffered:
                    self._enforce_deadlines()
                batch.append(recv_reply(channel))
                # Servers coalesce replies into one send, so more whole
                # replies usually sit in the receive buffer already —
                # drain them now and resolve the lot under one lock.
                while channel.has_buffered:
                    batch.append(recv_reply(channel))
            except CommunicationError as exc:
                self._resolve(batch)
                self._channel_postmortem(exc)
                # Mark the channel dead before failing waiters: the
                # multiplexed ConnectionCache only replaces a shared
                # communicator once it reads as closed, and this reader
                # thread is never restarted — leaving the channel "open"
                # would hang every later invoke on it.
                self.channel.close()
                self._fail_pending(exc)
                return
            except Exception as exc:
                # A framing error leaves the stream position unknown;
                # nothing after it can be trusted, so the channel dies.
                # kind="reader-died" distinguishes this from transport
                # failures (recv-failed/peer-closed), which keep their
                # own kind from the except branch above.
                self._resolve(batch)
                died = CommunicationError(
                    f"demultiplexer failed: {exc}", kind="reader-died"
                )
                self._channel_postmortem(died)
                self.channel.close()
                self._fail_pending(died)
                return
            if self._demux_batch is not None:
                self._demux_batch.record(len(batch))
            self._resolve(batch)

    def _resolve(self, replies):
        if not replies:
            return
        waiters, depth = self._table.take(
            [reply.request_id for reply in replies]
        )
        if self._pending_gauge is not None:
            self._pending_gauge.set(depth)
        for waiter, reply in zip(waiters, replies):
            if waiter is None:
                if is_channel_level_error(reply):
                    # Id 0 is reserved: the server failed on a request it
                    # could not even parse, so it cannot name the call it
                    # is rejecting.  One of our waiters would otherwise
                    # never complete — fail them all with the server's
                    # diagnosis rather than hang the unlucky one.
                    try:
                        detail = reply.get_string()
                    except Exception:
                        detail = ""
                    self._fail_pending(CommunicationError(
                        "peer reported an uncorrelatable protocol error "
                        f"[{reply.repo_id}] {detail}".rstrip(),
                        kind="peer-protocol-error",
                    ))
                    continue
                self.orphaned_replies += 1
            elif type(waiter) is _BulkCollector:
                waiter.add(reply.request_id, reply)
            else:
                waiter.set_result(reply)

    def abandon(self, request_id):
        """Drop one pending entry whose caller stopped waiting.

        Used by deadline enforcement on multiplexed channels: the
        expired call's completion-table entry is removed so the demux
        reader counts its late reply (if one ever arrives) as an orphan
        instead of delivering it to nobody — and every channel-mate
        keeps its own entry.  Returns True if the entry existed.
        """
        waiter, depth = self._table.discard(request_id)
        if self._pending_gauge is not None:
            self._pending_gauge.set(depth)
        return waiter is not None

    def _fail_pending(self, exc):
        pending = self._table.drain()
        # race-ok: alias refresh after drain swapped the dict; the
        # channel is already closed, so invoke_async's closed-check
        # under the lock keeps new registrations out of the old dict.
        self._pending = self._table.entries
        if pending and self._metrics is not None:
            self._count_error(exc)
            self._pending_gauge.set(0)
        for waiter in pending.values():
            if type(waiter) is _BulkCollector:
                waiter.fail(exc)
            else:
                waiter.set_exception(exc)

    # -- server side -------------------------------------------------------

    def next_request(self, object_exists=None):
        """Block for the next incoming request Call."""
        return self.protocol.recv_request(self.channel,
                                          object_exists=object_exists)

    def reply(self, reply):
        sink = self._reply_sink
        if sink.data:
            # Earlier coalesced replies ride along in the same send.
            self.protocol.send_reply(sink, reply)
            data = bytes(sink.data)
            sink.data.clear()
            self._sink_replies = 0
            self.channel.send(data)
            if self._reply_flushes is not None:
                self._reply_flushes.inc()
            return
        self.protocol.send_reply(self.channel, reply)

    def buffer_reply(self, reply):
        """Hold *reply* to coalesce with the next reply's send.

        Servers call this instead of :meth:`reply` while further
        requests are already buffered on the channel — correlation ids
        let the client sort the grouped replies out, and one send for a
        backlog of replies beats one syscall each.  Coalescing is capped
        by ``reply_max_bytes``/``reply_max_calls`` so a saturated
        pipeline cannot have its replies withheld without bound.
        """
        sink = self._reply_sink
        self.protocol.send_reply(sink, reply)
        self._sink_replies += 1
        if self._coalesced_replies is not None:
            self._coalesced_replies.inc()
        if (len(sink.data) >= self._reply_max_bytes
                or self._sink_replies >= self._reply_max_calls):
            self.flush_replies()

    def flush_replies(self):
        """Send any coalesced replies held in the sink.

        The server loop calls this before blocking for the next request:
        a trailing oneway (or a client that simply stops sending) would
        otherwise leave buffered replies stranded forever.
        """
        sink = self._reply_sink
        if not sink.data:
            return
        data = bytes(sink.data)
        sink.data.clear()
        self._sink_replies = 0
        self.channel.send(data)
        if self._reply_flushes is not None:
            self._reply_flushes.inc()

    def reply_error(self, category, message, request_id=None):
        """Convenience for protocol-level failures (bad request line...)."""
        marshaller = self.protocol.new_marshaller()
        reply = Reply(status=STATUS_ERROR, repo_id=category,
                      marshaller=marshaller, request_id=request_id)
        reply.put_string(message)
        try:
            self.reply(reply)
        except CommunicationError:
            pass  # peer already gone; nothing to report to

    # -- lifecycle ------------------------------------------------------------

    def _channel_postmortem(self, reason):
        """Spool the channel's flight bundle for an abnormal death."""
        recorder = getattr(self.channel, "flight", None)
        if recorder is not None:
            recorder.postmortem(reason)

    def close(self):
        # Orderly teardown: a disarmed recorder never spools, so cache
        # eviction and Orb.stop() leave no bogus "postmortem" bundles.
        recorder = getattr(self.channel, "flight", None)
        if recorder is not None:
            recorder.disarm()
        self.channel.close()
        self._fail_pending(
            CommunicationError(
                f"channel to {self.channel.peer} was closed",
                kind="channel-closed",
            )
        )

    @property
    def closed(self):
        return self.channel.closed

"""Pass-by-value (`incopy`) support and dynamic type checking.

The paper's ``incopy`` qualifier copies an object across the interface
*if possible*: "Whether a particular object has actually implemented the
required marshaling/unmarshaling primitives is determined by testing if
it implements the HdSerializable interface.  The dynamic type checking
support that is implemented in Heidi is utilized for this purpose."

Here :class:`HdSerializable` is that interface, :class:`TypeRegistry`
is the dynamic type-checking support (repository-ID → classes, with
inheritance), and :func:`put_object`/:func:`get_object` implement the
pass-by-value-or-reference decision used by stubs and skeletons.
The semantics match Java RMI's treatment of a ``Serializable`` that is
not ``Remote``: a true copy travels, and no skeleton is ever created
for it.
"""

import threading

from repro.heidirmi.errors import MarshalError
from repro.heidirmi.objref import ObjectReference


class HdSerializable:
    """Objects that can be copied across the interface (pass-by-value).

    Implementations provide the marshalling primitives the ORB run-time
    uses when a parameter is passed ``incopy``:

    - ``_hd_type_id()`` — the repository ID naming the value's type;
    - ``_hd_marshal(call, orb)`` — write the object's state;
    - classmethod ``_hd_unmarshal(call, orb)`` — rebuild a copy.
    """

    def _hd_type_id(self):
        raise NotImplementedError

    def _hd_marshal(self, call, orb):
        raise NotImplementedError

    @classmethod
    def _hd_unmarshal(cls, call, orb):
        raise NotImplementedError


def is_serializable(obj):
    """Heidi-style dynamic check for the HdSerializable interface.

    Duck-typed on purpose: legacy classes need not inherit from
    :class:`HdSerializable`, mirroring how Heidi's dynamic type checking
    tested for interface support at run time.
    """
    return (
        callable(getattr(obj, "_hd_marshal", None))
        and callable(getattr(obj, "_hd_type_id", None))
        and callable(getattr(type(obj), "_hd_unmarshal", None))
    )


class TypeInfo:
    """Everything the runtime knows about one repository ID."""

    __slots__ = ("type_id", "stub_class", "skeleton_class", "value_class", "parents")

    def __init__(self, type_id):
        self.type_id = type_id
        self.stub_class = None
        self.skeleton_class = None
        self.value_class = None
        #: Repository IDs of the direct base interfaces.
        self.parents = ()


class TypeRegistry:
    """Repository-ID keyed registry with inheritance-aware ``is_a``.

    One process-global instance (:data:`GLOBAL_TYPES`) is shared by all
    ORBs, since generated stub/skeleton classes are process-global too;
    tests may build private registries.
    """

    def __init__(self):
        self._types = {}
        self._lock = threading.Lock()

    def _info(self, type_id):
        with self._lock:
            info = self._types.get(type_id)
            if info is None:
                info = TypeInfo(type_id)
                self._types[type_id] = info
            return info

    # -- registration -----------------------------------------------------

    def register_stub(self, type_id, stub_class, parents=()):
        info = self._info(type_id)
        info.stub_class = stub_class
        if parents:
            info.parents = tuple(parents)
        return stub_class

    def register_skeleton(self, type_id, skeleton_class, parents=()):
        info = self._info(type_id)
        info.skeleton_class = skeleton_class
        if parents:
            info.parents = tuple(parents)
        return skeleton_class

    def register_value(self, type_id, value_class):
        info = self._info(type_id)
        info.value_class = value_class
        return value_class

    def register_interface(self, type_id, stub_class=None, skeleton_class=None,
                           parents=()):
        info = self._info(type_id)
        if stub_class is not None:
            info.stub_class = stub_class
        if skeleton_class is not None:
            info.skeleton_class = skeleton_class
        if parents:
            info.parents = tuple(parents)

    # -- lookup ------------------------------------------------------------

    def stub_class(self, type_id):
        info = self._types.get(type_id)
        return info.stub_class if info else None

    def skeleton_class(self, type_id):
        info = self._types.get(type_id)
        return info.skeleton_class if info else None

    def value_class(self, type_id):
        info = self._types.get(type_id)
        return info.value_class if info else None

    def parents(self, type_id):
        info = self._types.get(type_id)
        return info.parents if info else ()

    def is_a(self, type_id, candidate_base):
        """Dynamic type check: does *type_id* conform to *candidate_base*?"""
        if type_id == candidate_base:
            return True
        seen = set()
        stack = [type_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for parent in self.parents(current):
                if parent == candidate_base:
                    return True
                stack.append(parent)
        return False

    def known_types(self):
        return sorted(self._types)


#: The process-global registry generated code registers into.
GLOBAL_TYPES = TypeRegistry()


# ---------------------------------------------------------------------------
# Object passing
# ---------------------------------------------------------------------------

# Discriminator written before every object value on the wire:
# True → a by-value copy follows; False → an object reference follows.
def put_object(call, obj, orb, direction="in"):
    """Marshal an object parameter per the paper's incopy rules.

    ``direction == "incopy"`` requests pass-by-value; the copy happens
    only if the object is serializable, otherwise the parameter quietly
    degrades to pass-by-reference (the "if possible" in the paper).
    """
    if obj is None:
        call.put_boolean(False)
        call.put_objref(None)
        return
    if direction == "incopy" and is_serializable(obj):
        call.put_boolean(True)
        call.put_string(obj._hd_type_id())
        call.begin("value")
        obj._hd_marshal(call, orb)
        call.end()
        return
    call.put_boolean(False)
    reference = _reference_for(obj, orb)
    call.put_objref(reference.stringify())


def _reference_for(obj, orb):
    """An ObjectReference for *obj*, registering the object if needed."""
    if isinstance(obj, ObjectReference):
        return obj
    existing = getattr(obj, "_hd_ref", None)
    if isinstance(existing, ObjectReference):
        return existing
    if orb is None:
        raise MarshalError(
            f"cannot pass {type(obj).__name__} by reference without an ORB"
        )
    # Passing an unregistered implementation object: the skeleton comes
    # into being exactly because a reference is crossing the wire
    # (paper: "The skeleton for a particular object is only created when
    # a reference to it is being passed").
    return orb.export(obj)


def get_object(call, orb, registry=None):
    """Unmarshal an object parameter: a copy, a stub, or None."""
    registry = registry if registry is not None else GLOBAL_TYPES
    by_value = call.get_boolean()
    if by_value:
        type_id = call.get_string()
        value_class = registry.value_class(type_id)
        if value_class is None:
            raise MarshalError(
                f"no serializable class registered for {type_id!r}"
            )
        call.begin("value")
        value = value_class._hd_unmarshal(call, orb)
        call.end()
        return value
    stringified = call.get_objref()
    if stringified is None:
        return None
    reference = ObjectReference.parse(stringified)
    if orb is None:
        return reference
    # "At the receiving end, the type information contained in the object
    # reference is utilized to create a stub of the appropriate type."
    return orb.resolve(reference)

"""The per-address-space ORB core.

One :class:`Orb` per address space: it owns the bootstrap port, the
object table, the stub/skeleton caches and the connection cache, and it
drives both sides of Figs. 4 and 5:

- client side — ``create_call`` / ``invoke`` behind the stubs;
- server side — accept a connection on the bootstrap port, wrap an
  ``ObjectCommunicator`` around it, read requests, select the skeleton
  by the object identifier and type in the call header, and dispatch.

Everything the paper calls configurable is a constructor knob: the
transport, the wire protocol, the dispatch strategy, and each cache.
"""

import threading
import traceback

from repro.heidirmi.call import Reply, STATUS_ERROR, STATUS_EXCEPTION, STATUS_OK, Call
from repro.heidirmi.communicator import ObjectCommunicator
from repro.heidirmi.connection import ConnectionCache
from repro.heidirmi.errors import (
    CommunicationError,
    HeidiRmiError,
    MethodNotFound,
    ObjectNotFound,
    ProtocolError,
    RemoteError,
)
from repro.heidirmi.exceptions_user import HdUserException
from repro.heidirmi.objref import ObjectReference
from repro.heidirmi.protocol import get_protocol
from repro.heidirmi.serialize import GLOBAL_TYPES
from repro.heidirmi.stub import HdStub
from repro.heidirmi.transport import get_transport


class Orb:
    """A configurable object request broker for one address space."""

    def __init__(
        self,
        host="127.0.0.1",
        port=0,
        transport="tcp",
        protocol="text",
        dispatch_strategy="hash",
        types=None,
        cache_stubs=True,
        cache_skeletons=True,
        cache_connections=True,
        threading_model="threaded",
        trace=None,
    ):
        self.host = host
        self.transport_name = transport
        self.protocol = get_protocol(protocol)
        self.dispatch_strategy = dispatch_strategy
        if threading_model not in ("threaded", "serialized"):
            raise HeidiRmiError(
                f"unknown threading model {threading_model!r}; "
                "choose 'threaded' or 'serialized'"
            )
        #: "threaded" dispatches requests concurrently (one worker per
        #: connection); "serialized" runs at most one implementation
        #: upcall at a time — the non-preemptive computation model the
        #: paper says made a general-purpose ORB unusable for Heidi.
        self.threading_model = threading_model
        self._dispatch_serial_lock = (
            threading.Lock() if threading_model == "serialized" else None
        )
        self.types = types if types is not None else GLOBAL_TYPES
        self.trace = trace
        self._transport = get_transport(transport)
        self._requested_port = port
        self._listener = None
        self._acceptor_thread = None
        self._running = False
        self._lock = threading.RLock()

        # Object table: oid -> (impl, type_id); skeletons made lazily.
        self._objects = {}
        self._object_refs = {}  # id(impl) -> ObjectReference
        self._next_oid = 1

        self._cache_stubs = cache_stubs
        self._cache_skeletons = cache_skeletons
        self._stubs = {}
        self._skeletons = {}
        self.connections = ConnectionCache(
            get_transport, self.protocol, enabled=cache_connections
        )
        # Accepted server-side communicators, closed on stop() so worker
        # threads blocked in recv unwind promptly.
        self._active = set()
        #: Counters read by the caching benchmarks.
        self.stats = {
            "stub_hits": 0,
            "stub_created": 0,
            "skeleton_hits": 0,
            "skeleton_created": 0,
            "requests": 0,
            "calls": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Bind the bootstrap port and start accepting connections."""
        with self._lock:
            if self._running:
                return self
            self._listener = self._transport.listen(self.host, self._requested_port)
            self._running = True
        self._acceptor_thread = threading.Thread(
            target=self._accept_loop, name="heidirmi-acceptor", daemon=True
        )
        self._acceptor_thread.start()
        self._event("orb:listen", address=self.address)
        return self

    def stop(self):
        """Shut down the listener, worker threads and cached connections."""
        with self._lock:
            if not self._running:
                return
            self._running = False
        if self._listener is not None:
            self._listener.close()
        with self._lock:
            active = list(self._active)
            self._active.clear()
        for communicator in active:
            communicator.close()
        self.connections.close_all()

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, exc_tb):
        self.stop()

    @property
    def address(self):
        """(host, port) actually bound (port resolves 0 → ephemeral)."""
        if self._listener is not None:
            return self._listener.address
        return (self.host, self._requested_port)

    @property
    def port(self):
        return self.address[1]

    def _event(self, name, **detail):
        if self.trace is not None:
            self.trace(name, detail)

    # -- object registration ---------------------------------------------------

    def register(self, impl, type_id=None, oid=None):
        """Register an implementation object; returns its reference.

        The implementation need not know it is remote-accessible — the
        delegation skeleton is created lazily, at first dispatch or when
        the reference crosses the wire.
        """
        if type_id is None:
            type_id = self._type_id_of(impl)
        with self._lock:
            if oid is None:
                oid = str(self._next_oid)
                self._next_oid += 1
            elif oid in self._objects:
                raise HeidiRmiError(f"object id {oid!r} already registered")
            self._objects[oid] = (impl, type_id)
            reference = ObjectReference(
                protocol=self.transport_name,
                host=self.host,
                port=self.port,
                object_id=oid,
                type_id=type_id,
            )
            self._object_refs[id(impl)] = reference
        self._event("orb:register", oid=oid, type_id=type_id)
        return reference

    def export(self, impl, type_id=None):
        """The reference for *impl*, registering it on first export."""
        existing = self._object_refs.get(id(impl))
        if existing is not None:
            return existing
        return self.register(impl, type_id=type_id)

    def unregister(self, oid):
        with self._lock:
            self._objects.pop(oid, None)
            self._skeletons.pop(oid, None)

    @staticmethod
    def _type_id_of(impl):
        type_id = getattr(impl, "_hd_type_id_", None)
        if isinstance(type_id, str) and type_id:
            return type_id
        getter = getattr(impl, "_hd_type_id", None)
        if callable(getter):
            return getter()
        raise HeidiRmiError(
            f"cannot infer a repository ID for {type(impl).__name__}; "
            "pass type_id= explicitly"
        )

    # -- stubs -------------------------------------------------------------------

    def resolve(self, reference):
        """A stub for *reference* (cached per stringified reference)."""
        if isinstance(reference, str):
            reference = ObjectReference.parse(reference)
        key = reference.stringify()
        if self._cache_stubs:
            stub = self._stubs.get(key)
            if stub is not None:
                self.stats["stub_hits"] += 1
                return stub
        stub_class = self.types.stub_class(reference.type_id) or HdStub
        stub = stub_class(reference, self)
        self.stats["stub_created"] += 1
        self._event("orb:stub", type_id=reference.type_id,
                    cls=stub_class.__name__)
        if self._cache_stubs:
            self._stubs[key] = stub
        return stub

    # -- client call path (Fig. 4) --------------------------------------------------

    def create_call(self, reference, operation, oneway=False):
        """A new writable Call addressed at *reference* (Fig. 4 step 1)."""
        self._event("call:new", operation=operation)
        return Call(
            reference.stringify(),
            operation,
            marshaller=self.protocol.new_marshaller(),
            oneway=oneway,
        )

    def invoke(self, reference, call):
        """Invoke *call* (Fig. 4 steps 2–4); returns the Reply."""
        self.stats["calls"] += 1
        bootstrap = reference.bootstrap
        communicator = self.connections.acquire(bootstrap)
        self._event("call:invoke", operation=call.operation,
                    target=call.target)
        try:
            reply = communicator.invoke(call)
        except CommunicationError:
            self.connections.discard(communicator)
            raise
        self.connections.release(bootstrap, communicator)
        self._event("call:reply", status=None if reply is None else reply.status)
        return reply

    def rebuild_exception(self, reply):
        """Turn an EXC reply back into the declared exception instance."""
        exc_class = self.types.value_class(reply.repo_id)
        if exc_class is not None and issubclass(exc_class, HdUserException):
            return exc_class._hd_unmarshal(reply, self)
        return RemoteError("user exception", repo_id=reply.repo_id)

    # -- server side (Fig. 5) ------------------------------------------------------

    def _accept_loop(self):
        while self._running:
            try:
                channel = self._listener.accept()
            except CommunicationError:
                break
            self._event("orb:accept", peer=channel.peer)
            worker = threading.Thread(
                target=self._serve_channel,
                args=(channel,),
                name="heidirmi-conn",
                daemon=True,
            )
            worker.start()

    def _serve_channel(self, channel):
        # "When a client connects to the bootstrap port, a new
        # ObjectCommunicator is wrapped around the resulting connection."
        # Whatever happens inside, this worker must never die without
        # closing the channel — a silently leaked connection would leave
        # the client blocked forever.
        communicator = ObjectCommunicator(channel, self.protocol)
        with self._lock:
            self._active.add(communicator)
        try:
            self._serve_requests(communicator)
        except Exception:  # defensive: bug in the server loop itself
            self._event("orb:server-loop-error", error=traceback.format_exc())
        finally:
            with self._lock:
                self._active.discard(communicator)
            communicator.close()

    def _serve_requests(self, communicator):
        while self._running and not communicator.closed:
            try:
                call = communicator.next_request(
                    object_exists=self._object_key_exists
                )
            except CommunicationError:
                return
            except ProtocolError as exc:
                # A human (or buggy peer) typed something malformed; keep
                # the connection alive so they can try again — this is
                # what made telnet debugging possible.
                communicator.reply_error("Protocol", str(exc))
                continue
            self._event("orb:request", operation=call.operation)
            self.stats["requests"] += 1
            reply = self._handle_request(call)
            if call.oneway:
                continue
            try:
                communicator.reply(reply)
            except CommunicationError:
                return
            except HeidiRmiError as exc:
                # The reply itself failed to encode (e.g. a result value
                # the marshaller rejects): report instead of dying.
                communicator.reply_error(type(exc).__name__, str(exc))

    def _object_key_exists(self, object_key):
        """Locate support: does this address space host *object_key*?"""
        try:
            reference = ObjectReference.parse(
                object_key.decode("utf-8") if isinstance(object_key, bytes)
                else object_key
            )
        except (ProtocolError, UnicodeDecodeError):
            return False
        return reference.object_id in self._objects

    def _handle_request(self, call):
        """Select the skeleton from the call header and dispatch (Fig. 5)."""
        try:
            reference = ObjectReference.parse(call.target)
            skeleton = self._skeleton_for(reference)
            reply = Reply(status=STATUS_OK, marshaller=self.protocol.new_marshaller())
            self._event(
                "orb:dispatch",
                operation=call.operation,
                skeleton=type(skeleton).__name__,
            )
            if self._dispatch_serial_lock is not None:
                with self._dispatch_serial_lock:
                    skeleton.dispatch(call, reply)
            else:
                skeleton.dispatch(call, reply)
            return reply
        except HdUserException as exc:
            reply = Reply(
                status=STATUS_EXCEPTION,
                repo_id=exc._hd_repo_id_,
                marshaller=self.protocol.new_marshaller(),
            )
            exc._hd_marshal(reply, self)
            return reply
        except ObjectNotFound as exc:
            return self._error_reply("ObjectNotFound", str(exc))
        except MethodNotFound as exc:
            return self._error_reply("MethodNotFound", str(exc))
        except (ProtocolError, HeidiRmiError) as exc:
            return self._error_reply(type(exc).__name__, str(exc))
        except Exception as exc:  # implementation bug: report, don't die
            self._event("orb:implementation-error",
                        error=traceback.format_exc())
            return self._error_reply("Implementation", f"{type(exc).__name__}: {exc}")

    def _error_reply(self, category, message):
        reply = Reply(
            status=STATUS_ERROR,
            repo_id=category,
            marshaller=self.protocol.new_marshaller(),
        )
        reply.put_string(message)
        return reply

    def _skeleton_for(self, reference):
        """The skeleton for a local object, created lazily and cached."""
        oid = reference.object_id
        if self._cache_skeletons:
            skeleton = self._skeletons.get(oid)
            if skeleton is not None:
                self.stats["skeleton_hits"] += 1
                return skeleton
        entry = self._objects.get(oid)
        if entry is None:
            raise ObjectNotFound(oid)
        impl, type_id = entry
        skel_class = self.types.skeleton_class(type_id)
        if skel_class is None:
            skel_class = getattr(impl, "_hd_skel_class_", None)
        if skel_class is None:
            raise HeidiRmiError(
                f"no skeleton class registered for {type_id!r}"
            )
        skeleton = skel_class(impl, self, dispatch_strategy=self.dispatch_strategy)
        self.stats["skeleton_created"] += 1
        self._event("orb:skeleton", type_id=type_id, cls=skel_class.__name__)
        if self._cache_skeletons:
            self._skeletons[oid] = skeleton
        return skeleton

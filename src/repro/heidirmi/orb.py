"""The per-address-space ORB core.

One :class:`Orb` per address space: it owns the bootstrap port, the
object table, the stub/skeleton caches and the connection cache, and it
drives both sides of Figs. 4 and 5:

- client side — ``create_call`` / ``invoke`` behind the stubs;
- server side — accept a connection on the bootstrap port, wrap an
  ``ObjectCommunicator`` around it, read requests, select the skeleton
  by the object identifier and type in the call header, and dispatch.

Everything the paper calls configurable is a constructor knob: the
transport, the wire protocol, the dispatch strategy, and each cache.
"""

import functools
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor

from repro.heidirmi.call import Reply, STATUS_ERROR, STATUS_EXCEPTION, STATUS_OK, Call
from repro.heidirmi.communicator import ObjectCommunicator
from repro.heidirmi.connection import ConnectionCache
from repro.heidirmi.errors import (
    CommunicationError,
    DeadlineExceeded,
    HeidiRmiError,
    MethodNotFound,
    ObjectNotFound,
    ProtocolError,
    RemoteError,
)
from repro.heidirmi.exceptions_user import HdUserException
from repro.heidirmi.objref import ObjectReference
from repro.heidirmi.protocol import get_protocol
from repro.heidirmi.serialize import GLOBAL_TYPES
from repro.heidirmi.stub import HdStub
from repro.heidirmi.transport import get_transport
from repro.observe import context as _trace_state
from repro.resilience.breaker import BREAKER_CLOSED, BREAKER_OPEN, CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.resilience.engine import PolicyPlan, resilient_invoke, resolve_deadline
from repro.resilience.overload import AdmissionController
from repro.wire.headers import OVERLOADED_CATEGORY, overload_message


class Orb:
    """A configurable object request broker for one address space."""

    def __init__(
        self,
        host="127.0.0.1",
        port=0,
        transport="tcp",
        protocol="text",
        dispatch_strategy="hash",
        types=None,
        cache_stubs=True,
        cache_skeletons=True,
        cache_connections=True,
        threading_model="threaded",
        multiplex=False,
        pipeline_workers=0,
        batch_oneways=False,
        trace=None,
        observer=None,
        connect_timeout=None,
        default_deadline=None,
        resilience=None,
        admission=None,
        monitor=False,
    ):
        self.host = host
        self.transport_name = transport
        self.protocol = get_protocol(protocol)
        self.dispatch_strategy = dispatch_strategy
        if threading_model not in ("threaded", "serialized"):
            raise HeidiRmiError(
                f"unknown threading model {threading_model!r}; "
                "choose 'threaded' or 'serialized'"
            )
        #: "threaded" dispatches requests concurrently (one worker per
        #: connection); "serialized" runs at most one implementation
        #: upcall at a time — the non-preemptive computation model the
        #: paper says made a general-purpose ORB unusable for Heidi.
        self.threading_model = threading_model
        self._dispatch_serial_lock = (
            threading.Lock() if threading_model == "serialized" else None
        )
        self.types = types if types is not None else GLOBAL_TYPES
        self.trace = trace
        #: ``repro.observe.Observer``: when set, every invoke produces a
        #: client span, every served request a server span (linked via
        #: the wire-propagated trace context), and the ORB records the
        #: metric catalogue of docs/OBSERVABILITY.md into its registry.
        #: None (the default) keeps the hot path to ``is None`` tests.
        self.observer = observer
        #: True registers the built-in ORBMonitor object (live ORB
        #: introspection served over the ORB itself) on start().
        self.monitor = bool(monitor)
        self._transport = get_transport(transport)
        self._requested_port = port
        self._listener = None
        self._acceptor_thread = None
        self._running = False
        self._lock = threading.RLock()

        # Object table: oid -> (impl, type_id); skeletons made lazily.
        self._objects = {}
        self._object_refs = {}  # id(impl) -> ObjectReference
        self._next_oid = 1
        # Parsed-target memo for the server hot path: every request on a
        # connection repeats the same stringified references, so parsing
        # each once is pure win.  Bounded to stay byte-sane under churn.
        self._parsed_targets = {}

        self._cache_stubs = cache_stubs
        self._cache_skeletons = cache_skeletons
        # Front cache for the dispatch hot path: raw target string ->
        # skeleton, skipping reference parsing entirely on a hit.
        # Cleared wholesale on unregister; bounded against churn.
        self._target_skeletons = {}
        self._stubs = {}
        self._skeletons = {}
        #: True when client calls share one demultiplexed channel per
        #: peer instead of checking a connection out exclusively.
        self.multiplex = bool(multiplex)
        if self.multiplex and not getattr(
            self.protocol, "supports_multiplexing", False
        ):
            raise HeidiRmiError(
                f"protocol {self.protocol.name!r} has no request ids and "
                "cannot be multiplexed; use protocol='text2' or 'giop'"
            )
        #: >0 enables the server-side pipeline: the connection reader
        #: reads ahead and dispatches to this many pooled workers, so
        #: replies on id-carrying protocols can complete out of order.
        self.pipeline_workers = int(pipeline_workers)
        #: Connection-establishment budget in seconds; None defers to
        #: the transport default (30 s for tcp).
        self.connect_timeout = connect_timeout
        #: Default per-call deadline (seconds or a Deadline budget)
        #: applied when neither the call nor the invoke carries one.
        self.default_deadline = default_deadline
        #: :class:`repro.resilience.ResiliencePolicy` (retry, breaker,
        #: default deadline) — None keeps the pre-resilience hot path.
        self.resilience = resilience
        # One extra boolean test on Orb.invoke is all the resilience
        # layer costs an unconfigured Orb.
        self._resilient = resilience is not None or default_deadline is not None
        if self._resilient:
            # Every invoke on this Orb takes the resilient path, so
            # bind the engine as the *instance's* invoke: stubs reach
            # resilient_invoke in one frame instead of detouring
            # through the class method's dispatch test.  (Policies are
            # fixed at construction; nothing rebinds this later.)
            self.invoke = functools.partial(resilient_invoke, self)
        #: Server-side overload control: an
        #: :class:`~repro.resilience.overload.AdmissionPolicy` (or a
        #: prebuilt AdmissionController) bounds the dispatch queue and
        #: answers the excess with typed ``Overloaded`` replies carrying
        #: retry-after hints.  None (the default) admits everything.
        if admission is None or isinstance(admission, AdmissionController):
            self._admission = admission
        else:
            self._admission = AdmissionController(admission)
        #: True while an orderly drain (``stop(drain=...)``) is running:
        #: the listener is closed, new requests are handed back as
        #: retryable sheds, and in-flight dispatches finish.
        self._draining = False
        # Lazily-built per-endpoint retry budgets (bootstrap-keyed, like
        # the breakers); consulted by the engine before every retry.
        self._retry_budgets = {}  # guarded-by: self._lock
        # Lazily-built per-endpoint circuit breakers (bootstrap-keyed),
        # bounded: once the table outgrows _breaker_cap, creating a new
        # breaker reaps closed breakers whose endpoints hold no cached
        # connections (lifecycle tied to ConnectionCache eviction).
        self._breakers = {}  # guarded-by: self._lock
        self._breaker_cap = 256
        # Bumped whenever the breaker table is reaped; cached PolicyPlans
        # carry the epoch they were built under and rebuild on mismatch.
        self._plan_epoch = 0  # guarded-by: self._lock
        self.connections = ConnectionCache(
            get_transport,
            self.protocol,
            enabled=cache_connections,
            mode="multiplexed" if self.multiplex else "exclusive",
            communicator_options={"batch_oneways": batch_oneways,
                                  "observer": observer},
            observer=observer,
            connect_timeout=connect_timeout,
        )
        self._dispatch_pool = None
        self._async_pool = None
        self._pool_lock = threading.Lock()
        # Accepted server-side communicators, closed on stop() so worker
        # threads blocked in recv unwind promptly.
        self._active = set()  # guarded-by: self._lock
        #: Counters read by the caching benchmarks.  Mutated through
        #: _count() under _stats_lock — concurrent client threads and
        #: pipelined server workers all bump them.
        self._stats_lock = threading.Lock()
        self.stats = {  # guarded-by: self._stats_lock
            "stub_hits": 0,
            "stub_created": 0,
            "skeleton_hits": 0,
            "skeleton_created": 0,
            "requests": 0,
            "calls": 0,
        }
        # Pre-resolved observe instruments; per-operation latency
        # histograms are memoized in _op_instruments so the hot path
        # never touches the registry dict.
        if observer is not None:
            metrics = observer.metrics
            self._requests_counter = metrics.counter(
                "rpc.requests", protocol=self.protocol.name
            )
            self._pipeline_gauge = metrics.gauge("rpc.pipeline_inflight")
            self._server_meter = observer.channel_meter("server")
            self._server_expired_counter = metrics.counter(
                "resilience.deadline_expired", side="server"
            )
        else:
            self._requests_counter = None
            self._pipeline_gauge = None
            self._server_meter = None
            self._server_expired_counter = None
        self._op_instruments = {}

    def _count(self, key, n=1):
        with self._stats_lock:
            self.stats[key] += n

    # -- observe helpers -----------------------------------------------------

    def _op_histogram(self, side, operation):
        """Memoized per-(side, operation) latency histogram."""
        key = (side, operation)
        histogram = self._op_instruments.get(key)
        if histogram is None:
            histogram = self.observer.metrics.histogram(
                f"rpc.{side}_us",
                protocol=self.protocol.name,
                operation=operation,
            )
            self._op_instruments[key] = histogram
        return histogram

    def _finish_client_span(self, call, reply=None, error=None):
        """Close a client span: wait stage, status/error tags, latency."""
        span = call.trace_span
        if span is None:
            return
        if error is not None:
            span.finish(error=error)
            self.observer.metrics.counter(
                "rpc.errors", kind=getattr(error, "kind", "error")
            ).inc()
        else:
            span.stage("wait")
            if reply is not None:
                span.set("status", reply.status)
            span.finish()
        self._op_histogram("invoke", call.operation).record(span.duration_us)

    def _finish_server_span(self, call, reply=None, coalesced=False):
        """Close a server span after its reply left (or was buffered)."""
        span = call.trace_span
        if span is None:
            return
        if reply is not None:
            span.set("status", reply.status)
            if coalesced:
                span.set("coalesced", True)
            span.stage("reply")
        span.finish()
        self._op_histogram("dispatch", call.operation).record(span.duration_us)

    def _watch_future(self, call, future):
        """Finish the call's client span when its reply future resolves."""
        def _complete(done):
            error = done.exception()
            if error is not None:
                self._finish_client_span(call, error=error)
            else:
                self._finish_client_span(call, reply=done.result())
        future.add_done_callback(_complete)

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Bind the bootstrap port and start accepting connections."""
        with self._lock:
            if self._running:
                return self
            self._listener = self._transport.listen(self.host, self._requested_port)
            self._running = True
            self._draining = False
        self._acceptor_thread = threading.Thread(
            target=self._accept_loop, name="heidirmi-acceptor", daemon=True
        )
        self._acceptor_thread.start()
        if self.monitor:
            # Registered after the listener binds (references embed the
            # bound port) and exactly once across restarts.  Imported
            # lazily: repro.observe.monitor imports the stub/skeleton
            # bases from this package.
            from repro.observe.monitor import MONITOR_OID, MonitorImpl

            with self._lock:
                already = MONITOR_OID in self._objects
            if not already:
                self.register(MonitorImpl(self), oid=MONITOR_OID)
        self._event("orb:listen", address=self.address)
        return self

    def stop(self, drain=None):
        """Shut down the listener, worker threads and cached connections.

        *drain* (seconds) requests an orderly drain first: stop
        accepting, let in-flight requests finish under the drain
        deadline, and send each idle peer the protocol's orderly-close
        frame (text2 ``BYE``, GIOP CloseConnection) before the socket
        closes — so multiplexed clients see their pending calls fail as
        retryable ``draining`` handoffs, not channel deaths.  Whatever
        is still busy when the drain deadline passes is force-closed
        exactly as a plain ``stop()`` would.
        """
        if drain is not None:
            self._drain(float(drain))
        with self._lock:
            was_running, self._running = self._running, False
            self._draining = False
        if was_running:
            if self._listener is not None:
                self._listener.close()
            with self._lock:
                active = list(self._active)
                self._active.clear()
            for communicator in active:
                communicator.close()
        # Outbound connections exist even on a client-only Orb that was
        # never start()ed; close them unconditionally so their flight
        # recorders disarm BEFORE the peer's shutdown can look like a
        # channel death from this side.
        self.connections.close_all()
        with self._pool_lock:
            pools = (self._dispatch_pool, self._async_pool)
            self._dispatch_pool = None
            self._async_pool = None
        for pool in pools:
            if pool is not None:
                pool.shutdown(wait=False)

    def _drain(self, timeout):
        """Orderly-drain phase of ``stop(drain=...)``.

        Sets the draining flag (server loops shed new work from here
        on), closes the listener, then polls the accepted communicators:
        each one with no dispatch in flight gets its withheld replies
        flushed, the orderly-close frame, and a close — which also
        unwinds its reader thread, blocked in recv, with a clean
        ``channel-closed``.  Returns once every connection is gone or
        the drain deadline passes (stragglers are force-closed by the
        caller).
        """
        with self._lock:
            if not self._running or self._draining:
                return
            self._draining = True
        if self._listener is not None:
            self._listener.close()
        self._event("orb:drain", timeout=timeout)
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                active = list(self._active)
            remaining = [c for c in active if not c.closed]
            if not remaining:
                return
            for communicator in remaining:
                if (getattr(communicator, "inflight", 0) == 0
                        and getattr(communicator, "inflight_mp", 0) == 0):
                    self._close_orderly(communicator)
            if time.monotonic() >= deadline:
                self._event("orb:drain-expired",
                            remaining=len(remaining))
                return
            time.sleep(0.002)

    def _close_orderly(self, communicator):
        """Flush withheld replies, announce the close, close the socket."""
        try:
            communicator.flush_replies()
            self.protocol.send_close(communicator.channel)
        except (CommunicationError, OSError):
            pass  # peer already gone; the close below still runs
        communicator.close()

    def _dispatch_executor(self):
        with self._pool_lock:
            if self._dispatch_pool is None:
                self._dispatch_pool = ThreadPoolExecutor(
                    max_workers=max(1, self.pipeline_workers),
                    thread_name_prefix="heidirmi-dispatch",
                )
            return self._dispatch_pool

    def _async_executor(self):
        with self._pool_lock:
            if self._async_pool is None:
                self._async_pool = ThreadPoolExecutor(
                    max_workers=8, thread_name_prefix="heidirmi-async"
                )
            return self._async_pool

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc_value, exc_tb):
        self.stop()

    @property
    def address(self):
        """(host, port) actually bound (port resolves 0 → ephemeral)."""
        if self._listener is not None:
            return self._listener.address
        return (self.host, self._requested_port)

    @property
    def port(self):
        return self.address[1]

    def _event(self, name, **detail):
        if self.trace is not None:
            self.trace(name, detail)

    # -- object registration ---------------------------------------------------

    def register(self, impl, type_id=None, oid=None):
        """Register an implementation object; returns its reference.

        The implementation need not know it is remote-accessible — the
        delegation skeleton is created lazily, at first dispatch or when
        the reference crosses the wire.
        """
        if type_id is None:
            type_id = self._type_id_of(impl)
        with self._lock:
            if oid is None:
                oid = str(self._next_oid)
                self._next_oid += 1
            elif oid in self._objects:
                raise HeidiRmiError(f"object id {oid!r} already registered")
            self._objects[oid] = (impl, type_id)
            reference = ObjectReference(
                protocol=self.transport_name,
                host=self.host,
                port=self.port,
                object_id=oid,
                type_id=type_id,
            )
            self._object_refs[id(impl)] = reference
        self._event("orb:register", oid=oid, type_id=type_id)
        return reference

    def export(self, impl, type_id=None):
        """The reference for *impl*, registering it on first export."""
        with self._lock:
            existing = self._object_refs.get(id(impl))
        if existing is not None:
            return existing
        return self.register(impl, type_id=type_id)

    def unregister(self, oid):
        with self._lock:
            self._objects.pop(oid, None)
            self._skeletons.pop(oid, None)
            # Target strings embed the oid; dropping the whole front
            # cache is simpler than finding them (unregister is rare).
            self._target_skeletons.clear()

    @staticmethod
    def _type_id_of(impl):
        type_id = getattr(impl, "_hd_type_id_", None)
        if isinstance(type_id, str) and type_id:
            return type_id
        getter = getattr(impl, "_hd_type_id", None)
        if callable(getter):
            return getter()
        raise HeidiRmiError(
            f"cannot infer a repository ID for {type(impl).__name__}; "
            "pass type_id= explicitly"
        )

    # -- stubs -------------------------------------------------------------------

    def resolve(self, reference):
        """A stub for *reference* (cached per stringified reference)."""
        if isinstance(reference, str):
            reference = ObjectReference.parse(reference)
        key = reference.stringify()
        if self._cache_stubs:
            # Lock-free read; see _skeleton_for for why this is safe.
            stub = self._stubs.get(key)
            if stub is not None:
                self._count("stub_hits")
                return stub
        stub_class = self.types.stub_class(reference.type_id) or HdStub
        stub = stub_class(reference, self)
        self._count("stub_created")
        self._event("orb:stub", type_id=reference.type_id,
                    cls=stub_class.__name__)
        if self._cache_stubs:
            with self._lock:
                # A racing resolver may have cached one meanwhile; keep
                # the first so callers keep seeing a single identity.
                stub = self._stubs.setdefault(key, stub)
        return stub

    # -- client call path (Fig. 4) --------------------------------------------------

    def create_call(self, reference, operation, oneway=False, idempotent=False):
        """A new writable Call addressed at *reference* (Fig. 4 step 1).

        *idempotent* declares the operation retry-safe: a configured
        RetryPolicy may transparently re-send it on retryable failures
        (oneways always qualify).
        """
        if self.trace is not None:
            self._event("call:new", operation=operation)
        call = Call(
            reference.stringify(),
            operation,
            marshaller=self.protocol.new_marshaller(),
            oneway=oneway,
            idempotent=idempotent,
        )
        if self.observer is not None:
            # The span starts here so parameter marshalling (between
            # create_call and invoke) shows up as the marshal stage;
            # its context token rides the wire to link the server span.
            span = self.observer.start_span(
                "client", operation, protocol=self.protocol.name
            )
            call.trace_span = span
            call.trace_context = span.context.token()
        return call

    def invoke(self, reference, call, deadline=None):
        """Invoke *call* (Fig. 4 steps 2–4); returns the Reply.

        *deadline* (seconds or a :class:`repro.resilience.Deadline`)
        bounds the whole invocation — connect, send and reply wait —
        and is propagated on the wire so the server can drop the
        request once it expires.  Calls with no deadline, on an Orb
        with no resilience policy, take the exact pre-resilience path.
        """
        if deadline is not None or self._resilient or call.deadline is not None:
            return resilient_invoke(self, reference, call, deadline)
        self._count("calls")
        span = call.trace_span
        if span is not None:
            # Everything since create_call was parameter marshalling.
            span.stage("marshal")
        try:
            reply = self._invoke_once(reference, call)
        except CommunicationError as exc:
            self._finish_client_span(call, error=exc)
            raise
        if span is not None:
            self._finish_client_span(call, reply=reply)
        return reply

    def _invoke_once(self, reference, call):
        """One acquire→invoke→release attempt; the span stays open.

        Shared by the fast path and the resilient engine (which may
        run several attempts under one client span).  A call deadline
        clamps connection establishment too.
        """
        bootstrap = reference.bootstrap
        # The deadline clamps connection establishment too, but the
        # remaining budget is only computed if the cache actually has
        # to connect — a pooled hit pays nothing for it.
        communicator = self.connections.acquire(
            bootstrap, None, call.deadline
        )
        if self.trace is not None:
            self._event("call:invoke", operation=call.operation,
                        target=call.target)
        try:
            reply = communicator.invoke(call)
        except DeadlineExceeded:
            # One expired call must not take the shared channel from
            # its channel-mates: a still-open (multiplexed) channel
            # goes back, only a closed one is discarded.
            if communicator.closed:
                self.connections.discard(communicator)
            else:
                self.connections.release(bootstrap, communicator)
            raise
        except CommunicationError as exc:
            self.connections.discard(communicator, reason=exc)
            raise
        self.connections.release(bootstrap, communicator)
        if self.trace is not None:
            self._event("call:reply",
                        status=None if reply is None else reply.status)
        return reply

    def invoke_async(self, reference, call):
        """Invoke *call* without blocking; returns a Future of the Reply.

        On a multiplexed ORB the request is pipelined onto the shared
        channel and the demultiplexer completes the future.  On an
        exclusive ORB the blocking round trip runs on a small helper
        pool, so the caller still gets a future either way.
        """
        self._count("calls")
        span = call.trace_span
        if span is not None:
            span.stage("marshal")
        bootstrap = reference.bootstrap
        communicator = self.connections.acquire(bootstrap)
        if self.trace is not None:
            self._event("call:invoke", operation=call.operation,
                        target=call.target)
        if communicator.multiplexed:
            try:
                future = communicator.invoke_async(call)
            except CommunicationError as exc:
                self.connections.discard(communicator, reason=exc)
                self._finish_client_span(call, error=exc)
                raise
            self.connections.release(bootstrap, communicator)
            if span is not None:
                self._watch_future(call, future)
            return future

        def _round_trip():
            try:
                reply = communicator.invoke(call)
            except CommunicationError as exc:
                self.connections.discard(communicator, reason=exc)
                self._finish_client_span(call, error=exc)
                raise
            self.connections.release(bootstrap, communicator)
            self._finish_client_span(call, reply=reply)
            return reply

        return self._async_executor().submit(_round_trip)

    def invoke_many(self, reference, calls):
        """Pipeline a burst of calls in one send; returns their futures.

        On a multiplexed ORB the whole window goes out in a single
        channel write and the demultiplexer completes each future as its
        reply lands (possibly out of order).  On an exclusive ORB this
        degrades to sequential :meth:`invoke_async`.
        """
        calls = list(calls)
        bootstrap = reference.bootstrap
        communicator = self.connections.acquire(bootstrap)
        if not communicator.multiplexed:
            self.connections.release(bootstrap, communicator)
            return [self.invoke_async(reference, call) for call in calls]
        self._count("calls", len(calls))
        try:
            futures = communicator.invoke_pipelined(calls)
        except CommunicationError as exc:
            self.connections.discard(communicator, reason=exc)
            if self.observer is not None:
                for call in calls:
                    self._finish_client_span(call, error=exc)
            raise
        self.connections.release(bootstrap, communicator)
        if self.observer is not None:
            for call, future in zip(calls, futures):
                if call.trace_span is not None:
                    self._watch_future(call, future)
        return futures

    def invoke_bulk(self, reference, calls, deadline=None):
        """Pipeline a burst of calls and block for all their replies.

        Like :meth:`invoke_many` but synchronous: on a multiplexed ORB
        the window goes out in one send and the caller sleeps on a
        single completion event until the last reply lands — far less
        per-call overhead than a future each.  Returns replies in call
        order (None for oneways).  Exclusive ORBs fall back to
        sequential :meth:`invoke`.

        *deadline* bounds the whole window: every call in the burst
        shares the one budget (propagated per-request on the wire), and
        expiry abandons the outstanding entries without touching
        channel-mates.
        """
        if not isinstance(calls, (list, tuple)):
            calls = list(calls)
        if deadline is not None or self._resilient:
            deadline = resolve_deadline(self, deadline)
            if deadline is not None:
                for call in calls:
                    call.deadline = deadline
        bootstrap = reference.bootstrap
        communicator = self.connections.acquire(bootstrap)
        if not communicator.multiplexed:
            self.connections.release(bootstrap, communicator)
            return [self.invoke(reference, call, deadline=deadline)
                    for call in calls]
        self._count("calls", len(calls))
        try:
            replies = communicator.invoke_pipelined_sync(calls,
                                                         deadline=deadline)
        except DeadlineExceeded as exc:
            # Same rule as _invoke_once: channel-mates keep a healthy
            # shared channel; only a closed one is discarded.
            if communicator.closed:
                self.connections.discard(communicator)
            else:
                self.connections.release(bootstrap, communicator)
            if self.observer is not None:
                for call in calls:
                    self._finish_client_span(call, error=exc)
            raise
        except CommunicationError as exc:
            self.connections.discard(communicator, reason=exc)
            if self.observer is not None:
                for call in calls:
                    self._finish_client_span(call, error=exc)
            raise
        self.connections.release(bootstrap, communicator)
        if self.observer is not None:
            for call, reply in zip(calls, replies):
                self._finish_client_span(call, reply=reply)
        return replies

    def flush(self):
        """Flush any batched oneway sends on cached client connections."""
        self.connections.flush_all()

    def rebuild_exception(self, reply):
        """Turn an EXC reply back into the declared exception instance."""
        exc_class = self.types.value_class(reply.repo_id)
        if exc_class is not None and issubclass(exc_class, HdUserException):
            return exc_class._hd_unmarshal(reply, self)
        return RemoteError("user exception", repo_id=reply.repo_id)

    # -- server side (Fig. 5) ------------------------------------------------------

    def _accept_loop(self):
        while self._running:
            try:
                channel = self._listener.accept()
            except CommunicationError:
                break
            self._event("orb:accept", peer=channel.peer)
            worker = threading.Thread(
                target=self._serve_channel,
                args=(channel,),
                name="heidirmi-conn",
                daemon=True,
            )
            worker.start()

    def _serve_channel(self, channel):
        # "When a client connects to the bootstrap port, a new
        # ObjectCommunicator is wrapped around the resulting connection."
        # Whatever happens inside, this worker must never die without
        # closing the channel — a silently leaked connection would leave
        # the client blocked forever.
        if self._server_meter is not None:
            channel.meter = self._server_meter
        flight = getattr(self.observer, "flight", None)
        if flight is not None:
            flight.attach(channel, self.protocol.name, "server")
        communicator = ObjectCommunicator(channel, self.protocol,
                                          observer=self.observer)
        # Drain bookkeeping: ``inflight`` covers the serial path (only
        # this reader thread writes it, plain stores), ``inflight_mp``
        # the pipelined workers (reader increments, workers decrement,
        # under the small lock).  ``stop(drain=...)`` only sends the
        # orderly close to a connection with both at zero.
        communicator.inflight = 0
        communicator.inflight_mp = 0  # guarded-by: communicator.inflight_lock
        communicator.inflight_lock = threading.Lock()
        with self._lock:
            self._active.add(communicator)
        try:
            self._serve_requests(communicator)
        except Exception:  # defensive: bug in the server loop itself
            self._event("orb:server-loop-error", error=traceback.format_exc())
        finally:
            with self._lock:
                self._active.discard(communicator)
            communicator.close()

    @staticmethod
    def _server_postmortem(communicator, reason):
        """Spool a flight bundle for a server channel that died.

        A peer that simply hung up between requests is routine — only
        mid-stream failures (resets, garbled frames, chaos kills) leave
        a bundle.
        """
        if getattr(reason, "kind", None) == "peer-closed":
            return
        recorder = getattr(communicator.channel, "flight", None)
        if recorder is not None:
            recorder.postmortem(reason)

    def _serve_requests(self, communicator):
        # Pipelined servers read ahead with a bounded in-flight window:
        # the reader keeps pulling requests while pooled workers dispatch
        # them, so replies (on id-carrying protocols) complete out of
        # order and one slow call no longer stalls the connection.
        window = (
            threading.Semaphore(max(2, self.pipeline_workers * 2))
            if self.pipeline_workers > 0
            else None
        )
        # Hoisted out of the per-request loop: these run once per call.
        next_request = communicator.next_request
        object_key_exists = self._object_key_exists
        count = self._count
        observer = self.observer
        admission = self._admission
        admission_clock = (admission.policy.clock
                           if admission is not None else None)
        admission_admit = (admission.admit
                           if admission is not None else None)
        admission_finished = (admission.finished
                              if admission is not None else None)
        while self._running and not communicator.closed:
            if not communicator.channel.has_buffered:
                # The read-ahead backlog drained: nothing further can
                # coalesce with any withheld replies (the next request
                # may be a oneway, or never come at all), so push them
                # out before blocking — otherwise a burst ending in a
                # oneway would strand its replies in the sink forever.
                try:
                    communicator.flush_replies()
                except CommunicationError as exc:
                    self._server_postmortem(communicator, exc)
                    return
            try:
                call = next_request(object_exists=object_key_exists)
            except CommunicationError as exc:
                self._server_postmortem(communicator, exc)
                return
            except ProtocolError as exc:
                # A human (or buggy peer) typed something malformed; keep
                # the connection alive so they can try again — this is
                # what made telnet debugging possible.
                communicator.reply_error("Protocol", str(exc))
                continue
            if self.trace is not None:
                self._event("orb:request", operation=call.operation)
            count("requests")
            if observer is not None:
                # Server span: starts once the request is fully parsed
                # (not at loop top, which would count idle blocking) and
                # parents onto the wire-propagated client context when
                # the peer sent one; untraced peers just get a root span.
                call.trace_span = observer.start_span(
                    "server", call.operation, parent=call.trace_context,
                    protocol=self.protocol.name,
                )
                self._requests_counter.inc()
            deadline = call.deadline
            if deadline is not None and deadline.budget <= 0.0:
                # The wire said the budget was already gone when the
                # peer sent it (dl=0): the client has stopped waiting,
                # so dispatching is dead work.  The parse re-anchored
                # the budget microseconds ago, so comparing the budget
                # itself replaces a clock read; requests that age in
                # the *pipeline* queue are re-checked against the real
                # clock in _dispatch_and_reply.
                self._drop_expired(communicator, call)
                continue
            if self._draining:
                # Orderly drain: new work is handed straight back as a
                # retryable shed; whatever was admitted before the drain
                # started still finishes.
                hint = (admission.shed_draining_one()
                        if admission is not None else 0.05)
                self._shed_call(communicator, call, hint,
                                "server draining", "draining")
                continue
            admit_time = None
            if admission is not None:
                hint = admission_admit(call.operation)
                if hint is not None:
                    self._shed_call(communicator, call, hint,
                                    "server overloaded", "admission")
                    continue
                admit_time = admission_clock()
            if (
                window is not None
                and not call.oneway
                and call.request_id is not None
            ):
                # Oneways stay inline (their per-connection ordering is
                # a guarantee) and id-less requests stay serial (replies
                # would be correlated by order alone).
                window.acquire()
                if self._pipeline_gauge is not None:
                    self._pipeline_gauge.add(1)
                with communicator.inflight_lock:
                    communicator.inflight_mp += 1
                try:
                    self._dispatch_executor().submit(
                        self._dispatch_and_reply, communicator, call,
                        window, admit_time
                    )
                except RuntimeError:  # pool shut down mid-stop
                    window.release()
                    if self._pipeline_gauge is not None:
                        self._pipeline_gauge.add(-1)
                    with communicator.inflight_lock:
                        communicator.inflight_mp -= 1
                    if admit_time is not None:
                        admission.finished(
                            call.operation,
                            admission.policy.clock() - admit_time)
                    return
                continue
            communicator.inflight = 1  # plain store: reader thread only
            try:
                alive = self._serve_inline(communicator, call)
            finally:
                communicator.inflight = 0
                if admit_time is not None:
                    # The serial path dispatches the moment it admits,
                    # so the sojourn doubles as the service time.
                    elapsed = admission_clock() - admit_time
                    admission_finished(call.operation, elapsed,
                                       service_time=elapsed)
            if not alive:
                return

    def _serve_inline(self, communicator, call):
        """Dispatch one request on the reader thread; False ends the loop."""
        reply = self._handle_request(call)
        if call.oneway:
            if call.trace_span is not None:
                self._finish_server_span(call)
            return True
        try:
            if call.request_id is not None and communicator.channel.has_buffered:
                # More requests are already waiting: coalesce this
                # reply with theirs into one send (ids let the client
                # demultiplex, so grouping replies is safe).
                communicator.buffer_reply(reply)
                if call.trace_span is not None:
                    self._finish_server_span(call, reply, coalesced=True)
                return True
            communicator.reply(reply)
        except CommunicationError as exc:
            self._server_postmortem(communicator, exc)
            return False
        except HeidiRmiError as exc:
            # The reply itself failed to encode (e.g. a result value
            # the marshaller rejects): report instead of dying.
            communicator.reply_error(
                type(exc).__name__, str(exc), request_id=call.request_id
            )
        if call.trace_span is not None:
            self._finish_server_span(call, reply)
        return True

    def _shed_call(self, communicator, call, hint, message, reason):
        """Answer one shed request with a typed ``Overloaded`` reply.

        *hint* (seconds) rides the wire twice over: rendered into the
        message as the ``ra=<ms>`` token (the text protocols' in-band
        spelling) and stored on the Reply for encoders with an
        out-of-band slot (GIOP's HDRA ServiceContext + TRANSIENT).
        Shed oneways are simply dropped — there is nothing to answer.
        """
        if self.observer is not None:
            self.observer.metrics.counter("overload.shed",
                                          reason=reason).inc()
        if self.trace is not None:
            self._event("orb:shed", operation=call.operation, reason=reason)
        if not call.oneway:
            reply = Reply(
                status=STATUS_ERROR,
                repo_id=OVERLOADED_CATEGORY,
                marshaller=self.protocol.new_marshaller(),
            )
            reply.retry_after = hint
            reply.put_string(overload_message(hint, message))
            reply.request_id = call.request_id
            try:
                communicator.reply(reply)
            except CommunicationError:
                pass  # peer already gone; nothing to shed to
        if call.trace_span is not None:
            call.trace_span.set("shed", reason)
            self._finish_server_span(call)

    def _dispatch_and_reply(self, communicator, call, window, admit_time=None):
        """Pipeline worker body: dispatch one read-ahead request."""
        span = call.trace_span
        if span is not None:
            # Time between read-off-the-wire and worker pickup.
            span.stage("queue")
        admission = self._admission
        service_started = None
        try:
            if call.deadline is not None and call.deadline.expired:
                # Expired while queued for a pipeline worker.
                self._drop_expired(communicator, call)
                return
            if admit_time is not None:
                queue_age = admission.policy.clock() - admit_time
                if admission.over_age(queue_age):
                    # Out-waited the admission policy's max queue age:
                    # the caller has most likely given up, and doing
                    # the work anyway is the overload death spiral.
                    self._shed_call(communicator, call,
                                    admission.shed_aged(),
                                    "queued past max age", "age")
                    return
                service_started = admission.policy.clock()
            reply = self._handle_request(call)
            try:
                communicator.reply(reply)
            except CommunicationError:
                pass  # connection died; the reader loop notices too
            except HeidiRmiError as exc:
                communicator.reply_error(
                    type(exc).__name__, str(exc), request_id=call.request_id
                )
            if span is not None:
                self._finish_server_span(call, reply)
        except Exception:  # defensive: bug in the pipeline itself
            self._event("orb:server-loop-error", error=traceback.format_exc())
        finally:
            if admit_time is not None:
                now = admission.policy.clock()
                admission.finished(
                    call.operation, now - admit_time,
                    service_time=(None if service_started is None
                                  else now - service_started),
                )
            with communicator.inflight_lock:
                communicator.inflight_mp -= 1
            window.release()
            if self._pipeline_gauge is not None:
                self._pipeline_gauge.add(-1)

    def _drop_expired(self, communicator, call):
        """Shed a request whose wire-propagated deadline already passed.

        Two-ways still get a best-effort ``DeadlineExceeded`` error
        reply (the client maps that category back to a TimeoutError if
        it is somehow still listening); oneways are dropped silently.
        """
        if self._server_expired_counter is not None:
            self._server_expired_counter.inc()
        if self.trace is not None:
            self._event("orb:deadline-drop", operation=call.operation)
        if not call.oneway:
            communicator.reply_error(
                "DeadlineExceeded",
                f"request {call.operation!r} expired before dispatch",
                request_id=call.request_id,
            )
        if call.trace_span is not None:
            call.trace_span.set("deadline.expired", True)
            self._finish_server_span(call)

    # -- resilience helpers ------------------------------------------------

    def _plan_for(self, reference):
        """The cached :class:`PolicyPlan` for *reference*, rebuilt when
        stale (different Orb, or the breaker table was reaped since).

        ObjectReference is a frozen dataclass with a ``__dict__`` (its
        cached_property renders live there), so the plan rides the
        reference the same way: the per-call cost of policy resolution
        is one ``getattr`` and two compares instead of policy/default
        lookups, a Deadline coercion and a ``_breakers`` probe per
        invoke.
        """
        plan = getattr(reference, "_hd_plan", None)
        if (plan is not None and plan.orb is self
                and plan.epoch == self._plan_epoch):
            return plan
        policy = self.resilience
        retry = policy.retry if policy is not None else None
        budget = policy.default_deadline if policy is not None else None
        if budget is None:
            budget = self.default_deadline
        if budget is not None and not isinstance(budget, Deadline):
            budget = float(budget)
        retry_budget = None
        if policy is not None and policy.retry_budget is not None:
            retry_budget = self._retry_budget_for(reference.bootstrap)
        plan = PolicyPlan(self, self._plan_epoch, budget, retry,
                          self._breaker_for(reference.bootstrap),
                          retry_budget=retry_budget)
        # Store past the frozen-dataclass guard, exactly as
        # cached_property does.
        reference.__dict__["_hd_plan"] = plan
        return plan

    def _retry_budget_for(self, bootstrap):
        """This endpoint's RetryBudget (lazily built, breaker-style)."""
        # race-ok: lock-free probe; a miss re-probes under the lock.
        budget = self._retry_budgets.get(bootstrap)
        if budget is None:
            with self._lock:
                budget = self._retry_budgets.get(bootstrap)
                if budget is None:
                    if len(self._retry_budgets) >= self._breaker_cap:
                        # Endpoint churn outgrew the table: start over
                        # (fresh full buckets — strictly permissive for
                        # one burst) and invalidate cached plans.
                        self._retry_budgets.clear()
                        self._plan_epoch += 1
                    budget = self.resilience.retry_budget.build()
                    self._retry_budgets[bootstrap] = budget
        return budget

    def _breaker_for(self, bootstrap):
        """This endpoint's CircuitBreaker (lazily built); None when the
        resilience policy has no breaker configured."""
        policy = self.resilience
        if policy is None or policy.breaker is None:
            return None
        # race-ok: lock-free probe; a miss re-probes under the lock.
        breaker = self._breakers.get(bootstrap)
        if breaker is None:
            with self._lock:
                breaker = self._breakers.get(bootstrap)
                if breaker is None:
                    if len(self._breakers) >= self._breaker_cap:
                        self._reap_breakers()
                    breaker = CircuitBreaker(
                        policy.breaker,
                        on_transition=(
                            lambda old, new, bootstrap=bootstrap:
                            self._breaker_transition(bootstrap, old, new)
                        ),
                    )
                    self._breakers[bootstrap] = breaker
        return breaker

    def _reap_breakers(self):  # holds-lock: self._lock
        """Drop closed breakers for endpoints with no cached connections.

        Called under ``_lock`` when the breaker table hits its cap, so
        per-endpoint breakers cannot grow without bound as references
        churn.  Open and half-open breakers are never reaped — their
        state is exactly what sheds traffic to a broken endpoint — and
        an endpoint that still holds pooled/shared connections keeps
        its breaker (its window is live history).  Reaping bumps the
        plan epoch so cached PolicyPlans drop their stale breaker refs.
        """
        has_cached = self.connections.has_cached
        victims = [
            bootstrap
            for bootstrap, breaker in self._breakers.items()
            if breaker.state == BREAKER_CLOSED and not has_cached(bootstrap)
        ]
        if not victims:
            return
        for bootstrap in victims:
            del self._breakers[bootstrap]
        self._plan_epoch += 1

    def _breaker_transition(self, bootstrap, old, new):
        if self.observer is not None:
            self.observer.metrics.counter(
                "resilience.breaker_transitions", to=new
            ).inc()
        if self.trace is not None:
            self._event(
                "resilience:breaker",
                endpoint=f"{bootstrap[1]}:{bootstrap[2]}",
                old=old, new=new,
            )
        if new == BREAKER_OPEN:
            # Connections to an endpoint judged broken are torn down
            # now, so the eventual half-open probe reconnects fresh
            # instead of inheriting a wedged channel.
            self.connections.evict_endpoint(bootstrap)

    def _object_key_exists(self, object_key):
        """Locate support: does this address space host *object_key*?"""
        try:
            reference = ObjectReference.parse(
                object_key.decode("utf-8") if isinstance(object_key, bytes)
                else object_key
            )
        except (ProtocolError, UnicodeDecodeError):
            return False
        return reference.object_id in self._objects

    def _handle_request(self, call):
        """Select the skeleton from the call header and dispatch (Fig. 5)."""
        reply = self._dispatch_request(call)
        # Pipelined protocols echo the request's correlation id so the
        # client's demultiplexer can match out-of-order replies.
        reply.request_id = call.request_id
        return reply

    def _parse_target(self, target):
        reference = self._parsed_targets.get(target)
        if reference is None:
            reference = ObjectReference.parse(target)
            if len(self._parsed_targets) >= 4096:
                self._parsed_targets.clear()
            self._parsed_targets[target] = reference
        return reference

    def _dispatch_request(self, call):
        try:
            # Fast path: target string straight to skeleton, skipping
            # reference parsing (counts as a cache hit — the skeleton
            # came from _skeletons originally).
            skeleton = self._target_skeletons.get(call.target)
            if skeleton is not None:
                self._count("skeleton_hits")
            else:
                reference = self._parse_target(call.target)
                skeleton = self._skeleton_for(reference)
                if self._cache_skeletons:
                    if len(self._target_skeletons) >= 4096:
                        self._target_skeletons.clear()
                    self._target_skeletons[call.target] = skeleton
            reply = Reply(status=STATUS_OK, marshaller=self.protocol.new_marshaller())
            if self.trace is not None:
                self._event(
                    "orb:dispatch",
                    operation=call.operation,
                    skeleton=type(skeleton).__name__,
                )
            span = call.trace_span
            if span is not None:
                span.stage("select")
                # Activate this span's context for the upcall: any
                # outbound calls the implementation makes on this thread
                # parent onto the server span and extend the trace.
                previous = _trace_state.activate(span.context)
                try:
                    if self._dispatch_serial_lock is not None:
                        with self._dispatch_serial_lock:
                            skeleton.dispatch(call, reply)
                    else:
                        skeleton.dispatch(call, reply)
                finally:
                    _trace_state.restore(previous)
                span.stage("dispatch")
                return reply
            if self._dispatch_serial_lock is not None:
                with self._dispatch_serial_lock:
                    skeleton.dispatch(call, reply)
            else:
                skeleton.dispatch(call, reply)
            return reply
        except HdUserException as exc:
            reply = Reply(
                status=STATUS_EXCEPTION,
                repo_id=exc._hd_repo_id_,
                marshaller=self.protocol.new_marshaller(),
            )
            exc._hd_marshal(reply, self)
            return reply
        except ObjectNotFound as exc:
            return self._error_reply("ObjectNotFound", str(exc))
        except MethodNotFound as exc:
            return self._error_reply("MethodNotFound", str(exc))
        except (ProtocolError, HeidiRmiError) as exc:
            return self._error_reply(type(exc).__name__, str(exc))
        except Exception as exc:  # implementation bug: report, don't die
            self._event("orb:implementation-error",
                        error=traceback.format_exc())
            if call.trace_span is not None:
                call.trace_span.fail(exc)
            return self._error_reply("Implementation", f"{type(exc).__name__}: {exc}")

    def _error_reply(self, category, message):
        reply = Reply(
            status=STATUS_ERROR,
            repo_id=category,
            marshaller=self.protocol.new_marshaller(),
        )
        reply.put_string(message)
        return reply

    def _skeleton_for(self, reference):
        """The skeleton for a local object, created lazily and cached."""
        oid = reference.object_id
        if self._cache_skeletons:
            # Lock-free read: dict.get is atomic under the GIL and
            # writers only add entries (setdefault below, under _lock),
            # so a stale miss just falls through to the slow path.
            skeleton = self._skeletons.get(oid)
            if skeleton is not None:
                self._count("skeleton_hits")
                return skeleton
        with self._lock:
            entry = self._objects.get(oid)
        if entry is None:
            raise ObjectNotFound(oid)
        impl, type_id = entry
        skel_class = self.types.skeleton_class(type_id)
        if skel_class is None:
            skel_class = getattr(impl, "_hd_skel_class_", None)
        if skel_class is None:
            raise HeidiRmiError(
                f"no skeleton class registered for {type_id!r}"
            )
        skeleton = skel_class(impl, self, dispatch_strategy=self.dispatch_strategy)
        self._count("skeleton_created")
        self._event("orb:skeleton", type_id=type_id, cls=skel_class.__name__)
        if self._cache_skeletons:
            with self._lock:
                skeleton = self._skeletons.setdefault(oid, skeleton)
        return skeleton

"""Dynamic invocation driven by the Interface Repository.

OmniBroker's Interface Repository exists "in support of a distributed
development environment" (paper §5): given only an object reference and
the IR, a client can invoke operations *without any generated stub*.
This module is that path — the interpretive counterpart to the
specialized marshalling code the mappings generate (the USC/Flick
discussion of §2 is exactly the static-versus-interpretive trade-off,
which ``benchmarks/test_ablation_marshalling.py`` measures).

Usage::

    caller = DynamicCaller(orb, repository)
    result = caller.invoke(reference, "p", 41)

Marshalling is interpreted from the EST type vocabulary at call time:
the Param/Operation nodes stored in the IR say what to put and get.
"""

from repro.heidirmi.errors import (
    DeadlineExceeded,
    HeidiRmiError,
    MarshalError,
    RemoteError,
)
from repro.heidirmi.objref import ObjectReference
from repro.heidirmi.serialize import get_object, put_object

#: EST type category → Call method suffix for scalars.
_SCALAR_METHOD = {
    "boolean": "boolean",
    "char": "char",
    "wchar": "char",
    "octet": "octet",
    "short": "short",
    "ushort": "ushort",
    "long": "long",
    "ulong": "ulong",
    "longlong": "longlong",
    "ulonglong": "ulonglong",
    "float": "float",
    "double": "double",
    "longdouble": "double",
    "string": "string",
    "wstring": "string",
}


class _TypeView:
    """Resolved category/type-name view of a typed EST node."""

    def __init__(self, node):
        self.node = node
        category = node.get("type")
        if category == "alias":
            resolved = node.get("aliasedCategory")
            if resolved is not None:
                category = resolved
        self.category = category

    def spelling(self):
        for role in ("paramType", "returnType", "attributeType",
                     "memberType", "elementType"):
            value = self.node.get(role)
            if value is not None:
                return value
        return ""

    def element(self):
        children = self.node.children("ElementType")
        return _TypeView(children[0]) if children else None


class DynamicCaller:
    """Stub-free invocation using IR metadata for marshalling."""

    def __init__(self, orb, repository):
        self.orb = orb
        self.repository = repository

    # -- public API -----------------------------------------------------

    def invoke(self, reference, operation, *args, idempotent=None,
               deadline=None):
        """Call *operation* on *reference*, marshalling by IR metadata.

        *idempotent* overrides the IR's per-operation ``idempotent``
        flag (None defers to the repository); a retry policy on the ORB
        only re-sends calls marked idempotent.  *deadline* is a
        per-call budget forwarded to :meth:`Orb.invoke`.
        """
        if isinstance(reference, str):
            reference = ObjectReference.parse(reference)
        kind, node = self.repository.operation_node(
            reference.type_id, operation
        )
        if node is None:
            raise HeidiRmiError(
                f"operation {operation!r} not found on {reference.type_id} "
                "in the interface repository"
            )
        if kind == "operation":
            return self._invoke_operation(
                reference, operation, node, args,
                idempotent=idempotent, deadline=deadline,
            )
        if kind == "attribute-get":
            return self._invoke_attribute_get(
                reference, operation, node, args, deadline=deadline
            )
        return self._invoke_attribute_set(
            reference, operation, node, args, deadline=deadline
        )

    def operations(self, type_id):
        """Every operation name invocable on *type_id* per the IR."""
        names = []
        seen = set()
        stack = [type_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            interface = self.repository.lookup(current)
            if interface is None:
                continue
            names.extend(op.name for op in interface.children("Operation"))
            for attr in interface.children("Attribute"):
                names.append(f"_get_{attr.name}")
                if attr.get("attributeQualifier") != "readonly":
                    names.append(f"_set_{attr.name}")
            stack.extend(self.repository.parents_of(current) or ())
        return names

    # -- invocation paths ---------------------------------------------------

    def _invoke_operation(self, reference, operation, node, args,
                          idempotent=None, deadline=None):
        params = node.children("Param")
        in_params = [
            p for p in params if p.get("getType", "in") in ("in", "incopy",
                                                            "inout")
        ]
        out_params = [
            p for p in params if p.get("getType") in ("out", "inout")
        ]
        args = self._apply_defaults(operation, in_params, args)
        oneway = bool(node.get("oneway"))
        if idempotent is None:
            idempotent = bool(node.get("idempotent"))
        call = self.orb.create_call(
            reference, operation, oneway=oneway, idempotent=bool(idempotent)
        )
        for param, value in zip(in_params, args):
            self._put(call, param, value, param.get("getType", "in"))
        reply = self._checked_invoke(reference, call, deadline=deadline)
        if oneway:
            return None
        results = []
        if node.get("type") != "void":
            results.append(self._get(reply, node))
        for param in out_params:
            results.append(self._get(reply, param))
        if not results:
            return None
        return results[0] if len(results) == 1 else tuple(results)

    def _invoke_attribute_get(self, reference, operation, node, args,
                              deadline=None):
        if args:
            raise HeidiRmiError(f"{operation} takes no arguments")
        # Attribute reads are side-effect free, hence always retry-safe.
        call = self.orb.create_call(reference, operation, idempotent=True)
        reply = self._checked_invoke(reference, call, deadline=deadline)
        return self._get(reply, node)

    def _invoke_attribute_set(self, reference, operation, node, args,
                              deadline=None):
        if len(args) != 1:
            raise HeidiRmiError(f"{operation} takes exactly one argument")
        call = self.orb.create_call(reference, operation)
        self._put(call, node, args[0], "in")
        self._checked_invoke(reference, call, deadline=deadline)
        return None

    def _apply_defaults(self, operation, in_params, args):
        """Fill trailing defaulted parameters, as a generated stub would."""
        if len(args) > len(in_params):
            raise HeidiRmiError(
                f"{operation} takes at most {len(in_params)} argument(s), "
                f"got {len(args)}"
            )
        filled = list(args)
        for param in in_params[len(args):]:
            default = param.get("defaultValue")
            if default is None and param.get("defaultParam", "") == "":
                raise HeidiRmiError(
                    f"missing argument {param.name!r} for {operation}"
                )
            filled.append(self._default_value(param, default))
        return filled

    def _default_value(self, param, default):
        view = _TypeView(param)
        if view.category == "enum" and isinstance(default, str):
            enum_node = self._enum_node(view)
            members = enum_node.get("members") or []
            if default in members:
                return members.index(default)
        return default

    def _checked_invoke(self, reference, call, deadline=None):
        reply = self.orb.invoke(reference, call, deadline=deadline)
        if reply is None:
            return None
        if reply.is_ok:
            return reply
        if reply.is_exception:
            raise self.orb.rebuild_exception(reply)
        message = reply.get_string() if not reply.at_end() else "remote error"
        if reply.repo_id == "DeadlineExceeded":
            raise DeadlineExceeded(message)
        raise RemoteError(message, repo_id=reply.repo_id)

    # -- interpretive marshalling ----------------------------------------------

    def _enum_node(self, view):
        scoped = view.spelling()
        enum_node = self.repository.lookup_scoped(scoped)
        if enum_node is None or enum_node.kind != "Enum":
            raise MarshalError(
                f"enum {scoped!r} not found in the interface repository"
            )
        return enum_node

    def _struct_node(self, view):
        scoped = view.spelling()
        node = self.repository.lookup_scoped(scoped)
        if node is None or node.kind not in ("Struct", "Exception"):
            raise MarshalError(
                f"struct {scoped!r} not found in the interface repository"
            )
        return node

    def _put(self, call, node, value, direction):
        view = _TypeView(node)
        self._put_view(call, view, value, direction)

    def _put_view(self, call, view, value, direction):
        category = view.category
        if category in _SCALAR_METHOD:
            getattr(call, f"put_{_SCALAR_METHOD[category]}")(value)
            return
        if category == "enum":
            members = self._enum_node(view).get("members") or []
            if isinstance(value, str):
                value = members.index(value)
            call.put_enum(members[value], value)
            return
        if category in ("objref", "Object"):
            put_object(call, value, self.orb, direction=direction)
            return
        if category == "struct":
            self._put_struct(call, view, value)
            return
        if category == "sequence":
            element = view.element()
            call.begin("sequence")
            call.put_ulong(len(value))
            for item in value:
                self._put_view(call, element, item, direction)
            call.end()
            return
        raise MarshalError(
            f"dynamic invocation cannot marshal category {category!r}"
        )

    def _put_struct(self, call, view, value):
        struct_node = self._struct_node(view)
        call.begin(struct_node.name)
        for member in struct_node.children("Member"):
            if isinstance(value, dict):
                field = value[member.name]
            else:
                field = getattr(value, member.name)
            self._put(call, member, field, "in")
        call.end()

    def _get(self, reply, node):
        return self._get_view(reply, _TypeView(node))

    def _get_view(self, reply, view):
        category = view.category
        if category in _SCALAR_METHOD:
            return getattr(reply, f"get_{_SCALAR_METHOD[category]}")()
        if category == "enum":
            members = self._enum_node(view).get("members") or []
            return reply.get_enum(members)
        if category in ("objref", "Object"):
            return get_object(reply, self.orb, registry=self.orb.types)
        if category == "struct":
            struct_node = self._struct_node(view)
            reply.begin(struct_node.name)
            value = {
                member.name: self._get(reply, member)
                for member in struct_node.children("Member")
            }
            reply.end()
            return value
        if category == "sequence":
            element = view.element()
            reply.begin("sequence")
            items = [
                self._get_view(reply, element)
                for _ in range(reply.get_ulong())
            ]
            reply.end()
            return items
        raise MarshalError(
            f"dynamic invocation cannot unmarshal category {category!r}"
        )

"""The HeidiRMI runtime: a lightweight, configurable remote-object system.

This is a working Python re-implementation of the paper's Section 3
infrastructure:

- stringified object references (``@tcp:host:port#oid#IDL:Heidi/A:1.0``),
- the ``Call`` object with primitive marshal/unmarshal operations plus
  ``begin``/``end`` structuring for composite types,
- ``ObjectCommunicator`` demarcating individual requests on a channel,
- a newline-terminated ASCII wire protocol (telnet-debuggable), with
  GIOP/IIOP pluggable as an alternative (:mod:`repro.giop`),
- connection, stub and skeleton caching,
- recursive skeleton dispatch up the IDL inheritance graph with
  selectable dispatcher strategies (linear string comparison, nested
  comparison, hash table),
- pass-by-value of ``HdSerializable`` objects (the ``incopy`` extension)
  with Heidi-style dynamic type checking.

The :class:`repro.heidirmi.orb.Orb` ties it all together; generated
Python stubs/skeletons from :mod:`repro.mappings.python_rmi` run on it.
"""

from repro.heidirmi.errors import (
    CircuitOpenError,
    CommunicationError,
    DeadlineExceeded,
    HeidiRmiError,
    MarshalError,
    MethodNotFound,
    ObjectNotFound,
    ProtocolError,
    RemoteError,
)
from repro.heidirmi.objref import ObjectReference
from repro.heidirmi.call import Call, Reply
from repro.heidirmi.dispatch import (
    HashDispatcher,
    LinearDispatcher,
    NestedDispatcher,
    make_dispatcher,
)
from repro.heidirmi.orb import Orb
from repro.heidirmi.serialize import HdSerializable, TypeRegistry
from repro.heidirmi.skeleton import HdSkel
from repro.heidirmi.stub import HdStub

__all__ = [
    "HeidiRmiError",
    "MarshalError",
    "CommunicationError",
    "ObjectNotFound",
    "MethodNotFound",
    "ProtocolError",
    "RemoteError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "ObjectReference",
    "Call",
    "Reply",
    "Orb",
    "HdStub",
    "HdSkel",
    "HdSerializable",
    "TypeRegistry",
    "LinearDispatcher",
    "NestedDispatcher",
    "HashDispatcher",
    "make_dispatcher",
]

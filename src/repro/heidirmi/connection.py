"""Connection caching.

"Connections are cached and reused in HeidiRMI, and only if there is no
available connection is a new connection opened" (paper, Section 3.1).
The cache pools idle :class:`ObjectCommunicator` instances per
(protocol, host, port) bootstrap tuple; callers check one out for the
duration of a call and return it afterwards.
"""

import threading

from repro.heidirmi.communicator import ObjectCommunicator


class ConnectionCache:
    """Pool of idle communicators keyed by bootstrap tuple."""

    def __init__(self, transport_factory, protocol, enabled=True, max_idle=8):
        self._transport_factory = transport_factory
        self._protocol = protocol
        self._enabled = enabled
        self._max_idle = max_idle
        self._idle = {}
        self._lock = threading.Lock()
        #: Counters the caching benchmarks read.
        self.stats = {"hits": 0, "misses": 0, "opened": 0}

    def acquire(self, bootstrap):
        """A ready communicator for (protocol, host, port) *bootstrap*."""
        if self._enabled:
            with self._lock:
                pool = self._idle.get(bootstrap)
                while pool:
                    communicator = pool.pop()
                    if not communicator.closed:
                        self.stats["hits"] += 1
                        return communicator
        with self._lock:
            self.stats["misses"] += 1
            self.stats["opened"] += 1
        protocol_name, host, port = bootstrap
        transport = self._transport_factory(protocol_name)
        channel = transport.connect(host, port)
        return ObjectCommunicator(channel, self._protocol)

    def release(self, bootstrap, communicator):
        """Return a communicator after use; closed ones are dropped."""
        if communicator.closed:
            return
        if not self._enabled:
            communicator.close()
            return
        with self._lock:
            pool = self._idle.setdefault(bootstrap, [])
            if len(pool) >= self._max_idle:
                communicator.close()
            else:
                pool.append(communicator)

    def discard(self, communicator):
        """Drop a communicator that failed mid-call."""
        communicator.close()

    def close_all(self):
        with self._lock:
            pools, self._idle = self._idle, {}
        for pool in pools.values():
            for communicator in pool:
                communicator.close()

    @property
    def idle_count(self):
        with self._lock:
            return sum(len(pool) for pool in self._idle.values())

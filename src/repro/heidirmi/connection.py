"""Connection caching.

"Connections are cached and reused in HeidiRMI, and only if there is no
available connection is a new connection opened" (paper, Section 3.1).

Two modes:

- **exclusive** (the paper's model): the cache pools idle
  :class:`ObjectCommunicator` instances per (protocol, host, port)
  bootstrap tuple; callers check one out for the duration of a call and
  return it afterwards, so concurrent callers each hold a connection.
- **multiplexed**: one shared, demultiplexing communicator per
  bootstrap tuple serves every concurrent caller over a single channel
  (requires a protocol with request ids — ``text2`` or ``giop``).
  ``acquire`` hands back the shared instance and ``release`` is a
  no-op; a dead shared channel is replaced on the next acquire.

``stats`` counts hits/misses/opened/evicted; *evicted* is any cached
connection the cache dropped (pool overflow on release, a dead pooled
or shared connection discovered on acquire, a shared connection
discarded after a mid-call failure).  With an observer attached the
same counts mirror into its metrics registry under
``connection_cache.*`` labeled by mode.
"""

import threading

from repro.heidirmi.communicator import ObjectCommunicator
from repro.heidirmi.errors import HeidiRmiError


class _BreakerOpen:
    """Postmortem reason for connections torn down by an opening breaker."""

    kind = "breaker-open"

    def __init__(self, bootstrap):
        self._bootstrap = bootstrap

    def __str__(self):
        protocol, host, port = self._bootstrap
        return f"circuit opened for {host}:{port} ({protocol})"


class ConnectionCache:
    """Pool of communicators keyed by bootstrap tuple."""

    def __init__(self, transport_factory, protocol, enabled=True, max_idle=8,
                 mode="exclusive", communicator_options=None, observer=None,
                 connect_timeout=None):
        if mode not in ("exclusive", "multiplexed"):
            raise HeidiRmiError(
                f"unknown connection mode {mode!r}; "
                "choose 'exclusive' or 'multiplexed'"
            )
        self._transport_factory = transport_factory
        self._protocol = protocol
        self._enabled = enabled
        self._max_idle = max_idle
        self._mode = mode
        #: Connection-establishment budget in seconds; None defers to
        #: the transport's own default (30 s for tcp).
        self._connect_timeout = connect_timeout
        self._options = dict(communicator_options or {})
        self._idle = {}  # guarded-by: self._lock
        self._shared = {}  # guarded-by: self._lock
        self._lock = threading.Lock()
        #: Counters the caching benchmarks read.
        self.stats = {"hits": 0, "misses": 0, "opened": 0,
                      "evicted": 0}  # guarded-by: self._lock
        self._observer = observer
        if observer is not None:
            metrics = observer.metrics
            self._hit_counter = metrics.counter("connection_cache.hits",
                                                mode=mode)
            self._miss_counter = metrics.counter("connection_cache.misses",
                                                 mode=mode)
            self._open_counter = metrics.counter("connection_cache.opened",
                                                 mode=mode)
            self._evict_counter = metrics.counter("connection_cache.evicted",
                                                  mode=mode)
            self._meter = observer.channel_meter("client")
        else:
            self._hit_counter = None
            self._miss_counter = None
            self._open_counter = None
            self._evict_counter = None
            self._meter = None

    @property
    def mode(self):
        return self._mode

    def _hit(self):  # holds-lock: self._lock
        self.stats["hits"] += 1
        if self._hit_counter is not None:
            self._hit_counter.inc()

    def _miss(self):  # holds-lock: self._lock
        self.stats["misses"] += 1
        self.stats["opened"] += 1
        if self._miss_counter is not None:
            self._miss_counter.inc()
            self._open_counter.inc()

    def _evict(self, count=1):  # holds-lock: self._lock
        self.stats["evicted"] += count
        if self._evict_counter is not None:
            self._evict_counter.inc(count)

    def _open(self, bootstrap, multiplexed, connect_timeout=None):
        protocol_name, host, port = bootstrap
        transport = self._transport_factory(protocol_name)
        timeout = self._connect_timeout
        if connect_timeout is not None:
            # A per-call budget (deadline) can only tighten the
            # configured establishment timeout, never widen it.
            timeout = (connect_timeout if timeout is None
                       else min(timeout, connect_timeout))
        try:
            channel = transport.connect(host, port, timeout=timeout)
        except TypeError:
            # Custom transports registered before connect() grew a
            # timeout parameter keep working unconfigured.
            channel = transport.connect(host, port)
        if self._meter is not None:
            channel.meter = self._meter
        flight = getattr(self._observer, "flight", None)
        if flight is not None:
            flight.attach(channel, self._protocol.name, "client")
        return ObjectCommunicator(
            channel, self._protocol, multiplexed=multiplexed, **self._options
        )

    def acquire(self, bootstrap, connect_timeout=None, deadline=None):
        """A ready communicator for (protocol, host, port) *bootstrap*.

        *deadline* (a Deadline or None) clamps connection establishment
        the same way an explicit *connect_timeout* does, but its
        remaining budget is only computed on a cache miss — pooled hits
        never touch the clock.
        """
        if self._mode == "multiplexed":
            # One shared channel per peer; opening is serialized under
            # the lock so racing callers cannot double-connect.
            with self._lock:
                communicator = self._shared.get(bootstrap)
                if communicator is not None and not communicator.closed:
                    self._hit()
                    return communicator
                if communicator is not None:
                    # Dead shared channel found in place: replacing it
                    # is an eviction.
                    self._evict()
                self._miss()
                if deadline is not None:
                    connect_timeout = max(0.0, deadline.remaining())
                communicator = self._open(
                    bootstrap, multiplexed=True,
                    connect_timeout=connect_timeout,
                )
                self._shared[bootstrap] = communicator
                return communicator
        if self._enabled:
            with self._lock:
                pool = self._idle.get(bootstrap)
                while pool:
                    communicator = pool.pop()
                    if not communicator.closed:
                        self._hit()
                        return communicator
                    self._evict()
        with self._lock:
            self._miss()
        if deadline is not None:
            connect_timeout = max(0.0, deadline.remaining())
        return self._open(
            bootstrap, multiplexed=False, connect_timeout=connect_timeout
        )

    def release(self, bootstrap, communicator):
        """Return a communicator after use; closed ones are dropped."""
        if self._mode == "multiplexed":
            return  # shared communicators are never checked out
        if communicator.closed:
            return
        if not self._enabled:
            communicator.close()
            return
        with self._lock:
            pool = self._idle.setdefault(bootstrap, [])
            if len(pool) >= self._max_idle:
                communicator.close()
                self._evict()
            else:
                pool.append(communicator)

    def discard(self, communicator, reason=None):
        """Drop a communicator that failed mid-call.

        *reason* (the failure exception, when the caller has one) feeds
        the flight recorder: the channel's last-N wire events are
        spooled as a postmortem bundle before the close disarms it.
        """
        if reason is not None:
            recorder = getattr(communicator.channel, "flight", None)
            if recorder is not None:
                recorder.postmortem(reason)
        communicator.close()
        if self._mode == "multiplexed":
            with self._lock:
                for bootstrap, shared in list(self._shared.items()):
                    if shared is communicator:
                        del self._shared[bootstrap]
                        self._evict()

    def evict_endpoint(self, bootstrap):
        """Close and drop every cached connection to *bootstrap*.

        The circuit breaker calls this when an endpoint's circuit
        opens: pooled or shared connections to a peer judged broken are
        torn down immediately, so the eventual half-open probe opens a
        fresh connection instead of inheriting a wedged one.  Returns
        the number of connections evicted.
        """
        with self._lock:
            victims = list(self._idle.pop(bootstrap, ()))
            shared = self._shared.pop(bootstrap, None)
            if shared is not None:
                victims.append(shared)
            if victims:
                # Count while still holding the lock: bumping stats
                # after release raced concurrent _hit/_miss updates.
                self._evict(len(victims))
        for communicator in victims:
            # Spool before close: close() disarms the recorder (orderly
            # teardown must not leave bundles), but a breaker opening is
            # exactly the moment the last wire events are wanted.
            recorder = getattr(communicator.channel, "flight", None)
            if recorder is not None:
                recorder.postmortem(_BreakerOpen(bootstrap))
            communicator.close()
        return len(victims)

    def has_cached(self, bootstrap):
        """Any pooled or shared connection to *bootstrap* right now?

        The Orb's breaker reaper consults this so a breaker whose
        endpoint still holds live connections survives the reap — its
        rolling window is current history, not garbage.
        """
        with self._lock:
            if self._shared.get(bootstrap) is not None:
                return True
            return bool(self._idle.get(bootstrap))

    def flush_all(self):
        """Flush batched oneway buffers on every live communicator."""
        with self._lock:
            communicators = list(self._shared.values())
            for pool in self._idle.values():
                communicators.extend(pool)
        for communicator in communicators:
            if not communicator.closed:
                communicator.flush()

    def close_all(self):
        with self._lock:
            pools, self._idle = self._idle, {}
            shared, self._shared = self._shared, {}
        for pool in pools.values():
            for communicator in pool:
                communicator.close()
        for communicator in shared.values():
            communicator.close()

    @property
    def idle_count(self):
        with self._lock:
            return sum(len(pool) for pool in self._idle.values())

"""The newline-terminated ASCII wire format.

The current implementation of ``Call`` and ``ObjectCommunicator`` in the
paper "utilize a newline terminated string of ASCII characters to
implement the on-the-wire protocol" — which famously let a human telnet
into the bootstrap port and type requests by hand.  This module is that
format:

- a message is one line of space-separated tokens ending in ``\\n``;
- primitive values are printed readably (``42``, ``T``/``F``, ``3.5``);
- strings are percent-escaped so spaces and newlines survive;
- ``{`` and ``}`` tokens delimit composite values (begin/end);
- ``nil`` is the nil object reference.

Message shapes (see :mod:`repro.heidirmi.protocol`)::

    CALL <objref> <operation> <token>...
    ONEWAY <objref> <operation> <token>...
    RET OK <token>...
    RET EXC <repo-id> <token>...
    RET ERR <category> <message-token>
"""

import re

from repro.heidirmi.errors import MarshalError, ProtocolError
from repro.heidirmi.marshal import Marshaller, Unmarshaller

#: The token standing for an empty string (an empty token would vanish).
_EMPTY = "%e"

#: Matches any character the wire format cannot carry verbatim; used as
#: a C-speed pre-check so clean strings skip the per-byte escape loop.
_NEEDS_ESCAPE_RE = re.compile(r"[\x00-\x20%\x7f]|[^\x00-\x7f]")


def _needs_escape(byte):
    # Everything at or below space covers str.split()'s whitespace set
    # (space, \t, \n, \r, \v, \f and the \x1c-\x1f separators) plus other
    # control characters; '%' is the escape character itself; DEL and
    # every non-ASCII byte are escaped so the wire stays pure printable
    # ASCII (the protocol's defining property).
    return byte <= 0x20 or byte == 0x25 or byte >= 0x7F
#: The token standing for a nil object reference.
NIL = "nil"

BEGIN_TOKEN = "{"
END_TOKEN = "}"
TRUE_TOKEN = "T"
FALSE_TOKEN = "F"


def escape_token(text):
    """Escape an arbitrary string into a single pure-ASCII wire token.

    The string is UTF-8 encoded and every byte outside printable ASCII
    (plus ``%`` itself) becomes ``%XX`` — so any Unicode text survives a
    protocol whose lines are plain ASCII.
    """
    if text == "":
        return _EMPTY
    if _NEEDS_ESCAPE_RE.search(text) is None:
        return text  # pure printable ASCII already; nothing to escape
    out = []
    for byte in text.encode("utf-8"):
        if _needs_escape(byte):
            out.append(f"%{byte:02X}")
        else:
            out.append(chr(byte))
    return "".join(out)


def unescape_token(token):
    """Invert :func:`escape_token`."""
    if token == _EMPTY:
        return ""
    if "%" not in token:
        return token  # no escapes: the token is already the string
    out = bytearray()
    index = 0
    while index < len(token):
        ch = token[index]
        if ch == "%":
            if token[index + 1 :].startswith("e"):
                # Only valid as the whole token; inside a token it is an error.
                raise ProtocolError(f"stray %e in token {token!r}")
            code = token[index + 1 : index + 3]
            if len(code) != 2:
                raise ProtocolError(f"truncated escape in token {token!r}")
            try:
                out.append(int(code, 16))
            except ValueError:
                raise ProtocolError(f"bad escape %{code} in token {token!r}") from None
            index += 3
        else:
            out.extend(ch.encode("utf-8"))
            index += 1
    try:
        return out.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"token {token!r} is not valid UTF-8: {exc}") from None


class TextMarshaller(Marshaller):
    """Marshals typed values into a list of text tokens."""

    __slots__ = ("_tokens", "_depth")

    def __init__(self):
        self._tokens = []
        self._depth = 0

    # -- primitives ------------------------------------------------------

    def put_boolean(self, value):
        self._tokens.append(TRUE_TOKEN if value else FALSE_TOKEN)

    def put_octet(self, value):
        self._put_int(value, 0, 2**8 - 1)

    def put_char(self, value):
        if not isinstance(value, str) or len(value) != 1:
            raise MarshalError(f"char must be a 1-character string, got {value!r}")
        self._tokens.append(escape_token(value))

    def put_short(self, value):
        self._put_int(value, -(2**15), 2**15 - 1)

    def put_ushort(self, value):
        self._put_int(value, 0, 2**16 - 1)

    def put_long(self, value):
        self._put_int(value, -(2**31), 2**31 - 1)

    def put_ulong(self, value):
        self._put_int(value, 0, 2**32 - 1)

    def put_longlong(self, value):
        self._put_int(value, -(2**63), 2**63 - 1)

    def put_ulonglong(self, value):
        self._put_int(value, 0, 2**64 - 1)

    def _put_int(self, value, low, high):
        if isinstance(value, bool) or not isinstance(value, int):
            raise MarshalError(f"expected an integer, got {value!r}")
        if not low <= value <= high:
            raise MarshalError(f"integer {value} out of range [{low}, {high}]")
        self._tokens.append(str(value))

    def put_float(self, value):
        self._put_real(value)

    def put_double(self, value):
        self._put_real(value)

    def _put_real(self, value):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MarshalError(f"expected a real number, got {value!r}")
        self._tokens.append(repr(float(value)))

    def put_string(self, value):
        if not isinstance(value, str):
            raise MarshalError(f"expected a string, got {value!r}")
        self._tokens.append(escape_token(value))

    def put_enum(self, name, index):
        # Text keeps the human-readable spelling, per the telnet anecdote.
        self._tokens.append(escape_token(name))

    def put_objref(self, stringified):
        if stringified is None:
            self._tokens.append(NIL)
        else:
            self._tokens.append(escape_token(stringified))

    def begin(self, name=""):
        self._tokens.append(BEGIN_TOKEN)
        self._depth += 1

    def end(self):
        if self._depth <= 0:
            raise MarshalError("end() without matching begin()")
        self._tokens.append(END_TOKEN)
        self._depth -= 1

    # -- output ------------------------------------------------------------

    def tokens(self):
        """The marshalled token list (borrowed — do not mutate)."""
        if self._depth != 0:
            raise MarshalError(f"{self._depth} begin() blocks left open")
        return self._tokens

    def payload(self):
        return " ".join(self.tokens()).encode("ascii")


class TextUnmarshaller(Unmarshaller):
    """Pulls typed values back out of a token list."""

    __slots__ = ("_tokens", "_pos", "_depth")

    def __init__(self, tokens):
        self._tokens = list(tokens)
        self._pos = 0
        self._depth = 0

    @classmethod
    def from_payload(cls, payload):
        text = payload.decode("ascii") if isinstance(payload, bytes) else payload
        return cls(text.split()) if text else cls([])

    @classmethod
    def adopt(cls, tokens, pos):
        """Wrap an already-split token list without copying it.

        The protocol layer hands over the freshly split request/reply
        line and a start offset — the caller must not reuse the list.
        """
        self = cls.__new__(cls)
        self._tokens = tokens
        self._pos = pos
        self._depth = 0
        return self

    def _next(self, what):
        if self._pos >= len(self._tokens):
            raise MarshalError(f"ran out of tokens while reading {what}")
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    # -- primitives ---------------------------------------------------------

    def get_boolean(self):
        token = self._next("boolean")
        if token == TRUE_TOKEN:
            return True
        if token == FALSE_TOKEN:
            return False
        raise MarshalError(f"expected T/F boolean token, got {token!r}")

    def get_octet(self):
        return self._get_int("octet", 0, 2**8 - 1)

    def get_char(self):
        value = unescape_token(self._next("char"))
        if len(value) != 1:
            raise MarshalError(f"char token decodes to {value!r}, not 1 character")
        return value

    def get_short(self):
        return self._get_int("short", -(2**15), 2**15 - 1)

    def get_ushort(self):
        return self._get_int("unsigned short", 0, 2**16 - 1)

    def get_long(self):
        return self._get_int("long", -(2**31), 2**31 - 1)

    def get_ulong(self):
        return self._get_int("unsigned long", 0, 2**32 - 1)

    def get_longlong(self):
        return self._get_int("long long", -(2**63), 2**63 - 1)

    def get_ulonglong(self):
        return self._get_int("unsigned long long", 0, 2**64 - 1)

    def _get_int(self, what, low, high):
        token = self._next(what)
        try:
            value = int(token)
        except ValueError:
            raise MarshalError(f"expected {what}, got token {token!r}") from None
        if not low <= value <= high:
            raise MarshalError(f"{what} {value} out of range [{low}, {high}]")
        return value

    def get_float(self):
        return self._get_real("float")

    def get_double(self):
        return self._get_real("double")

    def _get_real(self, what):
        token = self._next(what)
        try:
            return float(token)
        except ValueError:
            raise MarshalError(f"expected {what}, got token {token!r}") from None

    def get_string(self):
        return unescape_token(self._next("string"))

    def get_enum(self, members):
        token = unescape_token(self._next("enum"))
        # Accept the spelled-out name (what our marshaller and human
        # clients write) or a numeric index.
        if token in members:
            return members.index(token)
        try:
            index = int(token)
        except ValueError:
            raise MarshalError(
                f"enum token {token!r} is not one of {tuple(members)}"
            ) from None
        if not 0 <= index < len(members):
            raise MarshalError(f"enum index {index} out of range for {tuple(members)}")
        return index

    def get_objref(self):
        token = self._next("object reference")
        if token == NIL:
            return None
        return unescape_token(token)

    def begin(self, name=""):
        token = self._next("begin marker")
        if token != BEGIN_TOKEN:
            raise MarshalError(f"expected '{{' begin marker, got {token!r}")
        self._depth += 1

    def end(self):
        token = self._next("end marker")
        if token != END_TOKEN:
            raise MarshalError(f"expected '}}' end marker, got {token!r}")
        self._depth -= 1

    def at_end(self):
        return self._pos >= len(self._tokens)

    def remaining_tokens(self):
        return self._tokens[self._pos :]

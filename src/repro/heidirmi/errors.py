"""Exception hierarchy for the HeidiRMI runtime."""


class HeidiRmiError(Exception):
    """Base class for all HeidiRMI runtime errors."""


class MarshalError(HeidiRmiError):
    """A value could not be marshalled or unmarshalled."""


class ProtocolError(HeidiRmiError):
    """Malformed data on the wire (bad framing, bad header, bad token)."""


class CommunicationError(HeidiRmiError):
    """A channel failed (connect refused, peer closed, short read)."""


class ObjectNotFound(HeidiRmiError):
    """The target object identifier is unknown in the server address space."""

    def __init__(self, object_id):
        self.object_id = object_id
        super().__init__(f"no object registered with id {object_id!r}")


class MethodNotFound(HeidiRmiError):
    """Dispatch failed: no skeleton up the hierarchy handles the operation."""

    def __init__(self, operation, type_id=""):
        self.operation = operation
        self.type_id = type_id
        target = f" on {type_id}" if type_id else ""
        super().__init__(f"no method {operation!r}{target}")


class RemoteError(HeidiRmiError):
    """An exception raised by the remote implementation, propagated back.

    ``repo_id`` carries the IDL exception repository ID when the remote
    exception was a declared (user) exception, or the ``ERR`` marker
    category for system-level failures.
    """

    def __init__(self, message, repo_id=""):
        self.repo_id = repo_id
        super().__init__(message if not repo_id else f"{repo_id}: {message}")

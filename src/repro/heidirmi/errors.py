"""Exception hierarchy for the HeidiRMI runtime."""


class HeidiRmiError(Exception):
    """Base class for all HeidiRMI runtime errors."""


class MarshalError(HeidiRmiError):
    """A value could not be marshalled or unmarshalled."""


class ProtocolError(HeidiRmiError):
    """Malformed data on the wire (bad framing, bad header, bad token)."""


class CommunicationError(HeidiRmiError):
    """A channel failed (connect refused, peer closed, short read).

    ``kind`` normalizes the failure cause into a small vocabulary so
    span error tags and metrics can distinguish, e.g., a demultiplexer
    reader dying mid-flight from a refused connect.  Raisers across the
    transport and communicator layers use:

    - ``connect-refused`` — the peer actively refused (or is
      unreachable); connection establishment failed immediately;
    - ``connect-timeout`` — the connect attempt ran out its timeout
      budget without an answer (distinct from a refusal: the endpoint
      may be black-holing, not down);
    - ``bind-failed`` / ``accept-failed`` / ``listener-closed`` — the
      server side of connection establishment failed;
    - ``send-failed`` / ``recv-failed`` — an I/O error on a live socket;
    - ``peer-closed`` — the peer shut the connection down (EOF or a
      protocol-level close notification);
    - ``channel-closed`` — this side already closed the channel;
    - ``reader-died`` — the demultiplexing reply reader failed, taking
      every pending call on the shared channel with it;
    - ``peer-protocol-error`` — the peer reported a request it could
      not parse (e.g. ``RET2 0 ERR``), failing the whole channel;
    - ``frame-overflow`` — a message exceeded the wire-format bounds;
    - ``deadline-exceeded`` — the call's deadline budget ran out
      (raised as :class:`DeadlineExceeded`, also a ``TimeoutError``);
    - ``circuit-open`` — the per-endpoint circuit breaker shed the
      call without a connection attempt (:class:`CircuitOpenError`);
    - ``overloaded`` — the server refused the call at admission (queue
      full or over its concurrency limit) and answered with a typed
      overloaded reply, optionally carrying a retry-after hint
      (:class:`OverloadedError`); the server is *alive* — this is
      back-pressure, not a failure;
    - ``draining`` — the peer announced an orderly shutdown (text2
      ``BYE`` / GIOP CloseConnection) while calls were pending; the
      calls were handed off un-dispatched and are safe to retry on a
      fresh connection;
    - ``communication`` — the unclassified default.
    """

    def __init__(self, message, kind="communication"):
        self.kind = kind
        super().__init__(message)


class DeadlineExceeded(CommunicationError, TimeoutError):
    """The call's deadline expired (client- or server-detected).

    Subclasses ``TimeoutError`` so user code can catch the standard
    exception without importing anything from the runtime.
    """

    def __init__(self, message):
        super().__init__(message, kind="deadline-exceeded")


class CircuitOpenError(CommunicationError):
    """The endpoint's circuit breaker is open; the call was shed."""

    def __init__(self, message):
        super().__init__(message, kind="circuit-open")


class OverloadedError(CommunicationError):
    """The server shed this call at admission (overload back-pressure).

    ``retry_after`` is the server's hint, in seconds, of when capacity
    is expected back (None when the server sent no hint).  The
    resilient invoke path honours it as a backoff floor; retries remain
    gated by the endpoint's retry budget.
    """

    def __init__(self, message, retry_after=None):
        self.retry_after = retry_after
        super().__init__(message, kind="overloaded")


class ObjectNotFound(HeidiRmiError):
    """The target object identifier is unknown in the server address space."""

    def __init__(self, object_id):
        self.object_id = object_id
        super().__init__(f"no object registered with id {object_id!r}")


class MethodNotFound(HeidiRmiError):
    """Dispatch failed: no skeleton up the hierarchy handles the operation."""

    def __init__(self, operation, type_id=""):
        self.operation = operation
        self.type_id = type_id
        target = f" on {type_id}" if type_id else ""
        super().__init__(f"no method {operation!r}{target}")


class RemoteError(HeidiRmiError):
    """An exception raised by the remote implementation, propagated back.

    ``repo_id`` carries the IDL exception repository ID when the remote
    exception was a declared (user) exception, or the ``ERR`` marker
    category for system-level failures.
    """

    def __init__(self, message, repo_id=""):
        self.repo_id = repo_id
        super().__init__(message if not repo_id else f"{repo_id}: {message}")

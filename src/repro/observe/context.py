"""Trace-context identity and in-process propagation.

A trace context is the pair (trace id, span id) that links every span
of one logical request chain.  It crosses process boundaries *on the
wire* — as the optional ``ctx=`` header token of the text protocols and
as a GIOP ServiceContext entry (see ``docs/OBSERVABILITY.md``) — and
crosses *thread* boundaries in-process through the active-context
thread-local below, so a server upcall that makes further remote calls
extends the incoming trace instead of starting a new one.

Identifiers are lowercase hex (64-bit trace id, 32-bit span id) and the
wire token is ``<trace_id>-<span_id>`` — pure printable ASCII, so it
needs no escaping in any of the wire protocols.
"""

import os
import threading

#: Prefix of the optional trace-context token in text-protocol headers.
WIRE_PREFIX = "ctx="

_HEX = set("0123456789abcdef")


def new_trace_id():
    """A fresh 64-bit trace id as 16 lowercase hex characters."""
    return os.urandom(8).hex()


def new_span_id():
    """A fresh 32-bit span id as 8 lowercase hex characters."""
    return os.urandom(4).hex()


class TraceContext:
    """The (trace id, span id) pair a span hands to its children."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id, span_id):
        self.trace_id = trace_id
        self.span_id = span_id

    def token(self):
        """The wire rendering, ``<trace_id>-<span_id>``."""
        return f"{self.trace_id}-{self.span_id}"

    @classmethod
    def parse(cls, token):
        """Parse a wire token; returns None for anything malformed.

        Tolerant by design: a peer sending a context we cannot read
        must degrade to "untraced", never to a protocol error.
        """
        if not token or not isinstance(token, str):
            return None
        trace_id, sep, span_id = token.partition("-")
        if not sep or not trace_id or not span_id:
            return None
        if not (_HEX.issuperset(trace_id) and _HEX.issuperset(span_id)):
            return None
        return cls(trace_id, span_id)

    def __eq__(self, other):
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self):
        return hash((self.trace_id, self.span_id))

    def __repr__(self):
        return f"<TraceContext {self.token()}>"


# -- the active context (thread-local) -----------------------------------

_active = threading.local()


def current():
    """The active TraceContext on this thread, or None."""
    return getattr(_active, "context", None)


def activate(context):
    """Make *context* the active context; returns the previous one.

    Callers must restore the returned value with :func:`restore` (the
    server dispatch path does this around every traced upcall).
    """
    previous = getattr(_active, "context", None)
    _active.context = context
    return previous


def restore(previous):
    """Undo a matching :func:`activate`."""
    _active.context = previous

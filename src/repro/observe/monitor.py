"""ORBMonitor — live ORB introspection served over the ORB itself.

The dogfooding layer: every Orb built with ``monitor=True`` registers a
built-in ``Monitor`` object (IDL in ``examples/orbmonitor.idl``) at the
well-known object id :data:`MONITOR_OID`, served through the ordinary
stub/skeleton machinery over whatever protocol the Orb speaks — which
means one ORB interrogates another with a plain remote call, and the
monitoring traffic itself shows up in spans, metrics and the flight
recorder like any other request.

The mapping keeps the IDL trivial: each operation returns one JSON
document as an IDL string (``snapshot``, ``health``,
``recent_errors``), so the interface never chases the metric catalogue.
Clients use :func:`monitor_stub` to build a stub from a bare endpoint —
no registry setup needed on either side (the server dispatches through
``MonitorImpl._hd_skel_class_``, the client constructs the stub class
directly).
"""

import json
import time

from repro.heidirmi.objref import ObjectReference
from repro.heidirmi.skeleton import HdSkel
from repro.heidirmi.stub import HdStub
from repro.wire.bufferplan import wire_buffer_stats

#: Repository ID of the monitor interface (examples/orbmonitor.idl).
MONITOR_TYPE_ID = "IDL:ORBMonitor/Monitor:1.0"

#: Well-known object id every monitored Orb registers the monitor at.
MONITOR_OID = "orb-monitor"


class Monitor_stub(HdStub):
    """Client stub for the monitor interface (hand-mapped from IDL)."""

    _hd_type_id_ = MONITOR_TYPE_ID

    def snapshot(self):
        """The peer's full observer snapshot (metrics, spans, flight)."""
        return json.loads(self._invoke(self._new_call("snapshot")).get_string())

    def health(self):
        """Liveness + headline counters (cheap; safe to poll)."""
        return json.loads(self._invoke(self._new_call("health")).get_string())

    def recent_errors(self):
        """The peer's recent channel deaths (flight recorder spool log)."""
        return json.loads(
            self._invoke(self._new_call("recent_errors")).get_string()
        )


class Monitor_skel(HdSkel):
    """Delegation skeleton for the monitor interface."""

    _hd_type_id_ = MONITOR_TYPE_ID
    _hd_operations_ = (
        ("snapshot", "_op_snapshot"),
        ("health", "_op_health"),
        ("recent_errors", "_op_recent_errors"),
    )

    def _op_snapshot(self, call, reply):
        reply.put_string(json.dumps(self.impl.snapshot()))

    def _op_health(self, call, reply):
        reply.put_string(json.dumps(self.impl.health()))

    def _op_recent_errors(self, call, reply):
        reply.put_string(json.dumps(self.impl.recent_errors()))


class MonitorImpl:
    """The served implementation: reads one Orb's live state."""

    _hd_type_id_ = MONITOR_TYPE_ID
    #: Server-side dispatch falls back to this when the type registry
    #: has never seen the monitor interface — no registration needed.
    _hd_skel_class_ = Monitor_skel

    def __init__(self, orb):
        self._orb = orb
        self._started = time.time()

    def snapshot(self):
        orb = self._orb
        if orb.observer is not None:
            snapshot = orb.observer.snapshot()
        else:
            snapshot = {"metrics": {}, "spans": []}
        snapshot["orb"] = self._orb_state()
        return snapshot

    def health(self):
        orb = self._orb
        with orb._lock:
            draining = orb._draining
        return {
            "status": "draining" if draining else "ok",
            "uptime_s": time.time() - self._started,
            "orb": self._orb_state(),
            "resilience": self._resilience_state(draining),
        }

    def recent_errors(self):
        flight = getattr(self._orb.observer, "flight", None)
        if flight is None:
            return []
        return flight.snapshot()["recent_errors"]

    def _resilience_state(self, draining):
        """Overload/drain/breaker/budget state for the health document.

        Per-endpoint breaker fields are lock-free monitoring reads (the
        breaker documents them as such); admission and budget state come
        from their own locked ``snapshot()`` methods.
        """
        orb = self._orb
        state = {"draining": draining}
        admission = orb._admission
        if admission is not None:
            state["admission"] = admission.snapshot()
        with orb._lock:
            breakers = dict(orb._breakers)
            budgets = dict(orb._retry_budgets)
        state["breakers"] = {
            bootstrap: {
                "state": breaker.state,
                "failure_rate": round(breaker.failure_rate, 3),
                "overloaded": breaker.overloaded_count,
            }
            for bootstrap, breaker in sorted(breakers.items())
        }
        state["retry_budgets"] = {
            bootstrap: budget.snapshot()
            for bootstrap, budget in sorted(budgets.items())
        }
        return state

    def _orb_state(self):
        orb = self._orb
        with orb._lock:
            objects = len(orb._objects)
            active = len(orb._active)
        with orb._stats_lock:
            stats = dict(orb.stats)
        return {
            "protocol": orb.protocol.name,
            "transport": orb.transport_name,
            "address": list(orb.address),
            "objects": objects,
            "active_connections": active,
            "stats": stats,
            "connection_cache": dict(orb.connections.stats),
            # Process-wide (the pool and intern cache are shared by
            # every Orb in the process, not partitioned per instance).
            "wire_buffers": wire_buffer_stats(),
        }


def monitor_stub(client_orb, host, port, transport="tcp"):
    """A :class:`Monitor_stub` for the monitored Orb at *host*:*port*.

    *client_orb* supplies the wire protocol and connection cache;
    *transport* names the server's transport (the bootstrap scheme in
    its references).  Works with no type registry entries at all.
    """
    reference = ObjectReference(
        protocol=transport,
        host=host,
        port=port,
        object_id=MONITOR_OID,
        type_id=MONITOR_TYPE_ID,
    )
    return Monitor_stub(reference, client_orb)

"""``python -m repro.observe`` — inspect span files from the terminal.

Three subcommands over a JSON-lines trace file::

    python -m repro.observe summary trace.jsonl
    python -m repro.observe waterfall trace.jsonl [--trace ID]
    python -m repro.observe tail trace.jsonl [--follow] [--limit N]

``summary`` aggregates latency percentiles and the mean stage breakdown
per (span kind, operation); ``waterfall`` renders one trace's spans as
an aligned timeline with stage segments; ``tail`` prints spans one per
line, optionally following the file as a live run appends to it.
"""

import argparse
import json
import sys
import time

from repro.observe.export import load_spans


def percentile(values, q):
    """The q-quantile (0..1) of a sorted or unsorted value list."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def _fmt_us(us):
    if us is None:
        return "-"
    if us >= 1_000_000:
        return f"{us / 1_000_000:.2f}s"
    if us >= 1_000:
        return f"{us / 1_000:.2f}ms"
    if isinstance(us, float) and not us.is_integer():
        return f"{us:.1f}us"
    return f"{int(us)}us"


# -- summary ----------------------------------------------------------------


def summarize(spans):
    """Aggregate spans into per-(kind, operation) rows of plain data."""
    groups = {}
    for span in spans:
        if span.get("duration_us") is None:
            continue
        key = (span.get("name", "?"), span.get("operation", "?"))
        groups.setdefault(key, []).append(span)
    rows = []
    for (kind, operation), members in sorted(groups.items()):
        durations = [span["duration_us"] for span in members]
        stage_totals = {}
        for span in members:
            for stage, us in span.get("stages") or ():
                stage_totals[stage] = stage_totals.get(stage, 0) + us
        errors = sum(1 for span in members if span.get("error"))
        rows.append({
            "kind": kind,
            "operation": operation,
            "count": len(members),
            "errors": errors,
            "p50_us": percentile(durations, 0.50),
            "p95_us": percentile(durations, 0.95),
            "p99_us": percentile(durations, 0.99),
            "mean_stages_us": {
                stage: total / len(members)
                for stage, total in sorted(stage_totals.items())
            },
        })
    return rows


def render_summary(spans):
    rows = summarize(spans)
    if not rows:
        return "no finished spans\n"
    lines = [
        f"{'kind':8s} {'operation':20s} {'count':>6s} {'err':>4s} "
        f"{'p50':>9s} {'p95':>9s} {'p99':>9s}  stage breakdown (mean)"
    ]
    for row in rows:
        stages = " ".join(
            f"{stage}={_fmt_us(int(us))}"
            for stage, us in row["mean_stages_us"].items()
        )
        lines.append(
            f"{row['kind']:8s} {row['operation']:20s} {row['count']:>6d} "
            f"{row['errors']:>4d} {_fmt_us(row['p50_us']):>9s} "
            f"{_fmt_us(row['p95_us']):>9s} {_fmt_us(row['p99_us']):>9s}  "
            f"{stages}"
        )
    lines.append(f"{len(spans)} spans")
    return "\n".join(lines) + "\n"


# -- waterfall ---------------------------------------------------------------

#: Width of the timeline bar in characters.
_BAR_WIDTH = 48


def _trace_spans(spans, trace_id=None):
    """The spans of one trace (default: the trace of the last span)."""
    finished = [span for span in spans if span.get("duration_us") is not None]
    if trace_id is None and finished:
        trace_id = finished[-1].get("trace_id")
    members = [span for span in finished if span.get("trace_id") == trace_id]
    members.sort(key=lambda span: span.get("start", 0))
    return trace_id, members


def render_waterfall(spans, trace_id=None):
    trace_id, members = _trace_spans(spans, trace_id)
    if not members:
        return f"no spans for trace {trace_id}\n" if trace_id else "no spans\n"
    origin = min(span["start"] for span in members)
    extent = max(
        span["start"] - origin + span["duration_us"] / 1_000_000
        for span in members
    ) or 1e-9
    lines = [f"trace {trace_id} — {len(members)} span(s), "
             f"{_fmt_us(int(extent * 1_000_000))} total"]
    for span in members:
        offset = span["start"] - origin
        duration = span["duration_us"] / 1_000_000
        left = int(round(_BAR_WIDTH * offset / extent))
        width = max(1, int(round(_BAR_WIDTH * duration / extent)))
        width = min(width, _BAR_WIDTH - left) or 1
        bar = [" "] * _BAR_WIDTH
        # Stage segments: each stage paints its first letter across its
        # share of the span's bar, so `msw` reads marshal → send → wait.
        stages = span.get("stages") or ()
        total_us = span["duration_us"] or 1
        cursor = 0
        for stage, us in stages:
            cells = int(round(width * us / total_us))
            for _ in range(cells):
                if cursor < width:
                    bar[left + cursor] = stage[0]
                    cursor += 1
        while cursor < width:
            bar[left + cursor] = "#"
            cursor += 1
        label = f"{span.get('name', '?')}:{span.get('operation', '?')}"
        error = "  !" + span["error"] if span.get("error") else ""
        lines.append(
            f"  {label:24s} |{''.join(bar)}| "
            f"+{_fmt_us(int(offset * 1_000_000)):>8s} "
            f"{_fmt_us(span['duration_us']):>9s}{error}"
        )
    legend = []
    for span in members:
        for stage, _ in span.get("stages") or ():
            key = f"{stage[0]}={stage}"
            if key not in legend:
                legend.append(key)
    if legend:
        lines.append("  stages: " + " ".join(legend))
    return "\n".join(lines) + "\n"


# -- tail --------------------------------------------------------------------


def format_span_line(span):
    stages = " ".join(
        f"{stage}={_fmt_us(us)}" for stage, us in span.get("stages") or ()
    )
    error = f" !{span['error']}" if span.get("error") else ""
    clock = time.strftime("%H:%M:%S", time.localtime(span.get("start", 0)))
    return (
        f"{clock} {span.get('name', '?'):7s} "
        f"{span.get('operation', '?'):16s} "
        f"{_fmt_us(span.get('duration_us')):>9s} "
        f"trace={span.get('trace_id', '?')} {stages}{error}"
    )


def tail(path, follow=False, limit=None, out=None, poll=0.2):
    """Print spans one per line; with *follow*, keep reading appends.

    Robust against a live writer: malformed records (a crashed writer,
    a torn flush) are skipped and counted, never fatal, and a partial
    final line — a record caught mid-append — is buffered in follow
    mode until its remainder lands.  Returns the number printed; the
    skip count is reported on *out* when nonzero.
    """
    if out is None:
        out = sys.stdout
    printed = 0
    skipped = 0
    partial = ""

    def _finish():
        if skipped:
            out.write(f"({skipped} malformed record(s) skipped)\n")
        return printed

    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        while True:
            line = handle.readline()
            if not line:
                if not follow:
                    if partial.strip():
                        skipped += 1  # file ends inside a record
                    return _finish()
                time.sleep(poll)
                continue
            if partial:
                line = partial + line
                partial = ""
            if not line.endswith("\n") and follow:
                # A writer is mid-append; wait for the rest of the line.
                partial = line
                continue
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            out.write(format_span_line(span) + "\n")
            printed += 1
            if limit is not None and printed >= limit:
                return _finish()


# -- replay / serve ----------------------------------------------------------


def replay(path, out=None):
    """Re-decode a postmortem bundle's bytes through fresh machines.

    Returns 0 when every inbound record decodes exactly as the live
    capture recorded, 1 when any record diverges (a decoder bug, or a
    bundle from an incompatible version).
    """
    from repro.observe.flight import load_bundle, render_replay, replay_bundle

    if out is None:
        out = sys.stdout
    bundle = load_bundle(path)
    replayed = replay_bundle(bundle)
    out.write(render_replay(bundle, replayed))
    diverged = any(item.matches_live is False for item in replayed)
    return 1 if diverged else 0


def serve(path=None, host="127.0.0.1", port=0, oneshot=False, out=None):
    """Prometheus-style exposition over HTTP.

    *path* serves a saved snapshot (a postmortem bundle, an Observer
    snapshot, or a bare metrics snapshot JSON document); None serves
    the process-global registry live.  ``oneshot`` answers exactly one
    request and exits (the CI smoke mode).
    """
    from repro.observe.metrics import global_registry
    from repro.observe.prom import MetricsServer

    if out is None:
        out = sys.stdout
    if path is None:
        source = global_registry()
    else:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        # Accept a bundle ({"observer": {"metrics": ...}}), an Observer
        # snapshot ({"metrics": ...}) or a raw metrics snapshot.
        if "observer" in document:
            document = document.get("observer") or {}
        source = document.get("metrics", document)
    server = MetricsServer(source, host=host, port=port)
    bound_host, bound_port = server.address
    out.write(f"serving metrics at http://{bound_host}:{bound_port}/metrics\n")
    out.flush()
    if oneshot:
        server.handle_once()
        server.stop()
        return 0
    try:
        server.serve_forever()
    finally:
        server.stop()
    return 0


# -- entry point -------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("summary", help="aggregate a span file")
    cmd.add_argument("path")

    cmd = commands.add_parser("waterfall", help="render one trace's timeline")
    cmd.add_argument("path")
    cmd.add_argument("--trace", default=None, help="trace id (default: last)")

    cmd = commands.add_parser("tail", help="print spans one per line")
    cmd.add_argument("path")
    cmd.add_argument("--follow", action="store_true",
                     help="keep reading as the file grows")
    cmd.add_argument("--limit", type=int, default=None,
                     help="stop after N spans")

    cmd = commands.add_parser(
        "replay", help="re-decode a postmortem bundle's captured bytes"
    )
    cmd.add_argument("path", help="a postmortem-*.json flight bundle")

    cmd = commands.add_parser(
        "serve", help="Prometheus-style metrics exposition over HTTP"
    )
    cmd.add_argument("path", nargs="?", default=None,
                     help="bundle or snapshot JSON (default: live "
                          "process-global registry)")
    cmd.add_argument("--host", default="127.0.0.1")
    cmd.add_argument("--port", type=int, default=0,
                     help="port to bind (default: ephemeral)")
    cmd.add_argument("--oneshot", action="store_true",
                     help="answer one request, then exit")

    args = parser.parse_args(argv)
    try:
        if args.command == "summary":
            sys.stdout.write(render_summary(load_spans(args.path)))
        elif args.command == "waterfall":
            sys.stdout.write(render_waterfall(load_spans(args.path),
                                              trace_id=args.trace))
        elif args.command == "tail":
            tail(args.path, follow=args.follow, limit=args.limit)
        elif args.command == "replay":
            return replay(args.path)
        elif args.command == "serve":
            return serve(args.path, host=args.host, port=args.port,
                         oneshot=args.oneshot)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The Observer: the one object an ORB needs for tracing + metrics.

Pass an :class:`Observer` to ``Orb(observer=...)`` and the whole RPC
path lights up: every invoke produces a client span, every served
request a server span (linked through the wire-propagated trace
context), and the runtime records the metric catalogue documented in
``docs/OBSERVABILITY.md`` into the observer's registry.

With no observer installed (the default) the runtime pays only
``is None`` checks — no spans, no metrics, no allocation.
"""

from repro.observe import context as _context
from repro.observe.context import TraceContext
from repro.observe.export import InMemoryExporter, JsonLinesExporter
from repro.observe.metrics import ChannelMeter, MetricsRegistry
from repro.observe.span import Span
from repro.wire.bufferplan import wire_buffer_stats


def _collect_wire_buffers(registry):
    """Mirror the send-pool / frame-intern counters into *registry*.

    Registered as a collect hook on every Observer's registry, so each
    ``snapshot()`` (and therefore each Prometheus scrape and monitor
    poll) reads the live process-wide pool state.  Hits and misses are
    monotonic but published as gauges: the counters are owned by the
    wire layer and only mirrored here.
    """
    for store, counters in wire_buffer_stats().items():
        for name, value in counters.items():
            registry.gauge(f"wire.{store}.{name}").set(value)


class Observer:
    """Tracing + metrics facade handed to an Orb."""

    def __init__(self, exporter=None, metrics=None, flight=None):
        self.exporter = exporter if exporter is not None else InMemoryExporter()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.add_collect_hook(_collect_wire_buffers)
        #: Optional ``repro.observe.flight.FlightControl``: when set,
        #: every channel of an Orb built with this observer carries a
        #: per-channel wire-event ring, and abnormal channel deaths
        #: spool postmortem bundles.  None keeps the recorder fully out
        #: of the hot path.
        self.flight = flight
        if flight is not None:
            # Back-reference: bundles embed a metrics + recent-span
            # snapshot taken at the moment of death.
            flight.observer = self

    # -- spans ------------------------------------------------------------

    def start_span(self, name, operation, parent=None, **attrs):
        """Open a span; *parent* is a TraceContext, a wire token, or None.

        With no explicit parent the thread's active context (set by the
        server dispatch path) is used, so calls made from inside a
        traced upcall extend the incoming trace.
        """
        if isinstance(parent, str):
            parent = TraceContext.parse(parent)
        if parent is None:
            parent = _context.current()
        return Span(name, operation, parent=parent, observer=self,
                    attrs=attrs or None)

    def _finished(self, span):
        self.exporter.export(span.to_dict())

    # -- metrics helpers ---------------------------------------------------

    def channel_meter(self, side):
        """A byte meter for channels on *side* ("client"/"server")."""
        return ChannelMeter(
            self.metrics.counter("channel.bytes_sent", side=side),
            self.metrics.counter("channel.bytes_received", side=side),
        )

    # -- snapshot / lifecycle ----------------------------------------------

    def snapshot(self):
        """In-process snapshot: metric state plus any retained spans."""
        snapshot = {
            "metrics": self.metrics.snapshot(),
            "spans": self.exporter.snapshot(),
        }
        if self.flight is not None:
            snapshot["flight"] = self.flight.snapshot()
        return snapshot

    def close(self):
        self.exporter.close()


def file_observer(path, metrics=None, append=False):
    """An Observer exporting spans as JSON lines to *path*."""
    return Observer(exporter=JsonLinesExporter(path, append=append),
                    metrics=metrics)

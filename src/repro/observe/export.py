"""Span exporters: where finished spans go.

Two exporters ship: :class:`JsonLinesExporter` appends one JSON object
per span to a file (the format ``python -m repro.observe`` reads), and
:class:`InMemoryExporter` keeps them in a list for tests and the
in-process snapshot API.  Both accept the plain-dict form produced by
``Span.to_dict`` and are safe to share between the client and server
side of one process (exports are serialized per exporter).
"""

import json
import threading


class Exporter:
    """Receives finished spans as plain dicts."""

    def export(self, record):
        raise NotImplementedError

    def snapshot(self):
        """Exported spans, when the exporter retains them (else [])."""
        return []

    def close(self):
        pass


class InMemoryExporter(Exporter):
    """Collects span records in memory; ``spans`` is the live list."""

    def __init__(self):
        self.spans = []
        self._lock = threading.Lock()

    def export(self, record):
        with self._lock:
            self.spans.append(record)

    def snapshot(self):
        with self._lock:
            return list(self.spans)

    def clear(self):
        with self._lock:
            self.spans.clear()


class JsonLinesExporter(Exporter):
    """Appends spans to *path*, one compact JSON object per line."""

    def __init__(self, path, append=False):
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a" if append else "w", encoding="utf-8")

    def export(self, record):
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            handle = self._handle
            if handle is None:
                return  # closed under a racing exporter: drop, don't die
            handle.write(line + "\n")
            handle.flush()

    def close(self):
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()


def load_spans(path):
    """Read a JSON-lines span file; malformed lines are skipped.

    Tolerant so a file being written concurrently (``--follow`` tails,
    a crashed run's torn last line) still loads.
    """
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                spans.append(record)
    return spans

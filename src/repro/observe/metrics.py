"""The ORB metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` per :class:`~repro.observe.Observer` (and a
process-wide default via :func:`global_registry`).  Instruments are
memoized by (name, labels), so hot-path code resolves each instrument
once at setup time and recording is a single method call on a
pre-resolved object — the registry dict is never touched per call.

Recording is deliberately lock-cheap: each instrument has its own small
lock, held only for the few arithmetic operations of one update, so
concurrent client threads, the demux reader and pipelined server
workers never contend on a registry-wide lock.
"""

import bisect
import threading

#: Default histogram bucket upper bounds, in microseconds: wide enough
#: to cover an in-process call (~tens of µs) up to a multi-second stall.
DEFAULT_BUCKETS_US = (
    50, 100, 250, 500, 1000, 2500, 5000, 10000,
    25000, 50000, 100000, 250000, 500000, 1000000, 5000000,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        with self._lock:
            self.value += amount

    def snapshot(self):
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level (queue depth, in-flight count) with a high-water mark."""

    __slots__ = ("value", "max", "_lock")

    def __init__(self):
        self.value = 0
        self.max = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value

    def add(self, delta):
        with self._lock:
            self.value += delta
            if self.value > self.max:
                self.max = self.value

    def snapshot(self):
        return {"type": "gauge", "value": self.value, "max": self.max}


class Histogram:
    """A fixed-bucket distribution (latencies in microseconds by default)."""

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, buckets=DEFAULT_BUCKETS_US):
        self.bounds = tuple(buckets)
        self.counts = [0] * (len(self.bounds) + 1)  # +1 = overflow bucket
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def record(self, value):
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def quantile(self, q):
        """Rough quantile estimate from the bucket counts (None if empty)."""
        with self._lock:
            total = self.count
            counts = list(self.counts)
            low, high = self.min, self.max
        if not total:
            return None
        target = q * total
        seen = 0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= target:
                upper = self.bounds[index] if index < len(self.bounds) else high
                return min(upper, high) if high is not None else upper
        return high

    def snapshot(self):
        with self._lock:
            mean = self.sum / self.count if self.count else None
            return {
                "type": "histogram",
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": mean,
                "buckets": dict(zip(self.bounds, self.counts)),
                "overflow": self.counts[-1],
            }


class ChannelMeter:
    """Byte accounting hook a :class:`~repro.heidirmi.transport.Channel` calls.

    ``Channel.send``/``Channel._fill`` invoke :meth:`sent`/:meth:`received`
    when a meter is attached; with no meter attached (the default) the
    channel pays a single ``is None`` check per operation.
    """

    __slots__ = ("_sent", "_received")

    def __init__(self, sent_counter, received_counter):
        self._sent = sent_counter
        self._received = received_counter

    def sent(self, nbytes):
        self._sent.inc(nbytes)

    def received(self, nbytes):
        self._received.inc(nbytes)


class MetricsRegistry:
    """Process- or observer-wide instrument table keyed by name + labels."""

    def __init__(self):
        self._instruments = {}
        self._collect_hooks = []
        self._lock = threading.Lock()

    def add_collect_hook(self, hook):
        """Run *hook(registry)* at the start of every :meth:`snapshot`.

        For state whose truth lives outside the registry (pool sizes,
        cache hit counters): the hook refreshes the mirroring gauges,
        so every consumer of ``snapshot()`` — the monitor object, the
        Prometheus exposition, postmortem bundles — sees current
        values without the owning code pushing on its hot path.
        """
        with self._lock:
            if hook not in self._collect_hooks:
                self._collect_hooks.append(hook)

    def _get(self, kind, factory, name, labels):
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name, **labels):
        return self._get(Counter, Counter, name, labels)

    def gauge(self, name, **labels):
        return self._get(Gauge, Gauge, name, labels)

    def histogram(self, name, buckets=DEFAULT_BUCKETS_US, **labels):
        return self._get(Histogram, lambda: Histogram(buckets), name, labels)

    def snapshot(self):
        """All instruments as plain data: {name: [{labels, ...state}]}."""
        with self._lock:
            hooks = list(self._collect_hooks)
        for hook in hooks:
            hook(self)
        with self._lock:
            items = list(self._instruments.items())
        result = {}
        for (name, labels), instrument in sorted(items, key=lambda kv: kv[0]):
            entry = instrument.snapshot()
            entry["labels"] = dict(labels)
            result.setdefault(name, []).append(entry)
        return result


_GLOBAL = MetricsRegistry()


def global_registry():
    """The process-wide default registry (observers may use their own)."""
    return _GLOBAL

"""Entry point for ``python -m repro.observe``."""

import sys

from repro.observe.cli import main

sys.exit(main())

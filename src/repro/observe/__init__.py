"""``repro.observe`` — end-to-end RPC tracing and ORB metrics.

The observability layer for the configurable ORB: spans over the full
client and server call paths, linked across the wire by a trace context
every protocol can carry; a registry of counters/gauges/histograms the
runtime records into; JSON-lines span export; and a CLI
(``python -m repro.observe``) that summarizes trace files and renders
per-call waterfalls.

Quickstart::

    from repro.observe import Observer, file_observer

    obs = file_observer("trace.jsonl")
    server = Orb(protocol="text2", observer=obs).start()
    client = Orb(protocol="text2", multiplex=True, observer=obs)
    ...
    obs.close()          # then: python -m repro.observe summary trace.jsonl

See ``docs/OBSERVABILITY.md`` for the span model, the metric catalogue
and the wire format of the trace context.
"""

from repro.observe.context import (
    TraceContext,
    activate,
    current,
    new_span_id,
    new_trace_id,
    restore,
)
from repro.observe.export import (
    Exporter,
    InMemoryExporter,
    JsonLinesExporter,
    load_spans,
)
from repro.observe.flight import (
    FlightControl,
    FlightRecorder,
    load_bundle,
    render_replay,
    replay_bundle,
)
from repro.observe.metrics import (
    ChannelMeter,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.observe.observer import Observer, file_observer
from repro.observe.prom import MetricsServer, render_prometheus
from repro.observe.span import Span

__all__ = [
    "TraceContext",
    "activate",
    "current",
    "restore",
    "new_trace_id",
    "new_span_id",
    "Span",
    "Observer",
    "file_observer",
    "Exporter",
    "InMemoryExporter",
    "JsonLinesExporter",
    "load_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "ChannelMeter",
    "MetricsRegistry",
    "global_registry",
    "FlightControl",
    "FlightRecorder",
    "load_bundle",
    "replay_bundle",
    "render_replay",
    "MetricsServer",
    "render_prometheus",
]

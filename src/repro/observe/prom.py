"""Prometheus-style text exposition of a :class:`MetricsRegistry`.

:func:`render_prometheus` turns a registry (or its ``snapshot()``
plain-data form) into the text format scrapers understand; counters map
to counters, gauges to gauges (plus a ``_max`` high-water companion),
and the fixed-bucket histograms to the cumulative ``_bucket``/``_sum``/
``_count`` triple.  :class:`MetricsServer` serves it over HTTP from a
background thread — one endpoint per process is enough for a scrape
target, and ``python -m repro.observe serve`` wraps it for ad-hoc use.
"""

import socketserver
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer


def _metric_name(name):
    """A registry name ("rpc.invoke_us") as a Prometheus identifier."""
    cleaned = []
    for index, char in enumerate(name):
        if char.isalnum() or char == "_" or (char == ":" and index):
            cleaned.append(char)
        else:
            cleaned.append("_")
    if cleaned and cleaned[0].isdigit():
        cleaned.insert(0, "_")
    return "".join(cleaned)


def _label_text(labels, extra=None):
    pairs = dict(labels or {})
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    rendered = ",".join(
        f'{_metric_name(str(key))}="{_escape(str(value))}"'
        for key, value in sorted(pairs.items())
    )
    return "{" + rendered + "}"


def _escape(value):
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _number(value):
    if value is None:
        return "NaN"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_prometheus(metrics):
    """The exposition text for *metrics* (a registry or its snapshot)."""
    snapshot = metrics.snapshot() if hasattr(metrics, "snapshot") else metrics
    lines = []
    for name, entries in sorted(snapshot.items()):
        base = _metric_name(name)
        kind = entries[0].get("type", "counter") if entries else "counter"
        if kind == "counter":
            lines.append(f"# TYPE {base} counter")
            for entry in entries:
                lines.append(
                    f"{base}{_label_text(entry.get('labels'))} "
                    f"{_number(entry.get('value', 0))}"
                )
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            for entry in entries:
                labels = _label_text(entry.get("labels"))
                lines.append(f"{base}{labels} {_number(entry.get('value', 0))}")
            lines.append(f"# TYPE {base}_max gauge")
            for entry in entries:
                labels = _label_text(entry.get("labels"))
                lines.append(f"{base}_max{labels} {_number(entry.get('max', 0))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {base} histogram")
            for entry in entries:
                labels = entry.get("labels")
                cumulative = 0
                for bound, count in sorted(
                    (entry.get("buckets") or {}).items(),
                    key=lambda pair: float(pair[0]),
                ):
                    cumulative += count
                    lines.append(
                        f"{base}_bucket"
                        f"{_label_text(labels, {'le': bound})} {cumulative}"
                    )
                cumulative += entry.get("overflow", 0)
                lines.append(
                    f"{base}_bucket{_label_text(labels, {'le': '+Inf'})} "
                    f"{cumulative}"
                )
                lines.append(
                    f"{base}_sum{_label_text(labels)} "
                    f"{_number(entry.get('sum', 0))}"
                )
                lines.append(
                    f"{base}_count{_label_text(labels)} "
                    f"{_number(entry.get('count', 0))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


class MetricsServer:
    """Serve one registry's exposition at ``/metrics`` (and ``/``).

    *source* is anything :func:`render_prometheus` accepts — typically
    the live :class:`~repro.observe.MetricsRegistry` of an Observer, so
    every scrape sees current values — or a callable returning one.
    """

    def __init__(self, source, host="127.0.0.1", port=0):
        self.source = source
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] not in ("/", "/metrics"):
                    self.send_error(404)
                    return
                source = outer.source
                if callable(source) and not hasattr(source, "snapshot"):
                    source = source()
                body = render_prometheus(source).encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # quiet by default
                pass

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = None
        self._serving = False

    @property
    def address(self):
        """(host, port) actually bound (port 0 resolves ephemeral)."""
        return self._server.server_address[:2]

    def start(self):
        """Serve from a daemon thread; returns self."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-observe-metrics",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self):
        """Serve on the calling thread (the CLI's blocking mode)."""
        self._serving = True
        self._server.serve_forever()

    def handle_once(self):
        """Serve exactly one request, synchronously (the CI smoke mode).

        The threading server hands each request to a daemon thread and
        returns at once — a one-shot caller would then tear the server
        down (and exit the process) mid-response.  Route this single
        request through the base server's inline handler instead, so
        the response is fully written before this method returns.
        """
        server = self._server
        original = server.process_request
        server.process_request = (
            lambda request, client_address:
                socketserver.TCPServer.process_request(
                    server, request, client_address
                )
        )
        try:
            server.handle_request()
        finally:
            server.process_request = original

    def stop(self):
        # shutdown() handshakes with a running serve_forever loop and
        # blocks forever if one never started — the one-shot path only
        # ever called handle_once(), so skip the handshake there.
        if self._serving:
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

"""The wire-level flight recorder: last-N frames per channel, replayable.

Every byte an ORB sends or receives already flows through a typed
:class:`~repro.wire.machine.WireMachine` event stream (the sans-I/O
seam), so recording the wire is one hook per boundary:

- **inbound** — machines carry a class-level ``tap = None``; with a
  recorder attached, every parsed event is recorded together with the
  exact consumed frame bytes (`direction="in"`), whichever driver fed
  the machine (blocking pump, ``feed_line``/``feed_message`` fast
  paths, or the asyncio front-end's chunk loop).  The blocking text
  protocols never pay the machine detour: their ``recv_*`` fast paths
  tap the recorder directly with the raw line and the parsed result
  (:meth:`FlightRecorder.record_request` and friends), which writes
  the identical record for a fraction of the cost;
- **outbound** — transport channels carry a class-level
  ``flight = None`` (the same idiom as the byte ``meter``); every
  successful ``send`` records the raw frame (`direction="out"`).

Records go into a per-channel bounded ring (``deque(maxlen=...)`` —
appends are atomic under the GIL, so the record path takes no lock).
On channel death the ring is persisted as a *postmortem bundle*: a JSON
document holding the last-N events + frames plus the active span and
metric snapshot of the owning :class:`~repro.observe.Observer`.  A
bundle is self-contained: :func:`replay_bundle` feeds the captured
bytes back through fresh wire machines and re-decodes the exchange
deterministically — the decoder is the same pure state machine that
parsed the live traffic.

Wiring is ``Observer(flight=FlightControl(spool_dir=...))``; with no
flight control attached the runtime pays only ``is None`` tests.
"""

import base64
import itertools
import json
import os
import threading
import time
from collections import deque
from time import monotonic as _monotonic

#: Direction tags on a record: bytes this process received vs sent.
DIR_IN = "in"
DIR_OUT = "out"

#: Bundle schema version (bumped on incompatible layout changes).
BUNDLE_VERSION = 1

#: CommunicationError kinds that mean an orderly close, not a death
#: worth a postmortem: a local ``Orb.stop``/cache teardown
#: ("channel-closed") or the peer's announced drain ("draining" — the
#: BYE / GIOP CloseConnection handoff of a server winding down).
_CLEAN_KINDS = frozenset({"channel-closed", "draining"})

#: Lazy summary renderers for the direct-parse taps: the hot path
#: stores the one or two scalars a summary interpolates (a tuple), and
#: materialization renders the string here — in the exact repr format
#: of the corresponding :mod:`repro.wire.events` class, so a bundle
#: replayed through a fresh machine still compares equal.  The
#: replay-determinism tests pin this coupling.
_RENDERERS = {
    "RequestReceived":
        lambda s: f"RequestReceived({s[0]!r}, id={s[1]})",
    "ReplyReceived":
        lambda s: f"ReplyReceived({s[0]!r}, id={s[1]})",
    "WireViolation":
        lambda s: f"WireViolation({s[0]!r})",
    "CloseReceived":
        lambda s: "CloseReceived()",
}


class FlightRecord:
    """One tapped frame: direction, timestamp, event summary, raw bytes.

    Inbound records carry the live event's class name (``kind``) and
    its ``repr`` (``summary``), captured at parse time — the event
    *object* is deliberately not retained: holding per-call object
    graphs (a Call, its unmarshaller, its tokens) alive in the ring
    turns garbage the refcounter would free instantly into cyclic-GC
    survivors that every collection re-traces, which costs double-digit
    throughput.  A ring of scalars-and-strings is invisible to the
    cyclic collector.  The direct-parse taps go one step further and
    store only the summary's interpolated scalars (a tuple), rendered
    on demand by :data:`_RENDERERS`; machine taps store the ready repr.
    Outbound records decode at replay time (``kind="Data"``).
    ``frame`` holds at most the recorder's ``max_frame_bytes``;
    ``frame_len`` is the original length, so truncation is always
    detectable.
    """

    __slots__ = ("seq", "ts", "direction", "role", "kind", "_summary",
                 "frame", "frame_len")

    def __init__(self, seq, ts, direction, role, kind, summary, frame,
                 frame_len):
        self.seq = seq
        self.ts = ts
        self.direction = direction
        self.role = role
        self.kind = kind
        self._summary = summary
        self.frame = frame
        self.frame_len = frame_len

    @property
    def truncated(self):
        return self.frame_len > len(self.frame)

    @property
    def summary(self):
        stored = self._summary
        if stored is None:
            return f"{self.frame_len} bytes"
        if type(stored) is str:
            return stored
        return _RENDERERS[self.kind](stored)

    def to_dict(self):
        record = {
            "seq": self.seq,
            "ts": self.ts,
            "dir": self.direction,
            "kind": self.kind,
            "summary": self.summary,
            "frame_b64": base64.b64encode(bytes(self.frame)).decode("ascii"),
            "frame_len": self.frame_len,
        }
        if self.role is not None:
            record["role"] = self.role
        if self.truncated:
            record["truncated"] = True
        return record

    def __repr__(self):
        return (f"<FlightRecord #{self.seq} {self.direction} "
                f"{self.kind} {self.frame_len}B>")


class FlightRecorder:
    """Per-channel bounded ring of flight records.

    The record path is lock-free: ``deque(maxlen=N)`` appends and
    ``itertools.count`` draws are atomic under the GIL, and entries are
    never mutated once appended.  The ring holds plain tuples in
    :class:`FlightRecord` field order — building a slotted instance per
    frame costs real throughput on the hot path, so materialization is
    deferred to :meth:`snapshot`, which takes a point-in-time list
    copy; racing appends merely land before or after the copy.

    Frame handover is zero-copy: callers pass a fresh bytes-like object
    they will never touch again (a machine's buffer slice, an encoder's
    output), and the ring takes ownership as-is.
    """

    __slots__ = ("control", "protocol", "side", "peer", "_ring", "_seq",
                 "_append", "_limit", "_disarmed", "_spooled")

    def __init__(self, control, protocol, side, peer="?"):
        self.control = control
        self.protocol = protocol
        #: "client" or "server" — which end of the channel this is.
        self.side = side
        self.peer = peer
        # Bounded ring of record tuples; appends are GIL-atomic, entries
        # immutable once in, so readers never see a torn record.
        self._ring = deque(maxlen=control.capacity)  # guarded-by: <serial:gil-atomic-deque>
        # Monotone sequence numbers; next(count) is GIL-atomic.
        self._seq = itertools.count().__next__  # guarded-by: <serial:gil-atomic-counter>
        # Bound method / config hoists: the record path runs per frame.
        self._append = self._ring.append
        self._limit = control.max_frame_bytes
        # Set once by an orderly close to veto a postmortem for the
        # recv error the close itself provokes; never cleared.
        self._disarmed = False  # race-ok: one-way bool, worst case is one benign extra bundle
        # Set once by the first postmortem; later triggers for the same
        # channel death (demux loop, then cache discard) are no-ops.
        self._spooled = False  # guarded-by: control._lock

    # -- record path (hot) -------------------------------------------------

    def record_in(self, frame, event, role):
        """Machine tap upcall: one parsed event + its consumed bytes."""
        length = len(frame)
        if length > self._limit:
            frame = frame[:self._limit]
        self._append((
            self._seq(), _monotonic(), DIR_IN, role,
            type(event).__name__, repr(event), frame, length,
        ))

    # The direct-parse taps below serve the blocking text protocols'
    # fast path: one ``recv_line`` + pure line parse, no machine, no
    # event object.  Each stores the scalars its summary interpolates
    # (rendered lazily by :data:`_RENDERERS` in the exact format of the
    # corresponding ``repro.wire.events`` repr), so replaying the frame
    # through a fresh machine still compares equal
    # (``ReplayedRecord.matches_live``).  *raw* is the channel's fresh
    # line with the terminator already stripped; it is restored here so
    # the recorded frame is replayable byte-for-byte.

    def record_request(self, raw, call):
        """Direct-parse tap: one request line decoded without a machine."""
        if type(raw) is bytearray:
            raw += b"\n"
        else:
            raw = raw + b"\n"
        length = len(raw)
        if length > self._limit:
            raw = raw[:self._limit]
        self._append((
            self._seq(), _monotonic(), DIR_IN, "server", "RequestReceived",
            (call.operation, call.request_id), raw, length,
        ))

    def record_reply(self, raw, reply):
        """Direct-parse tap: one reply line decoded without a machine."""
        if type(raw) is bytearray:
            raw += b"\n"
        else:
            raw = raw + b"\n"
        length = len(raw)
        if length > self._limit:
            raw = raw[:self._limit]
        self._append((
            self._seq(), _monotonic(), DIR_IN, "client", "ReplyReceived",
            (reply.status, reply.request_id), raw, length,
        ))

    def record_close(self, raw, role):
        """Direct-parse tap: an orderly-close line (text2 ``BYE``)."""
        if type(raw) is bytearray:
            raw += b"\n"
        else:
            raw = raw + b"\n"
        length = len(raw)
        if length > self._limit:
            raw = raw[:self._limit]
        self._append((
            self._seq(), _monotonic(), DIR_IN, role, "CloseReceived",
            (), raw, length,
        ))

    def record_violation(self, raw, message, role):
        """Direct-parse tap: a line the parser rejected (still recorded)."""
        if type(raw) is bytearray:
            raw += b"\n"
        else:
            raw = raw + b"\n"
        length = len(raw)
        if length > self._limit:
            raw = raw[:self._limit]
        self._append((
            self._seq(), _monotonic(), DIR_IN, role, "WireViolation",
            (message,), raw, length,
        ))

    def record_out(self, data):
        """Channel send hook: one outbound frame (raw bytes)."""
        length = len(data)
        if length > self._limit:
            data = data[:self._limit]
        self._append(
            (self._seq(), _monotonic(), DIR_OUT, None, "Data", None,
             data, length)
        )

    # -- lifecycle ---------------------------------------------------------

    def snapshot(self):
        """Point-in-time :class:`FlightRecord` list (oldest first)."""
        return [FlightRecord(*entry) for entry in list(self._ring)]

    def disarm(self):
        """Orderly close: the recv error it provokes is not a death."""
        self._disarmed = True

    def postmortem(self, reason):
        """Persist the ring as a bundle for a channel death.

        *reason* is the triggering exception (or a plain string such as
        ``"breaker-open"``).  Orderly local closes (``channel-closed``,
        or a recorder disarmed by ``ObjectCommunicator.close``) and
        repeat triggers for an already-spooled channel are no-ops.
        Returns the bundle path, or None when nothing was written.
        """
        kind = getattr(reason, "kind", None)
        if kind is None:
            kind = str(reason) if not isinstance(reason, Exception) else "error"
        if self._disarmed or kind in _CLEAN_KINDS:
            return None
        return self.control._spool(self, kind, str(reason))


class FlightControl:
    """Configuration + spool for every recorder of one Observer.

    ``capacity`` bounds each channel ring, ``max_frame_bytes`` bounds
    the bytes kept per frame, ``spool_dir`` is where postmortem bundles
    land (None records the death in ``recent_errors`` without writing a
    bundle), ``keep_spans`` caps the span snapshot embedded per bundle.
    """

    def __init__(self, spool_dir=None, capacity=64, max_frame_bytes=65536,
                 keep_spans=32):
        self.spool_dir = spool_dir
        self.capacity = capacity
        self.max_frame_bytes = max_frame_bytes
        self.keep_spans = keep_spans
        #: Back-reference set by ``Observer(flight=...)``; bundles embed
        #: this observer's metric + span snapshot when present.
        self.observer = None
        self._lock = threading.Lock()
        self._bundle_seq = 0  # guarded-by: self._lock
        self.bundles_written = 0  # guarded-by: self._lock
        # Rolling record of channel deaths (the ORBMonitor's
        # ``recent_errors`` source); appends are GIL-atomic.
        self.recent_errors = deque(maxlen=64)  # guarded-by: <serial:gil-atomic-deque>

    # -- attachment --------------------------------------------------------

    def new_recorder(self, protocol, side, peer="?"):
        """A fresh recorder (front-ends with no Channel, e.g. aio)."""
        return FlightRecorder(self, protocol, side, peer)

    def attach(self, channel, protocol, side):
        """Attach a recorder to *channel*; returns it (idempotent).

        The recorder lands on the **innermost** channel of a delegating
        wrapper chain (ChaosChannel), so the real transport's ``send``
        hook fires while wrapper-injected garbage still reaches the
        machine taps — both ends of a chaos fault are on the record.
        """
        inner = channel
        while True:
            nested = getattr(inner, "_inner", None)
            if nested is None:
                break
            inner = nested
        recorder = inner.__dict__.get("flight")
        if recorder is None:
            recorder = FlightRecorder(
                self, protocol, side, peer=getattr(inner, "peer", "?")
            )
            inner.flight = recorder
        # Machines stashed on the channel before attachment (or on the
        # outermost wrapper) pick the tap up now.
        for attribute in ("_wire_client", "_wire_server"):
            machine = getattr(channel, attribute, None)
            if machine is not None:
                machine.tap = recorder
        return recorder

    # -- spooling ----------------------------------------------------------

    def _spool(self, recorder, kind, message):
        # The whole spool — claim, build, write, log — happens under one
        # lock.  A channel death is reported from several threads at
        # once (the failed sender, the demux reader, the cache discard);
        # the first one in writes the bundle and the rest must BLOCK
        # until it is on disk, not just see the claim flag and return.
        # Otherwise the sender can surface its CommunicationError to the
        # caller while the demux thread is still descheduled mid-write,
        # and whoever handles the error finds no bundle yet.
        with self._lock:
            if recorder._spooled:
                return None
            self._bundle_seq += 1
            sequence = self._bundle_seq
            bundle = self.build_bundle(recorder, kind, message)
            path = None
            if self.spool_dir is not None:
                os.makedirs(self.spool_dir, exist_ok=True)
                name = (
                    f"postmortem-{os.getpid()}-{sequence:04d}-{kind}.json"
                )
                path = os.path.join(self.spool_dir, name)
                # Write-then-rename so a reader never sees a torn bundle.
                scratch = path + ".tmp"
                with open(scratch, "w", encoding="utf-8") as handle:
                    json.dump(bundle, handle, separators=(",", ":"),
                              sort_keys=True)
                os.replace(scratch, path)
                self.bundles_written += 1
            # Claimed only now: a raise while building or writing leaves
            # the death re-triable by the next reporter.
            recorder._spooled = True
            self.recent_errors.append({
                "ts": time.time(),
                "kind": kind,
                "message": message,
                "peer": recorder.peer,
                "protocol": recorder.protocol,
                "side": recorder.side,
                "bundle": path,
            })
            return path

    def build_bundle(self, recorder, kind, message):
        """The bundle document for *recorder* (plain JSON-able data)."""
        bundle = {
            "version": BUNDLE_VERSION,
            "captured_at": time.time(),
            "channel": {
                "protocol": recorder.protocol,
                "side": recorder.side,
                "peer": recorder.peer,
            },
            "reason": {"kind": kind, "message": message},
            "events": [record.to_dict() for record in recorder.snapshot()],
        }
        observer = self.observer
        if observer is not None:
            spans = observer.exporter.snapshot()
            bundle["observer"] = {
                "metrics": observer.metrics.snapshot(),
                "spans": spans[-self.keep_spans:] if self.keep_spans else [],
            }
        return bundle

    def snapshot(self):
        """Plain-data state for ``Observer.snapshot``/the ORBMonitor."""
        with self._lock:
            bundles = self.bundles_written
        return {
            "spool_dir": self.spool_dir,
            "capacity": self.capacity,
            "max_frame_bytes": self.max_frame_bytes,
            "bundles_written": bundles,
            "recent_errors": list(self.recent_errors),
        }


# ---------------------------------------------------------------------------
# Replay: bundle bytes -> fresh machines -> re-decoded events
# ---------------------------------------------------------------------------


def _machine_for(protocol_name, role):
    """A fresh wire machine for replay (imported lazily: replay is a
    diagnostics path, and ``repro.heidirmi`` imports this package)."""
    from repro.heidirmi.protocol import get_protocol

    return get_protocol(protocol_name).machine_class(role)


class ReplayedRecord:
    """One bundle record with its replay outcome attached."""

    __slots__ = ("record", "events", "skipped")

    def __init__(self, record, events, skipped=False):
        self.record = record
        #: Events the fresh machine produced from this record's bytes
        #: (usually one; a coalesced outbound burst can hold several).
        self.events = events
        #: True when the frame was truncated at capture and not fed.
        self.skipped = skipped

    @property
    def matches_live(self):
        """Replay reproduced the live decoding, byte for byte?

        Inbound records stored the live event's ``repr``; an outbound
        record has no live decoding to compare (``None``).
        """
        if self.skipped:
            return False
        if self.record.get("dir") != DIR_IN:
            return None
        return (len(self.events) == 1
                and repr(self.events[0]) == self.record.get("summary"))


def load_bundle(path):
    """Read one postmortem bundle from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def replay_bundle(bundle):
    """Feed a bundle's captured bytes through fresh wire machines.

    Returns a list of :class:`ReplayedRecord` in capture order.  Each
    direction replays through its own machine: inbound bytes through
    the role that parsed them live (stored per record), outbound bytes
    through the opposite role — an "out" frame from a client channel is
    a request, which a server-role machine decodes.  Determinism falls
    out of the machines being pure: same bytes, same events.
    """
    protocol = bundle["channel"]["protocol"]
    side = bundle["channel"]["side"]
    out_role = "server" if side == "client" else "client"
    machines = {}

    def machine(role):
        engine = machines.get(role)
        if engine is None:
            engine = machines[role] = _machine_for(protocol, role)
        return engine

    replayed = []
    for record in bundle.get("events", ()):
        frame = base64.b64decode(record.get("frame_b64", ""))
        if record.get("truncated") or len(frame) < record.get(
            "frame_len", len(frame)
        ):
            replayed.append(ReplayedRecord(record, [], skipped=True))
            continue
        role = record.get("role")
        if role is None:
            role = out_role if record.get("dir") == DIR_OUT else (
                "client" if side == "client" else "server"
            )
        events = machine(role).feed_bytes(frame)
        replayed.append(ReplayedRecord(record, events))
    return replayed


def render_replay(bundle, replayed=None):
    """Pretty-print a bundle and its replay (the ``replay`` CLI body)."""
    if replayed is None:
        replayed = replay_bundle(bundle)
    channel = bundle.get("channel", {})
    reason = bundle.get("reason", {})
    lines = [
        f"postmortem bundle v{bundle.get('version', '?')} — "
        f"{channel.get('protocol', '?')} {channel.get('side', '?')} channel "
        f"to {channel.get('peer', '?')}",
        f"reason: [{reason.get('kind', '?')}] {reason.get('message', '')}",
        f"{len(replayed)} recorded frame(s):",
    ]
    origin = None
    mismatches = 0
    for item in replayed:
        record = item.record
        ts = record.get("ts")
        if origin is None and ts is not None:
            origin = ts
        offset = f"+{(ts - origin) * 1000:9.3f}ms" if ts is not None else " " * 12
        arrow = "<-" if record.get("dir") == DIR_IN else "->"
        size = record.get("frame_len", 0)
        if item.skipped:
            decoded = "(frame truncated at capture; not replayed)"
        elif not item.events:
            decoded = "(no complete event in frame)"
        else:
            decoded = "; ".join(repr(event) for event in item.events)
        note = ""
        if item.matches_live is False and not item.skipped:
            mismatches += 1
            note = f"  !! live capture said: {record.get('summary')}"
        lines.append(
            f"  #{record.get('seq', '?'):>4} {offset} {arrow} "
            f"{size:6d}B  {decoded}{note}"
        )
    if mismatches:
        lines.append(f"{mismatches} record(s) decoded differently from the "
                     "live capture")
    else:
        lines.append("replay matches the live capture")
    observer = bundle.get("observer")
    if observer:
        metric_count = sum(
            len(entries) for entries in observer.get("metrics", {}).values()
        )
        lines.append(
            f"snapshot: {metric_count} metric instrument(s), "
            f"{len(observer.get('spans', []))} retained span(s)"
        )
    return "\n".join(lines) + "\n"

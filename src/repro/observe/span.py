"""The span model: one timed slice of an RPC, with named stages.

A span is created by an :class:`~repro.observe.Observer`, rides the
``Call`` object through the layers of the RPC path (each layer stamps a
*stage mark* when its part of the work completes), and is finished and
exported exactly once.

Stage marks are cumulative timestamps; at finish they become per-stage
durations whose sum equals the span's wall-clock duration *exactly* (a
residual ``tail`` stage absorbs any time after the last mark), so a
waterfall over the stages always accounts for the whole call — nothing
hides between stages.
"""

import time

from repro.observe.context import TraceContext, new_span_id, new_trace_id


class Span:
    """One timed operation; create through ``Observer.start_span``."""

    __slots__ = (
        "name", "operation", "context", "parent_id",
        "start_time", "_t0", "_marks", "attrs",
        "duration_us", "stages", "error", "_observer",
    )

    def __init__(self, name, operation, parent=None, observer=None, attrs=None):
        self.name = name
        self.operation = operation
        if parent is not None:
            trace_id = parent.trace_id
            self.parent_id = parent.span_id
        else:
            trace_id = new_trace_id()
            self.parent_id = None
        self.context = TraceContext(trace_id, new_span_id())
        self.start_time = time.time()
        self._t0 = time.perf_counter()
        self._marks = []
        self.attrs = dict(attrs) if attrs else {}
        self.duration_us = None
        self.stages = None
        self.error = None
        self._observer = observer

    @property
    def finished(self):
        return self.duration_us is not None

    @property
    def trace_id(self):
        return self.context.trace_id

    @property
    def span_id(self):
        return self.context.span_id

    def stage(self, name):
        """Mark the end of stage *name* (time since the previous mark)."""
        self._marks.append((name, time.perf_counter()))

    def set(self, key, value):
        """Attach an attribute (string-keyed tag) to the span."""
        self.attrs[key] = value

    def fail(self, exc):
        """Tag the span with an error before (or instead of) results.

        ``CommunicationError`` kinds become the ``error.kind`` tag so a
        reader can tell reader-death from connect-refused at a glance.
        """
        self.error = f"{type(exc).__name__}: {exc}"
        kind = getattr(exc, "kind", None)
        if kind:
            self.attrs["error.kind"] = kind

    def finish(self, error=None):
        """Close the span (idempotent) and hand it to the observer."""
        if self.duration_us is not None:
            return
        if error is not None:
            self.fail(error)
        end = time.perf_counter()
        self.duration_us = max(0, int((end - self._t0) * 1_000_000))
        stages = []
        consumed = 0
        for name, mark in self._marks:
            cumulative = min(self.duration_us,
                            max(0, int((mark - self._t0) * 1_000_000)))
            stages.append((name, cumulative - consumed))
            consumed = cumulative
        tail = self.duration_us - consumed
        if stages and tail > 0:
            stages.append(("tail", tail))
        self.stages = stages
        if self._observer is not None:
            self._observer._finished(self)

    def stage_durations(self):
        """{stage name: µs} for a finished span."""
        return dict(self.stages or ())

    def to_dict(self):
        """The JSON-lines export form."""
        record = {
            "name": self.name,
            "operation": self.operation,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "start": self.start_time,
            "duration_us": self.duration_us,
            "stages": [[name, us] for name, us in (self.stages or ())],
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.error is not None:
            record["error"] = self.error
        return record

    def __repr__(self):
        state = f"{self.duration_us}us" if self.finished else "open"
        return (f"<Span {self.name} {self.operation!r} "
                f"{self.context.token()} {state}>")

"""Lower an IDL declaration AST to an Enhanced Syntax Tree.

The builder reproduces the paper's Fig. 7/Fig. 8 structure: one node per
IDL construct, children grouped by kind, and the property vocabulary the
paper's templates consume (``type``, ``typeName``, ``getType``,
``defaultParam``, ``IsVariable``, ``Parent``, ``members``...).

Every node also carries the IDL spelling of its type (``paramType``,
``returnType``, ``attributeType``, ...) which is what the ``-map``
functions of a mapping pack transform into target-language type names.
"""

from repro.idl import ast as idl_ast
from repro.idl import types as idl_types
from repro.est.node import Ast


def build_est(spec, include_forwards=False):
    """Build the EST for a parsed :class:`~repro.idl.ast.Specification`."""
    root = Ast("Root", "Root")
    root.add_prop("file", getattr(spec, "filename", "<string>"))
    _build_scope(spec.declarations, root, include_forwards)
    return root


def _build_scope(declarations, parent, include_forwards):
    for decl in declarations:
        node = _build_declaration(decl, parent, include_forwards)
        if node is not None and decl.name and "scopedName" not in node.props:
            node.add_prop("scopedName", decl.scoped_name())


def _build_declaration(decl, parent, include_forwards):
    if isinstance(decl, idl_ast.Include):
        # Included declarations are inlined into the including scope, the
        # way the OmniBroker front-end presents a preprocessed file.
        if decl.spec is not None:
            _build_scope(decl.spec.declarations, parent, include_forwards)
        return None
    if isinstance(decl, idl_ast.Module):
        return _build_module(decl, parent, include_forwards)
    if isinstance(decl, idl_ast.InterfaceDecl):
        return _build_interface(decl, parent, include_forwards)
    if isinstance(decl, idl_ast.Forward):
        if include_forwards and decl.definition is None:
            node = Ast(decl.name, "Forward", parent)
            node.add_prop("repoId", decl.repository_id)
            return node
        return None
    if isinstance(decl, idl_ast.EnumDecl):
        return _build_enum(decl, parent)
    if isinstance(decl, idl_ast.TypedefDecl):
        return _build_alias(decl, parent)
    if isinstance(decl, idl_ast.StructDecl):
        return _build_struct(decl, parent)
    if isinstance(decl, idl_ast.UnionDecl):
        return _build_union(decl, parent)
    if isinstance(decl, idl_ast.ExceptionDecl):
        return _build_exception(decl, parent)
    if isinstance(decl, idl_ast.ConstDecl):
        return _build_const(decl, parent)
    if isinstance(decl, idl_ast.Attribute):
        return _build_attribute(decl, parent)
    if isinstance(decl, idl_ast.Operation):
        return _build_operation(decl, parent)
    if isinstance(decl, idl_ast.NativeDecl):
        node = Ast(decl.name, "Native", parent)
        node.add_prop("repoId", decl.repository_id)
        return node
    raise TypeError(f"cannot lower {decl!r} to an EST node")


def _build_module(decl, parent, include_forwards):
    node = Ast(decl.name, "Module", parent)
    node.add_prop("repoId", decl.repository_id)
    if decl.prefix:
        node.add_prop("prefix", decl.prefix)
    _build_scope(decl.declarations, node, include_forwards)
    return node


def _build_interface(decl, parent, include_forwards):
    node = Ast(decl.name, "Interface", parent)
    node.add_prop("repoId", decl.repository_id)
    node.add_prop("scopedName", decl.scoped_name())
    if decl.is_abstract:
        node.add_prop("abstract", "abstract")
    if decl.bases:
        # Fig. 8 records the first parent under "Parent" with a flattened
        # name; the full list is available as Inherited children.
        first = decl.resolved_bases[0] if decl.resolved_bases else None
        flattened = (
            first.scoped_name("_") if first is not None else decl.bases[0].replace("::", "_")
        )
        node.add_prop("Parent", flattened)
    for index, base_name in enumerate(decl.bases):
        resolved = (
            decl.resolved_bases[index] if index < len(decl.resolved_bases) else None
        )
        scoped = resolved.scoped_name() if resolved is not None else base_name
        inherited = Ast(scoped, "Inherited", node)
        inherited.add_prop("typeName", scoped.replace("::", "_"))
        if resolved is not None:
            inherited.add_prop("repoId", resolved.repository_id)
    _build_scope(decl.body, node, include_forwards)
    _expand_secondary_bases(decl, node)
    return node


def _expand_secondary_bases(decl, node):
    """Flatten multiple inheritance for single-inheritance targets.

    The paper's Java mapping "expanded multiple super-classes in order to
    get around the unavailability of multiple inheritance in Java": the
    generated class extends the *first* base and re-declares everything
    contributed by the remaining bases.  Those re-declarations appear in
    the EST as ExpandedOp/ExpandedAttr children, so a template for a
    single-inheritance language can emit them with a plain @foreach.
    """
    if len(decl.resolved_bases) <= 1:
        return
    primary = decl.resolved_bases[0]
    primary_chain = {id(primary)}
    primary_chain.update(id(base) for base in primary.all_bases())
    for extra_base in decl.resolved_bases[1:]:
        chain = extra_base.all_bases() + [extra_base]
        for ancestor in chain:
            if id(ancestor) in primary_chain:
                continue
            primary_chain.add(id(ancestor))
            for operation in ancestor.operations():
                _build_operation(operation, node, kind="ExpandedOp")
            for attribute in ancestor.attributes():
                expanded = Ast(attribute.name, "ExpandedAttr", node)
                expanded.add_prop("repoId", attribute.repository_id)
                _add_type_props(expanded, attribute.idl_type, role="attributeType")
                expanded.add_prop(
                    "attributeQualifier", "readonly" if attribute.readonly else ""
                )


def _build_operation(decl, parent, kind="Operation"):
    node = Ast(decl.name, kind, parent)
    node.add_prop("repoId", decl.repository_id)
    _add_type_props(node, decl.return_type, role="returnType")
    if decl.is_oneway:
        node.add_prop("oneway", "oneway")
    if decl.raises:
        node.add_prop("raises", list(decl.raises))
    if decl.context:
        node.add_prop("context", list(decl.context))
    for param in decl.parameters:
        _build_parameter(param, node)
    return node


def _build_parameter(param, parent):
    node = Ast(param.name, "Param", parent)
    _add_type_props(node, param.idl_type, role="paramType")
    node.add_prop("getType", param.direction)
    node.add_prop("direction", param.direction)
    if param.default is not None:
        node.add_prop("defaultParam", str(param.default))
        evaluated = getattr(param, "default_evaluated", None)
        if evaluated is not None:
            node.add_prop("defaultValue", evaluated)
    else:
        node.add_prop("defaultParam", "")
    return node


def _build_attribute(decl, parent):
    node = Ast(decl.name, "Attribute", parent)
    node.add_prop("repoId", decl.repository_id)
    _add_type_props(node, decl.idl_type, role="attributeType")
    node.add_prop("attributeQualifier", "readonly" if decl.readonly else "")
    return node


def _build_enum(decl, parent):
    node = Ast(decl.name, "Enum", parent)
    node.add_prop("repoId", decl.repository_id)
    node.add_prop("members", list(decl.enumerators))
    return node


def _build_alias(decl, parent):
    node = Ast(decl.name, "Alias", parent)
    node.add_prop("repoId", decl.repository_id)
    aliased = decl.aliased_type
    node.add_prop("type", _category(aliased))
    node.add_prop("aliasedType", aliased.idl_name())
    if isinstance(aliased, idl_types.SequenceType):
        # Fig. 8 nests a Sequence child describing the element type.
        seq = Ast("", "Sequence", node)
        _add_type_props(seq, aliased.element, role="elementType")
        if aliased.bound:
            seq.add_prop("bound", aliased.bound)
    elif isinstance(aliased, idl_types.ArrayType):
        arr = Ast("", "Array", node)
        _add_type_props(arr, aliased.element, role="elementType")
        arr.add_prop("dimensions", list(aliased.dimensions))
    return node


def _build_struct(decl, parent):
    node = Ast(decl.name, "Struct", parent)
    node.add_prop("repoId", decl.repository_id)
    node.add_prop("IsVariable", decl.is_variable_type())
    for member in decl.members:
        child = Ast(member.name, "Member", node)
        _add_type_props(child, member.idl_type, role="memberType")
    return node


def _build_union(decl, parent):
    node = Ast(decl.name, "Union", parent)
    node.add_prop("repoId", decl.repository_id)
    node.add_prop("IsVariable", decl.is_variable_type())
    _add_type_props(node, decl.discriminator, role="switchType")
    for case in decl.cases:
        child = Ast(case.name, "Case", node)
        _add_type_props(child, case.idl_type, role="caseType")
        child.add_prop(
            "labels",
            ["default" if label is None else str(label) for label in case.labels],
        )
        child.add_prop("labelValues", _evaluated_labels(case.labels))
    return node


def _evaluated_labels(labels):
    """Case labels as evaluated Python values ('default' for default)."""
    from repro.idl.semantics import evaluate_const
    from repro.idl.errors import IdlSemanticError

    evaluated = []
    for label in labels:
        if label is None:
            evaluated.append("default")
            continue
        try:
            evaluated.append(evaluate_const(label))
        except IdlSemanticError:
            evaluated.append(str(label))
    return evaluated


def _build_exception(decl, parent):
    node = Ast(decl.name, "Exception", parent)
    node.add_prop("repoId", decl.repository_id)
    node.add_prop("IsVariable", decl.is_variable_type())
    for member in decl.members:
        child = Ast(member.name, "Member", node)
        _add_type_props(child, member.idl_type, role="memberType")
    return node


def _build_const(decl, parent):
    node = Ast(decl.name, "Const", parent)
    node.add_prop("repoId", decl.repository_id)
    _add_type_props(node, decl.idl_type, role="constType")
    node.add_prop("value", str(decl.value))
    if decl.evaluated is not None:
        node.add_prop("evaluated", decl.evaluated)
    return node


# ---------------------------------------------------------------------------
# Type property derivation
# ---------------------------------------------------------------------------

_PRIMITIVE_CATEGORIES = {
    idl_types.PrimitiveKind.BOOLEAN: "boolean",
    idl_types.PrimitiveKind.CHAR: "char",
    idl_types.PrimitiveKind.WCHAR: "wchar",
    idl_types.PrimitiveKind.OCTET: "octet",
    idl_types.PrimitiveKind.SHORT: "short",
    idl_types.PrimitiveKind.USHORT: "ushort",
    idl_types.PrimitiveKind.LONG: "long",
    idl_types.PrimitiveKind.ULONG: "ulong",
    idl_types.PrimitiveKind.LONGLONG: "longlong",
    idl_types.PrimitiveKind.ULONGLONG: "ulonglong",
    idl_types.PrimitiveKind.FLOAT: "float",
    idl_types.PrimitiveKind.DOUBLE: "double",
    idl_types.PrimitiveKind.LONGDOUBLE: "longdouble",
}


def _category(idl_type):
    """The EST ``type`` category string for an IDL type (cf. Fig. 8)."""
    if isinstance(idl_type, idl_types.VoidType):
        return "void"
    if isinstance(idl_type, idl_types.PrimitiveType):
        return _PRIMITIVE_CATEGORIES[idl_type.kind]
    if isinstance(idl_type, idl_types.StringType):
        return "wstring" if idl_type.wide else "string"
    if isinstance(idl_type, idl_types.SequenceType):
        return "sequence"
    if isinstance(idl_type, idl_types.ArrayType):
        return "array"
    if isinstance(idl_type, idl_types.AnyType):
        return "any"
    if isinstance(idl_type, idl_types.ObjectType):
        return "objref"
    if isinstance(idl_type, idl_types.FixedType):
        return "fixed"
    if isinstance(idl_type, idl_types.NamedType):
        decl = idl_type.declaration
        if isinstance(decl, (idl_ast.InterfaceDecl, idl_ast.Forward)):
            return "objref"
        if isinstance(decl, idl_ast.EnumDecl):
            return "enum"
        if isinstance(decl, idl_ast.StructDecl):
            return "struct"
        if isinstance(decl, idl_ast.UnionDecl):
            return "union"
        if isinstance(decl, idl_ast.TypedefDecl):
            return "alias"
        if isinstance(decl, idl_ast.NativeDecl):
            return "native"
        return "named"
    raise TypeError(f"no EST category for {idl_type!r}")


def _flattened_name(idl_type):
    """The underscore-joined scoped name Fig. 8 stores under ``typeName``."""
    if isinstance(idl_type, idl_types.NamedType):
        decl = idl_type.declaration
        if decl is not None:
            return decl.scoped_name("_")
        return idl_type.scoped_name.replace("::", "_")
    if isinstance(idl_type, idl_types.ObjectType):
        return "Object"
    return idl_type.idl_name()


def _scoped_spelling(idl_type):
    """The ``::``-joined spelling used as map-function input."""
    if isinstance(idl_type, idl_types.NamedType):
        decl = idl_type.declaration
        if decl is not None:
            return decl.scoped_name()
        return idl_type.scoped_name
    return idl_type.idl_name()


def _add_type_props(node, idl_type, role):
    """Attach the Fig. 8 type vocabulary plus the role-named spelling."""
    node.add_prop("type", _category(idl_type))
    node.add_prop(role, _scoped_spelling(idl_type))
    if isinstance(idl_type, (idl_types.NamedType, idl_types.ObjectType)):
        node.add_prop("typeName", _flattened_name(idl_type))
    node.add_prop("IsVariable", bool(idl_type.is_variable))
    if isinstance(idl_type, idl_types.StringType) and idl_type.bound:
        node.add_prop("bound", idl_type.bound)
    if isinstance(idl_type, idl_types.SequenceType):
        element = Ast("", "ElementType", node)
        _add_type_props(element, idl_type.element, role="elementType")
        if idl_type.bound:
            node.add_prop("bound", idl_type.bound)
    if _category(idl_type) == "alias":
        _add_alias_resolution(node, idl_type)
    return node


def _add_alias_resolution(node, idl_type):
    """Expose what a typedef ultimately names, for marshalling templates.

    A parameter of type ``Heidi::SSequence`` has category ``alias``; its
    generated marshalling code needs the *underlying* type.  The chain
    of typedefs is followed and recorded as ``aliasedCategory`` (plus an
    ElementType child when the underlying type is a sequence).
    """
    underlying = idl_type
    seen = set()
    while isinstance(underlying, idl_types.NamedType):
        decl = underlying.declaration
        if not isinstance(decl, idl_ast.TypedefDecl) or id(decl) in seen:
            break
        seen.add(id(decl))
        underlying = decl.aliased_type
    if underlying is idl_type:
        return
    node.add_prop("aliasedCategory", _category(underlying))
    node.add_prop("aliasedTypeName", _flattened_name(underlying))
    if isinstance(underlying, idl_types.SequenceType):
        element = Ast("", "ElementType", node)
        _add_type_props(element, underlying.element, role="elementType")
        if underlying.bound:
            node.add_prop("bound", underlying.bound)

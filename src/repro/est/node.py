"""The EST node model, mirroring the paper's Perl ``Ast.pm``.

Creating a node with a parent registers it in the parent's *group* for
its kind (``Ast("f", "Operation", parent)`` appends to the parent's
``methodList``), which is precisely the grouping the paper's Fig. 7
shows.  Node properties are added with :meth:`Ast.add_prop` (the Perl
``AddProp``) and looked up by templates via :meth:`Ast.get`.

Naming conventions used by templates (see Fig. 9):

- the child list for kind ``K`` is named ``<base>List`` where ``<base>``
  is the kind's *variable base* (``Interface`` → ``interface``,
  ``Operation`` → ``method``, ``Param`` → ``param``);
- every node automatically exposes ``<base>Name`` bound to its name, so
  ``@foreach interfaceList`` makes ``${interfaceName}`` available.
"""

# Kinds whose variable base differs from simple lower-casing.  The paper
# uses "Operation" as the node kind (Fig. 8) but iterates "methodList"
# and substitutes "${methodName}" (Fig. 9).
KIND_ALIASES = {
    "Operation": "method",
}


def var_base(kind):
    """The variable base for a node kind (``Interface`` → ``interface``)."""
    alias = KIND_ALIASES.get(kind)
    if alias is not None:
        return alias
    if not kind:
        return kind
    return kind[0].lower() + kind[1:]


def group_key(kind):
    """The child-list name for a node kind (``Operation`` → ``methodList``)."""
    return var_base(kind) + "List"


class Ast:
    """One EST node: a name, a kind, properties, and kind-grouped children."""

    __slots__ = ("name", "kind", "parent", "props", "groups")

    def __init__(self, name, kind, parent=None):
        self.name = name
        self.kind = kind
        self.parent = parent
        self.props = {}
        self.groups = {}
        base = var_base(kind)
        if base:
            self.props[base + "Name"] = name
        if parent is not None:
            parent.groups.setdefault(group_key(kind), []).append(self)

    # -- Perl Ast.pm API -----------------------------------------------------

    def add_prop(self, name, value):
        """Attach a property; returns self so construction can chain."""
        self.props[name] = value
        return self

    def get(self, name, default=None):
        """Look up a property or child list on this node only."""
        if name in self.props:
            return self.props[name]
        if name in self.groups:
            return self.groups[name]
        return default

    def lookup(self, name):
        """Look up a property or child list, searching enclosing nodes.

        This is the template engine's variable-resolution rule: the node
        under current consideration first, then its ancestors, so an
        inner ``@foreach paramList`` body can still see
        ``${interfaceName}``.
        """
        node = self
        while node is not None:
            value = node.get(name, _MISSING)
            if value is not _MISSING:
                return value
            node = node.parent
        return None

    # -- structure helpers ---------------------------------------------------

    def children(self, kind=None):
        """Children of one kind (by kind name or list name), or all children."""
        if kind is None:
            result = []
            for group in self.groups.values():
                result.extend(group)
            return result
        if kind in self.groups:
            return list(self.groups[kind])
        return list(self.groups.get(group_key(kind), []))

    def walk(self):
        """Yield this node and every descendant, depth-first."""
        yield self
        for group in self.groups.values():
            for child in group:
                yield from child.walk()

    def path(self):
        """Names from the root to this node, e.g. ``('Heidi', 'A')``."""
        parts = []
        node = self
        while node is not None:
            if node.name:
                parts.append(node.name)
            node = node.parent
        return tuple(reversed(parts))

    def __repr__(self):
        return f"Ast({self.name!r}, {self.kind!r})"

    # Structural equality helps tests compare rebuilt ESTs.
    def structurally_equal(self, other):
        if not isinstance(other, Ast):
            return False
        if (self.name, self.kind) != (other.name, other.kind):
            return False
        if self.props != other.props:
            return False
        if set(self.groups) != set(other.groups):
            return False
        for key, group in self.groups.items():
            other_group = other.groups[key]
            if len(group) != len(other_group):
                return False
            for mine, theirs in zip(group, other_group):
                if not mine.structurally_equal(theirs):
                    return False
        return True


_MISSING = object()

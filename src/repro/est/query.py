"""Traversal and rendering helpers over ESTs.

``render_tree`` produces the indented textual form of an EST used to
reproduce the paper's Fig. 7, showing children grouped per kind.
"""

from repro.est.node import Ast


def find(root, kind=None, name=None):
    """Return the first node matching *kind* and/or *name*, or None."""
    for node in root.walk():
        if kind is not None and node.kind != kind:
            continue
        if name is not None and node.name != name:
            continue
        return node
    return None


def find_all(root, kind=None, name=None):
    """Return every node matching *kind* and/or *name*, in tree order."""
    matches = []
    for node in root.walk():
        if kind is not None and node.kind != kind:
            continue
        if name is not None and node.name != name:
            continue
        matches.append(node)
    return matches


def render_tree(root, show_props=False):
    """Render the EST as indented text, children grouped by kind list.

    With ``show_props`` each node line is followed by its properties
    (excluding the automatic ``<kind>Name`` one), making the Fig. 8
    vocabulary visible in the Fig. 7 shape.
    """
    lines = []
    _render_node(root, 0, lines, show_props)
    return "\n".join(lines) + "\n"


def _render_node(node, depth, lines, show_props):
    indent = "  " * depth
    label = f"{node.kind}: {node.name}" if node.name else node.kind
    lines.append(f"{indent}{label}")
    if show_props:
        from repro.est.node import var_base

        auto = var_base(node.kind) + "Name" if node.kind else None
        for key, value in sorted(node.props.items()):
            if key == auto and value == node.name:
                continue
            lines.append(f"{indent}  .{key} = {value!r}")
    for group_name in node.groups:
        lines.append(f"{indent}  [{group_name}]")
        for child in node.groups[group_name]:
            _render_node(child, depth + 2, lines, show_props)


def interfaces_of(root):
    """All Interface nodes in the EST, in source order."""
    return find_all(root, kind="Interface")


def count_nodes(root):
    """Total node count (root included)."""
    return sum(1 for _ in root.walk())

"""An Interface Repository storing Enhanced Syntax Trees.

The paper (§5) relates its architecture to OmniBroker's: "The OmniBroker
parser stores an abstract representation of the IDL source in a possibly
persistent global Interface Repository (IR) in support of a distributed
development environment. ... The EST that our template code-generation
requires could either be generated on the fly from the parse tree in the
IR, or the IR could be modified to store the EST instead of the parse
tree."

This module is that modified IR: it stores ESTs keyed by the source
name, indexes every contained declaration by repository ID, and persists
each entry as its executable EST program (the same Fig. 8 artifact the
compiler hand-off uses), so a repository on disk is a directory of
programs plus an index.
"""

import os

from repro.est.builder import build_est
from repro.est.emit import emit_program, load_program
from repro.est.node import Ast

_INDEX_NAME = "index.txt"
_ENTRY_SUFFIX = ".est.py"


class InterfaceRepository:
    """EST store with repository-ID lookup and program-based persistence."""

    def __init__(self):
        self._entries = {}
        self._by_repo_id = {}
        self._by_scoped_name = {}

    # -- population ---------------------------------------------------------

    def add(self, spec_or_est, name=None):
        """Store a parsed Specification (lowered to an EST) or an EST.

        Returns the entry name (derived from the EST's ``file`` property
        when not given).  Re-adding a name replaces the entry and its
        repository-ID index records.
        """
        if isinstance(spec_or_est, Ast):
            est = spec_or_est
        else:
            est = build_est(spec_or_est)
        if name is None:
            name = est.get("file") or f"entry{len(self._entries)}"
        if name in self._entries:
            self.remove(name)
        self._entries[name] = est
        for node in est.walk():
            repo_id = node.get("repoId")
            # Inherited children carry the base's repository ID but are
            # *references*, not declarations — they must not shadow the
            # declaring node in the index.
            if repo_id and node.kind != "Inherited":
                self._by_repo_id[repo_id] = (name, node)
                scoped = node.get("scopedName")
                if scoped:
                    self._by_scoped_name[scoped] = (name, node)
        return name

    def remove(self, name):
        est = self._entries.pop(name, None)
        if est is None:
            return False
        for index in (self._by_repo_id, self._by_scoped_name):
            stale = [
                key for key, (entry, _) in index.items() if entry == name
            ]
            for key in stale:
                del index[key]
        return True

    # -- queries -------------------------------------------------------------

    def entry(self, name):
        """The stored EST root for an entry name, or None."""
        return self._entries.get(name)

    def entries(self):
        return sorted(self._entries)

    def lookup(self, repo_id):
        """The EST node declared under *repo_id*, or None."""
        record = self._by_repo_id.get(repo_id)
        return record[1] if record else None

    def entry_of(self, repo_id):
        """Which entry declares *repo_id*, or None."""
        record = self._by_repo_id.get(repo_id)
        return record[0] if record else None

    def lookup_scoped(self, scoped_name):
        """The EST node declared under a ``A::B`` scoped name, or None."""
        record = self._by_scoped_name.get(scoped_name)
        return record[1] if record else None

    def operation_node(self, repo_id, operation):
        """The Operation/Attribute EST node serving *operation* on the
        interface *repo_id*, searching inherited interfaces.

        Attribute accessors resolve through their ``_get_``/``_set_``
        wire names.  Returns (kind, node) where kind is ``operation``,
        ``attribute-get`` or ``attribute-set``; (None, None) if absent.
        """
        seen = set()
        stack = [repo_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            interface = self.lookup(current)
            if interface is None or interface.kind != "Interface":
                continue
            for op_node in interface.children("Operation"):
                if op_node.name == operation:
                    return "operation", op_node
            for attr in interface.children("Attribute"):
                if operation == f"_get_{attr.name}":
                    return "attribute-get", attr
                if (operation == f"_set_{attr.name}"
                        and attr.get("attributeQualifier") != "readonly"):
                    return "attribute-set", attr
            stack.extend(self.parents_of(current) or ())
        return None, None

    def interfaces(self):
        """All Interface repository IDs across every entry, sorted."""
        return sorted(
            repo_id
            for repo_id, (_, node) in self._by_repo_id.items()
            if node.kind == "Interface"
        )

    def repo_ids(self):
        return sorted(self._by_repo_id)

    def operations_of(self, repo_id):
        """Operation names (own, not inherited) of an interface."""
        node = self.lookup(repo_id)
        if node is None or node.kind != "Interface":
            return None
        return [child.name for child in node.children("Operation")]

    def parents_of(self, repo_id):
        """Repository IDs of the direct bases of an interface."""
        node = self.lookup(repo_id)
        if node is None or node.kind != "Interface":
            return None
        return [
            child.get("repoId")
            for child in node.children("Inherited")
            if child.get("repoId")
        ]

    def is_a(self, repo_id, candidate):
        """Transitive interface conformance, resolved through the IR."""
        if repo_id == candidate:
            return True
        seen = set()
        stack = [repo_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for parent in self.parents_of(current) or ():
                if parent == candidate:
                    return True
                stack.append(parent)
        return False

    def __len__(self):
        return len(self._entries)

    def __contains__(self, repo_id):
        return repo_id in self._by_repo_id

    # -- persistence ------------------------------------------------------------

    @staticmethod
    def _safe_name(name):
        return "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in name)

    def save(self, directory):
        """Persist each entry as its executable EST program."""
        os.makedirs(directory, exist_ok=True)
        index_lines = []
        for name in self.entries():
            file_name = self._safe_name(name) + _ENTRY_SUFFIX
            path = os.path.join(directory, file_name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(emit_program(self._entries[name]))
            index_lines.append(f"{file_name}\t{name}")
        index_path = os.path.join(directory, _INDEX_NAME)
        with open(index_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(index_lines) + ("\n" if index_lines else ""))
        return directory

    @classmethod
    def load(cls, directory):
        """Rebuild a repository by evaluating the stored EST programs."""
        repository = cls()
        index_path = os.path.join(directory, _INDEX_NAME)
        with open(index_path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        for line in lines:
            file_name, _, name = line.partition("\t")
            path = os.path.join(directory, file_name)
            with open(path, "r", encoding="utf-8") as handle:
                est = load_program(handle.read())
            repository.add(est, name=name or file_name)
        return repository

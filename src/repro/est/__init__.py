"""The Enhanced Syntax Tree (EST).

An EST is a parse tree *organized so that similar elements are grouped
together* (paper, Section 4.1): all the attributes of an interface live
in one sub-list, all the methods in another, regardless of how they were
interleaved in the IDL source.  This grouping is what makes the template
language's ``@foreach`` exhaustive over a node kind.

The package mirrors the paper's pipeline:

- :class:`repro.est.node.Ast` — the node model (the Perl ``Ast.pm``).
- :func:`repro.est.builder.build_est` — lower an IDL syntax tree to an EST.
- :func:`repro.est.emit.emit_program` — render an EST as an executable
  Python program that rebuilds it (the generated-Perl stage of Fig. 8).
- :func:`repro.est.emit.load_program` — execute such a program and get
  the EST back.
"""

from repro.est.node import Ast, KIND_ALIASES, group_key, var_base
from repro.est.builder import build_est
from repro.est.emit import emit_program, load_program
from repro.est.query import find, find_all, render_tree
from repro.est.repository import InterfaceRepository

__all__ = [
    "Ast",
    "KIND_ALIASES",
    "group_key",
    "var_base",
    "build_est",
    "emit_program",
    "load_program",
    "find",
    "find_all",
    "render_tree",
    "InterfaceRepository",
]

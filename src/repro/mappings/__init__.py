"""Mapping packs: pluggable IDL → language mappings.

A *mapping pack* is what the paper says a mapping should be: a set of
templates plus a table of map functions — no compiler changes needed to
alter the generated code.  Five packs ship:

- ``heidi_cpp`` — the HeidiRMI custom C++ mapping (Fig. 3): Hd-prefixed
  class names, Heidi data types (``HdList``, ``XBool``), delegation
  skeletons, default parameters;
- ``corba_cpp`` — the CORBA-prescribed C++ mapping (Table 1, Fig. 1):
  ``CORBA::Long``-style types, ``_ptr``/``_var``, inheritance skeletons
  and a tie template;
- ``java_rmi`` — the HeidiRMI Java mapping (§4.2): delegation, flattened
  multiple inheritance, no default parameters;
- ``tcl_orb`` — the IDL–Tcl mapping with its small Tcl ORB (Fig. 10);
- ``python_rmi`` — a live mapping generating Python stubs/skeletons
  that execute on :mod:`repro.heidirmi`.
"""

from repro.mappings.base import MappingPack
from repro.mappings.registry import all_packs, get_pack, register_pack

__all__ = ["MappingPack", "get_pack", "register_pack", "all_packs"]

"""The IDL→Tcl mapping with its small Tcl ORB (paper, Section 4.2 / Fig. 10).

"It took us about two weeks and 700 lines of tcl code to build an IIOP
compatible tcl ORB.  This exercise enabled the integration of an
existing tcl management GUI application with a CORBA-based distributed
system."  This pack regenerates that artifact: ``orb.tcl`` is the ORB
library (shipped verbatim as a static asset) and the templates generate
Fig. 10-style ``[incr Tcl]`` stubs and skeletons per interface.

The generated code is *runnable*: it speaks the HeidiRMI text wire
protocol, so a generated Tcl client talks to the Python HeidiRMI server
(and vice versa) — the integration tests do exactly that under tclsh.
"""

import os

from repro.mappings.base import MappingPack
from repro.mappings.registry import register_pack

TCL_TYPE_TABLE = {
    "boolean": "boolean (0/1)",
    "char": "string (1 char)",
    "octet": "integer",
    "short": "integer",
    "unsigned short": "integer",
    "long": "integer",
    "unsigned long": "integer",
    "long long": "integer",
    "unsigned long long": "integer",
    "float": "double",
    "double": "double",
    "string": "string",
    "void": "(none)",
}

#: EST type category → Call insert/extract method suffix.
_METHOD_SUFFIX = {
    "boolean": "Boolean",
    "char": "Char",
    "wchar": "Char",
    "octet": "Octet",
    "short": "Short",
    "ushort": "Short",
    "long": "Long",
    "ulong": "Long",
    "longlong": "Long",
    "ulonglong": "Long",
    "float": "Float",
    "double": "Double",
    "longdouble": "Double",
    "string": "String",
    "wstring": "String",
    "enum": "Enum",
}


def _suffix_for(node):
    category = node.get("type") if node is not None else ""
    if category in ("objref",):
        return "Object"
    return _METHOD_SUFFIX.get(category, "String")


def map_insert(value, ctx):
    """``$c insertString $text`` for the parameter under consideration."""
    name = ctx.node.get("paramName") or "value"
    return f"$c insert{_suffix_for(ctx.node)} ${name}"


def map_extract(value, ctx):
    """``[$c extractString]`` for the parameter under consideration."""
    return f"[$c extract{_suffix_for(ctx.node)}]"


def map_oneway_flag(value, ctx):
    return "1" if ctx.node is not None and ctx.node.get("oneway") else "0"


def map_stub_return(value, ctx):
    """Post-``send`` result extraction in a stub method (Fig. 10 body)."""
    category = ctx.node.get("type") if ctx.node is not None else "void"
    if category == "void":
        return "# void return"
    return f"set result [$c extract{_suffix_for(ctx.node)}]"


def map_stub_result(value, ctx):
    """The trailing return statement of a stub method."""
    category = ctx.node.get("type") if ctx.node is not None else "void"
    if category == "void":
        return ""
    return "return $result"


def map_skel_invoke(value, ctx):
    """Delegate to the implementation and marshal the result (skeleton)."""
    node = ctx.node
    params = " ".join(f"${child.name}" for child in node.children("Param"))
    invocation = f"$pb_obj_ {node.name}"
    if params:
        invocation += f" {params}"
    category = node.get("type")
    if category == "void":
        return f"{invocation}\n        # void return"
    return f"$c insert{_suffix_for(node)} [{invocation}]"


@register_pack
class TclOrbPack(MappingPack):
    """Template pack for the IDL-Tcl mapping and its Tcl ORB."""

    name = "tcl_orb"
    language = "Tcl"
    description = (
        "IDL-Tcl mapping with a small text-protocol Tcl ORB "
        "(paper Section 4.2 / Fig. 10); generated code runs under tclsh"
    )
    main_template = "main.tmpl"
    type_table = TCL_TYPE_TABLE

    def register_maps(self, registry):
        registry.register("Tcl::MapInsert", map_insert)
        registry.register("Tcl::MapExtract", map_extract)
        registry.register("Tcl::MapOnewayFlag", map_oneway_flag)
        registry.register("Tcl::MapStubReturn", map_stub_return)
        registry.register("Tcl::MapStubResult", map_stub_result)
        registry.register("Tcl::MapSkelInvoke", map_skel_invoke)

    def static_assets(self):
        path = os.path.join(self.template_dir(), "orb.tcl")
        with open(path, "r", encoding="utf-8") as handle:
            return {"orb.tcl": handle.read()}

    def orb_library_source(self):
        """The Tcl ORB library text (for the 700-line claim bench)."""
        return self.static_assets()["orb.tcl"]

"""The CORBA-prescribed IDL→C++ mapping (paper Table 1, Table 2, Fig. 1).

This is the baseline the paper contrasts with: CORBA-specific data types
(``CORBA::Long``, ``CORBA::Boolean``...), ``_ptr``/``_var`` declarators,
stubs and skeletons related to the interface class by *inheritance*, and
a *tie* template as the only delegation escape hatch.  Default
parameters and ``incopy`` are not expressible in the prescribed mapping:
defaults are dropped and ``incopy`` degrades to ``in`` (with a comment
in the generated code), which is exactly the legacy-integration pain the
paper describes.
"""

from repro.mappings.base import MappingPack
from repro.mappings.registry import register_pack

#: IDL primitive → CORBA C++ type (the "Prescribed C++ Type" column of
#: Table 1, completed for all primitives).
CORBA_TYPE_TABLE = {
    "boolean": "CORBA::Boolean",
    "char": "CORBA::Char",
    "wchar": "CORBA::WChar",
    "octet": "CORBA::Octet",
    "short": "CORBA::Short",
    "unsigned short": "CORBA::UShort",
    "long": "CORBA::Long",
    "unsigned long": "CORBA::ULong",
    "long long": "CORBA::LongLong",
    "unsigned long long": "CORBA::ULongLong",
    "float": "CORBA::Float",
    "double": "CORBA::Double",
    "long double": "CORBA::LongDouble",
    "string": "char*",
    "wstring": "CORBA::WChar*",
    "any": "CORBA::Any",
    "void": "void",
    "Object": "CORBA::Object_ptr",
}

_CATEGORY_TO_TABLE_KEY = {
    "boolean": "boolean",
    "char": "char",
    "wchar": "wchar",
    "octet": "octet",
    "short": "short",
    "ushort": "unsigned short",
    "long": "long",
    "ulong": "unsigned long",
    "longlong": "long long",
    "ulonglong": "unsigned long long",
    "float": "float",
    "double": "double",
    "longdouble": "long double",
    "string": "string",
    "wstring": "wstring",
    "any": "any",
    "void": "void",
}


def map_scoped(value):
    """``Heidi::A`` → ``Heidi_A``.

    The prescribed mapping nests interfaces in C++ namespaces; this
    reproduction flattens the scope into the class name instead, which
    keeps generated headers self-contained while preserving the
    declarator structure (``X_ptr``/``X_var``) the tables illustrate.
    """
    return str(value).replace("::", "_")


def map_flat(value):
    """``Heidi::A`` → ``Heidi_A`` for declarator names outside namespaces."""
    return str(value).replace("::", "_")


def map_type(value, ctx):
    """IDL type spelling → prescribed CORBA C++ type."""
    category = ctx.node.get("type") if ctx.node is not None else ""
    if category == "objref":
        return map_scoped(value) + "_ptr"
    if category == "enum":
        return map_scoped(value)
    if category in ("struct", "union", "exception"):
        return "const " + map_scoped(value) + "&"
    if category in ("alias", "sequence", "array"):
        return "const " + map_scoped(value) + "&"
    key = _CATEGORY_TO_TABLE_KEY.get(category)
    if key is not None and key in CORBA_TYPE_TABLE:
        return CORBA_TYPE_TABLE[key]
    return map_scoped(value)


def map_return_type(value, ctx):
    category = ctx.node.get("type") if ctx.node is not None else ""
    if category == "objref":
        return map_scoped(value) + "_ptr"
    if category in ("struct", "union", "alias", "sequence", "array"):
        return map_scoped(value) + "*"
    key = _CATEGORY_TO_TABLE_KEY.get(category)
    if key is not None and key in CORBA_TYPE_TABLE:
        return CORBA_TYPE_TABLE[key]
    return map_scoped(value)


def map_incopy_note(value, ctx):
    """The prescribed mapping cannot pass by value: annotate the loss."""
    direction = ctx.node.get("getType", "in") if ctx.node is not None else "in"
    if direction == "incopy":
        return " /* incopy not expressible: passed by reference */"
    return ""


@register_pack
class CorbaCppPack(MappingPack):
    """Template pack for the CORBA-prescribed C++ mapping."""

    name = "corba_cpp"
    language = "C++"
    description = (
        "CORBA-prescribed C++ mapping: CORBA:: data types, _ptr/_var, "
        "inheritance skeletons and tie templates (paper Table 1/Fig. 1)"
    )
    main_template = "main.tmpl"
    type_table = CORBA_TYPE_TABLE

    def static_assets(self):
        """Vendor-ORB header stand-ins the generated code compiles against."""
        import os

        assets = {}
        runtime_dir = os.path.join(self.template_dir(), "runtime")
        for name in sorted(os.listdir(runtime_dir)):
            if name.endswith(".h"):
                with open(os.path.join(runtime_dir, name),
                          encoding="utf-8") as handle:
                    assets[os.path.join("runtime", name)] = handle.read()
        return assets

    def register_maps(self, registry):
        registry.register_simple("CORBA::MapScoped", map_scoped)
        registry.register_simple("CORBA::MapFlat", map_flat)
        registry.register("CORBA::MapType", map_type)
        registry.register("CORBA::MapReturnType", map_return_type)
        registry.register("CORBA::MapIncopyNote", map_incopy_note)


def class_hierarchy(generated_header):
    """Extract (class, bases) edges from a generated C++ header.

    Used by the Fig. 1 / Fig. 2 benches to show the inheritance (CORBA)
    versus delegation (HeidiRMI) relations the two packs generate.
    """
    import re

    edges = {}
    pattern = re.compile(
        r"(?:class|template\s*<[^>]*>\s*class)\s+([A-Za-z_][\w:]*)\s*:\s*([^\{\n]+)"
    )
    for match in pattern.finditer(generated_header):
        name = match.group(1)
        bases = [
            piece.strip().split()[-1]
            for piece in match.group(2).split(",")
            if piece.strip()
        ]
        edges[name] = bases
    return edges

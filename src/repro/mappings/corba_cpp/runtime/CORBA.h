/* CORBA.h — the CORBA-prescribed data types and helpers the generated
 * code references (Table 1's left-hand column and the _ptr/_var
 * declarator machinery of Table 2).
 *
 * A compact stand-in for a vendor ORB header, complete enough for a
 * real C++ compiler to build the generated mapping against it.
 */

#ifndef REPRO_CORBA_H
#define REPRO_CORBA_H

#include <cstddef>

namespace CORBA {

/* Table 1: prescribed primitive types. */
typedef bool Boolean;
typedef char Char;
typedef wchar_t WChar;
typedef unsigned char Octet;
typedef short Short;
typedef unsigned short UShort;
typedef int Long;
typedef unsigned int ULong;
typedef long long LongLong;
typedef unsigned long long ULongLong;
typedef float Float;
typedef double Double;
typedef long double LongDouble;

class Any {
public:
    Any() {}
};

class Object {
public:
    virtual ~Object() {}
};
typedef Object* Object_ptr;

/* Minimal unbounded-sequence base used by generated sequence classes. */
template <class T>
class UnboundedSequence {
public:
    UnboundedSequence() : buffer_(0), length_(0), maximum_(0) {}
    ~UnboundedSequence() { delete[] buffer_; }
    ULong length() const { return length_; }
    void length(ULong value) { ensure_(value); length_ = value; }
    T*& operator[](ULong index) { return buffer_[index]; }

private:
    UnboundedSequence(const UnboundedSequence&);
    UnboundedSequence& operator=(const UnboundedSequence&);
    void ensure_(ULong wanted) {
        if (wanted <= maximum_) return;
        T** grown = new T*[wanted];
        for (ULong i = 0; i < length_; ++i) grown[i] = buffer_[i];
        delete[] buffer_;
        buffer_ = grown;
        maximum_ = wanted;
    }
    T** buffer_;
    ULong length_;
    ULong maximum_;
};

/* The _var smart declarators of Table 2 (ownership-managing). */
template <class T>
class ObjectVar {
public:
    ObjectVar() : ptr_(0) {}
    ObjectVar(T* adopted) : ptr_(adopted) {}
    ~ObjectVar() { delete ptr_; }
    T* operator->() const { return ptr_; }
    T* in() const { return ptr_; }

private:
    ObjectVar(const ObjectVar&);
    ObjectVar& operator=(const ObjectVar&);
    T* ptr_;
};

template <class T>
class SequenceVar {
public:
    SequenceVar() : ptr_(0) {}
    SequenceVar(T* adopted) : ptr_(adopted) {}
    ~SequenceVar() { delete ptr_; }
    T* operator->() const { return ptr_; }

private:
    SequenceVar(const SequenceVar&);
    SequenceVar& operator=(const SequenceVar&);
    T* ptr_;
};

template <class T>
class StructVar {
public:
    StructVar() : ptr_(0) {}
    StructVar(T* adopted) : ptr_(adopted) {}
    ~StructVar() { delete ptr_; }
    T* operator->() const { return ptr_; }

private:
    StructVar(const StructVar&);
    StructVar& operator=(const StructVar&);
    T* ptr_;
};

/* What the prescribed skeleton's _dispatch consumes. */
class ServerRequest {
public:
    const char* operation() const { return operation_; }

private:
    const char* operation_;
};

}  /* namespace CORBA */

#endif /* REPRO_CORBA_H */

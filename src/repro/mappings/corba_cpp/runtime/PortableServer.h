/* PortableServer.h — the servant base the prescribed skeletons inherit
 * (Fig. 1: the implementation joins the generated hierarchy).
 */

#ifndef REPRO_PORTABLESERVER_H
#define REPRO_PORTABLESERVER_H

#include <CORBA.h>
#include <cstring>

namespace PortableServer {

class ServantBase {
public:
    virtual ~ServantBase() {}
};

}  /* namespace PortableServer */

#endif /* REPRO_PORTABLESERVER_H */

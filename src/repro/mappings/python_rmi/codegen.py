"""Statement generators for the live Python mapping.

These functions build the marshal/unmarshal statement blocks that the
``python_rmi`` map functions splice into generated stub and skeleton
methods.  They work from EST nodes (type category, flattened type name,
element children) and return lists of source lines.

The supported surface covers everything the paper exercises and more:
all primitive types, strings, enums, structs, unions, ``any``
(self-describing values), sequences (arbitrarily nested), object
references (``in``/``incopy``/``out``/``inout``) and typedef aliases of
any of those.  The remaining exotics (``fixed``, ``native``, arrays)
are rejected with a clear error at generation time.
"""

from repro.heidirmi.errors import MarshalError

#: EST category → Call method suffix for primitives.
PRIMITIVE_METHOD = {
    "boolean": "boolean",
    "char": "char",
    "wchar": "char",
    "octet": "octet",
    "short": "short",
    "ushort": "ushort",
    "long": "long",
    "ulong": "ulong",
    "longlong": "longlong",
    "ulonglong": "ulonglong",
    "float": "float",
    "double": "double",
    "longdouble": "double",
    "string": "string",
    "wstring": "string",
}


def flat(value):
    """``Heidi::Status`` → ``Heidi_Status`` (generated class names)."""
    return str(value).replace("::", "_")


class TypeView:
    """Resolved view of a typed EST node (param/attr/return/member)."""

    def __init__(self, node):
        self.node = node
        category = node.get("type")
        type_name = node.get("typeName") or ""
        if category == "alias":
            resolved = node.get("aliasedCategory")
            if resolved is not None:
                category = resolved
                if resolved not in ("sequence",):
                    type_name = node.get("aliasedTypeName") or type_name
        self.category = category
        self.type_name = flat(type_name)

    @property
    def element(self):
        children = self.node.children("ElementType")
        return TypeView(children[0]) if children else None


def _unsupported(category, where):
    raise MarshalError(
        f"the python_rmi mapping does not support {category!r} {where}; "
        "supported: primitives, string, enum, struct, union, any, "
        "sequence, object references and aliases of those"
    )


def put_lines(node, name, direction="in", obj="call", depth=0, helper="self"):
    """Statements marshalling *name* (typed by *node*) into *obj*.

    ``helper`` selects how object values and the ORB are reached:
    ``"self"`` inside stub/skeleton methods (``self._put_object``,
    ``self._orb``), ``"module"`` inside generated struct/exception
    methods, which receive ``orb`` as an argument and use the
    module-level :func:`repro.heidirmi.serialize.put_object`.
    """
    return _put(TypeView(node), name, direction, obj, depth, helper)


def _put(view, name, direction, obj, depth, helper):
    category = view.category
    if category in PRIMITIVE_METHOD:
        return [f"{obj}.put_{PRIMITIVE_METHOD[category]}({name})"]
    if category == "enum":
        cls = view.type_name
        return [f"{obj}.put_enum({cls}.MEMBERS[{name}], {name})"]
    if category in ("objref", "Object"):
        if helper == "module":
            return [f"put_object({obj}, {name}, orb, {direction!r})"]
        return [f"self._put_object({obj}, {name}, {direction!r})"]
    if category in ("struct", "union"):
        orb_expr = "orb" if helper == "module" else "self._orb"
        return [f"{name}._hd_struct_put({obj}, {orb_expr})"]
    if category == "any":
        if helper == "module":
            return [f"put_any({obj}, {name}, orb)"]
        return [f"put_any({obj}, {name}, self._orb)"]
    if category == "sequence":
        element = view.element
        if element is None:
            _unsupported("sequence without element info", "here")
        item = f"_e{depth}"
        inner = _put(element, item, direction, obj, depth + 1, helper)
        return [
            f"{obj}.begin('sequence')",
            f"{obj}.put_ulong(len({name}))",
            f"for {item} in {name}:",
            *[f"    {line}" for line in inner],
            f"{obj}.end()",
        ]
    _unsupported(category, f"for value {name!r}")


def get_lines(node, target, obj="call", depth=0, helper="self"):
    """Statements unmarshalling into *target* from *obj*."""
    return _get(TypeView(node), target, obj, depth, helper)


def _get(view, target, obj, depth, helper):
    category = view.category
    if category in PRIMITIVE_METHOD:
        return [f"{target} = {obj}.get_{PRIMITIVE_METHOD[category]}()"]
    if category == "enum":
        cls = view.type_name
        return [f"{target} = {obj}.get_enum({cls}.MEMBERS)"]
    if category in ("objref", "Object"):
        if helper == "module":
            return [f"{target} = get_object({obj}, orb)"]
        return [f"{target} = self._get_object({obj})"]
    if category in ("struct", "union"):
        cls = view.type_name
        orb_expr = "orb" if helper == "module" else "self._orb"
        return [f"{target} = {cls}._hd_struct_get({obj}, {orb_expr})"]
    if category == "any":
        if helper == "module":
            return [f"{target} = get_any({obj}, orb)"]
        return [f"{target} = get_any({obj}, self._orb)"]
    if category == "sequence":
        element = view.element
        if element is None:
            _unsupported("sequence without element info", "here")
        index = f"_i{depth}"
        item = f"_v{depth}"
        inner = _get(element, item, obj, depth + 1, helper)
        return [
            f"{obj}.begin('sequence')",
            f"{target} = []",
            f"for {index} in range({obj}.get_ulong()):",
            *[f"    {line}" for line in inner],
            f"    {target}.append({item})",
            f"{obj}.end()",
        ]
    _unsupported(category, f"for target {target!r}")


def default_literal(node):
    """The Python default-value literal for a defaulted parameter."""
    text = node.get("defaultParam") or ""
    if not text:
        return None
    view = TypeView(node)
    if view.category == "boolean":
        if text == "TRUE":
            return "True"
        if text == "FALSE":
            return "False"
        return repr(bool(node.get("defaultValue")))
    if view.category == "enum":
        member = text.split("::")[-1]
        return f"{view.type_name}.{member}"
    if view.category in ("string", "wstring", "char", "wchar"):
        value = node.get("defaultValue")
        if value is None:
            value = text.strip('"').strip("'")
        return repr(value)
    if view.category in ("objref", "Object"):
        return "None"
    # Numeric: the IDL spelling is already a Python literal (the parser
    # normalises hex/octal into the evaluated value when available).
    value = node.get("defaultValue")
    return repr(value) if value is not None else text


def method_params(op_node):
    """(signature_parts, in_params, out_params) for an Operation node."""
    signature = ["self"]
    in_params = []
    out_params = []
    for param in op_node.children("Param"):
        direction = param.get("getType", "in")
        if direction in ("in", "incopy", "inout"):
            default = default_literal(param)
            if default is not None:
                signature.append(f"{param.name}={default}")
            else:
                signature.append(param.name)
            in_params.append(param)
        if direction in ("out", "inout"):
            out_params.append(param)
    return signature, in_params, out_params

"""The live IDL→Python mapping.

Generated modules run directly on :mod:`repro.heidirmi`: abstract
interface classes (delegation — an implementation need not inherit
anything), stub classes mirroring the IDL inheritance graph, delegation
skeletons with recursive dispatch, enum/struct/exception classes, and
type-registry registration.  Default parameters become Python defaults;
``incopy`` parameters pass serializable objects by value.

This pack is what makes Figs. 4 and 5 *executable* in this
reproduction: the same template machinery that prints C++/Java/Tcl
emits Python that the test suite actually calls over real sockets.
"""

from repro.mappings.base import MappingPack
from repro.mappings.registry import register_pack
from repro.mappings.python_rmi import codegen
from repro.mappings.python_rmi.codegen import (
    default_literal,
    flat,
    get_lines,
    method_params,
    put_lines,
    TypeView,
)

PYTHON_TYPE_TABLE = {
    "boolean": "bool",
    "char": "str (1 char)",
    "octet": "int",
    "short": "int",
    "unsigned short": "int",
    "long": "int",
    "unsigned long": "int",
    "long long": "int",
    "unsigned long long": "int",
    "float": "float",
    "double": "float",
    "string": "str",
    "void": "None",
}

_FIELD_DEFAULT = {
    "boolean": "False",
    "char": "'\\0'",
    "wchar": "'\\0'",
    "octet": "0",
    "short": "0",
    "ushort": "0",
    "long": "0",
    "ulong": "0",
    "longlong": "0",
    "ulonglong": "0",
    "float": "0.0",
    "double": "0.0",
    "longdouble": "0.0",
    "string": "''",
    "wstring": "''",
    "enum": "0",
    "objref": "None",
    "Object": "None",
    "struct": "None",
    "sequence": "None",
}


def _indent(lines, level):
    pad = "    " * level
    return [pad + line if line else line for line in lines]


def _block(lines):
    """Join generated lines into a ${...} substitution value."""
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Enum / struct / exception bodies
# ---------------------------------------------------------------------------


def map_enum_body(value, ctx):
    node = ctx.node
    members = node.get("members") or []
    lines = [f"    MEMBERS = ({', '.join(repr(m) for m in members)},)"]
    for index, member in enumerate(members):
        lines.append(f"    {member} = {index}")
    return _block(lines)


def _field_lines(members, obj, direction):
    put = []
    get = []
    names = []
    for member in members:
        names.append(member.name)
        put.extend(
            put_lines(member, f"self.{member.name}", direction, obj=obj,
                      helper="module")
        )
        get.extend(get_lines(member, f"_{member.name}", obj=obj, helper="module"))
    return names, put, get


def map_struct_body(value, ctx):
    node = ctx.node
    members = node.children("Member")
    init_params = []
    for member in members:
        view = TypeView(member)
        default = _FIELD_DEFAULT.get(view.category, "None")
        init_params.append(f"{member.name}={default}")
    names, put, get = _field_lines(members, obj="call", direction="in")
    lines = [f"    _hd_repo_id_ = {node.get('repoId')!r}"]
    lines.append(f"    def __init__(self, {', '.join(init_params)}):")
    if not members:
        lines.append("        pass")
    for member in members:
        view = TypeView(member)
        if view.category == "sequence":
            lines.append(
                f"        self.{member.name} = [] if {member.name} is None "
                f"else {member.name}"
            )
        else:
            lines.append(f"        self.{member.name} = {member.name}")
    lines.append("    def __eq__(self, other):")
    lines.append("        return isinstance(other, type(self)) and \\")
    if names:
        comparisons = " and ".join(
            f"self.{name} == other.{name}" for name in names
        )
        lines.append(f"            ({comparisons})")
    else:
        lines.append("            True")
    lines.append("    def __repr__(self):")
    fields = ", ".join(f"{name}={{self.{name}!r}}" for name in names)
    lines.append(f"        return f'{node.name}({fields})'")
    lines.append("    def _hd_struct_put(self, call, orb):")
    lines.append(f"        call.begin({node.name!r})")
    lines.extend(_indent(put, 2))
    lines.append("        call.end()")
    lines.append("    @classmethod")
    lines.append("    def _hd_struct_get(cls, call, orb):")
    lines.append(f"        call.begin({node.name!r})")
    lines.extend(_indent(get, 2))
    lines.append("        call.end()")
    ctor_args = ", ".join(f"{name}=_{name}" for name in names)
    lines.append(f"        return cls({ctor_args})")
    return _block(lines)


def map_exception_body(value, ctx):
    node = ctx.node
    members = node.children("Member")
    names = [member.name for member in members]
    init_params = []
    for member in members:
        view = TypeView(member)
        default = _FIELD_DEFAULT.get(view.category, "None")
        init_params.append(f"{member.name}={default}")
    lines = [f"    _hd_repo_id_ = {node.get('repoId')!r}"]
    lines.append(f"    def __init__(self, {', '.join(init_params)}):")
    message = " + ' ' + ".join(f"repr({name})" for name in names) or "''"
    lines.append(f"        super().__init__({message})")
    for name in names:
        lines.append(f"        self.{name} = {name}")
    lines.append("    def _hd_marshal(self, reply, orb):")
    put = []
    get = []
    for member in members:
        put.extend(
            put_lines(member, f"self.{member.name}", "in", obj="reply",
                      helper="module")
        )
        get.extend(get_lines(member, f"_{member.name}", obj="reply",
                             helper="module"))
    if put:
        lines.extend(_indent(put, 2))
    else:
        lines.append("        pass")
    lines.append("    @classmethod")
    lines.append("    def _hd_unmarshal(cls, reply, orb):")
    lines.extend(_indent(get, 2))
    ctor_args = ", ".join(f"{name}=_{name}" for name in names)
    lines.append(f"        return cls({ctor_args})")
    return _block(lines)


def _union_label_literal(label, disc_category, disc_type_name):
    """A case-label value as a Python literal for the generated union."""
    if disc_category == "enum" and isinstance(label, str):
        return f"{flat(disc_type_name)}.{label}"
    if disc_category == "boolean":
        return "True" if label in (True, "TRUE") else "False"
    if disc_category in ("char", "wchar"):
        return repr(label)
    return repr(label)


def map_union_body(value, ctx):
    """The full body of a generated union class.

    A union value is (discriminator, value); marshalling writes the
    discriminator then branches on the active case, exactly as a CDR
    union does.  A missing default case with an unlisted discriminator
    marshals no body (the CORBA implicit-default rule).
    """
    node = ctx.node
    disc_category = node.get("type")
    disc_type_name = node.get("typeName") or ""
    cases = node.children("Case")

    # Discriminator put/get statements (reuse the scalar machinery by
    # faking a view over the union node itself, whose type props are
    # the discriminator's).
    disc_put = put_lines(node, "self.discriminator", "in", obj="call",
                         helper="module")
    disc_get = get_lines(node, "_d", obj="call", helper="module")

    lines = [f"    _hd_repo_id_ = {node.get('repoId')!r}"]
    lines.append("    def __init__(self, discriminator=None, value=None):")
    lines.append("        self.discriminator = discriminator")
    lines.append("        self.value = value")
    lines.append("    def __eq__(self, other):")
    lines.append("        return (isinstance(other, type(self))")
    lines.append("                and self.discriminator == other.discriminator")
    lines.append("                and self.value == other.value)")
    lines.append("    def __repr__(self):")
    lines.append(
        f"        return f'{node.name}(discriminator={{self.discriminator!r}}, "
        "value={self.value!r})'"
    )

    def branch_chain(body_for_case, indent_level):
        chain = []
        first = True
        default_case = None
        for case in cases:
            labels = case.get("labelValues") or []
            if "default" in labels:
                default_case = case
                concrete = [l for l in labels if l != "default"]
                if not concrete:
                    continue
                labels = concrete
            literals = ", ".join(
                _union_label_literal(l, disc_category, disc_type_name)
                for l in labels
            )
            keyword = "if" if first else "elif"
            first = False
            if len(labels) == 1:
                condition = f"{keyword} _d == {literals}:"
            else:
                condition = f"{keyword} _d in ({literals},):"
            chain.append(condition)
            chain.extend("    " + line for line in body_for_case(case))
        if default_case is not None:
            chain.append("if True:" if first else "else:")
            chain.extend("    " + line for line in body_for_case(default_case))
        elif not first:
            chain.append("else:")
            chain.append("    pass  # implicit default: no body")
        return _indent(chain, indent_level)

    # -- marshal ----------------------------------------------------------
    lines.append("    def _hd_struct_put(self, call, orb):")
    lines.append(f"        call.begin({node.name!r})")
    lines.append("        _d = self.discriminator")
    lines.extend(_indent(disc_put, 2))
    lines.extend(
        branch_chain(
            lambda case: put_lines(case, "self.value", "in", obj="call",
                                   helper="module"),
            2,
        )
    )
    lines.append("        call.end()")

    # -- unmarshal -----------------------------------------------------------
    lines.append("    @classmethod")
    lines.append("    def _hd_struct_get(cls, call, orb):")
    lines.append(f"        call.begin({node.name!r})")
    lines.extend(_indent(disc_get, 2))
    lines.append("        _value = None")

    def get_case(case):
        body = get_lines(case, "_case_value", obj="call", helper="module")
        return body + ["_value = _case_value"]

    lines.extend(branch_chain(get_case, 2))
    lines.append("        call.end()")
    lines.append("        return cls(discriminator=_d, value=_value)")
    return _block(lines)


# ---------------------------------------------------------------------------
# Interface bodies
# ---------------------------------------------------------------------------


def _iter_methods(node):
    """Own Operation nodes of an Interface EST node."""
    return node.children("Operation")


def _iter_attributes(node):
    return node.children("Attribute")


def map_abstract_methods(value, ctx):
    node = ctx.node
    lines = []
    for op in _iter_methods(node):
        signature, _, _ = method_params(op)
        lines.append(f"    def {op.name}({', '.join(signature)}):")
        lines.append(
            f"        raise NotImplementedError({op.name!r})"
        )
    for attr in _iter_attributes(node):
        lines.append(f"    def get_{attr.name}(self):")
        lines.append(f"        raise NotImplementedError('get_{attr.name}')")
        if attr.get("attributeQualifier") != "readonly":
            lines.append(f"    def set_{attr.name}(self, value):")
            lines.append(f"        raise NotImplementedError('set_{attr.name}')")
    if not lines:
        lines.append("    pass")
    return _block(lines)


def _stub_operation(op):
    signature, in_params, out_params = method_params(op)
    oneway = bool(op.get("oneway"))
    lines = [f"    def {op.name}({', '.join(signature)}):"]
    oneway_arg = ", oneway=True" if oneway else ""
    lines.append(f"        call = self._new_call({op.name!r}{oneway_arg})")
    for param in op.children("Param"):
        direction = param.get("getType", "in")
        if direction in ("in", "incopy", "inout"):
            lines.extend(
                _indent(put_lines(param, param.name, direction, obj="call"), 2)
            )
    if oneway:
        lines.append("        self._invoke(call)")
        return lines
    lines.append("        reply = self._invoke(call)")
    results = []
    if op.get("type") != "void":
        lines.extend(_indent(get_lines(op, "_result", obj="reply"), 2))
        results.append("_result")
    for param in out_params:
        lines.extend(
            _indent(get_lines(param, f"_{param.name}", obj="reply"), 2)
        )
        results.append(f"_{param.name}")
    if len(results) == 1:
        lines.append(f"        return {results[0]}")
    elif results:
        lines.append(f"        return ({', '.join(results)})")
    return lines


def _stub_attribute(attr):
    lines = [f"    def get_{attr.name}(self):"]
    lines.append(f"        call = self._new_call('_get_{attr.name}')")
    lines.append("        reply = self._invoke(call)")
    lines.extend(_indent(get_lines(attr, "_result", obj="reply"), 2))
    lines.append("        return _result")
    if attr.get("attributeQualifier") != "readonly":
        lines.append(f"    def set_{attr.name}(self, value):")
        lines.append(f"        call = self._new_call('_set_{attr.name}')")
        lines.extend(_indent(put_lines(attr, "value", "in", obj="call"), 2))
        lines.append("        self._invoke(call)")
    return lines


def map_stub_methods(value, ctx):
    node = ctx.node
    lines = []
    for op in _iter_methods(node):
        lines.extend(_stub_operation(op))
    for attr in _iter_attributes(node):
        lines.extend(_stub_attribute(attr))
    if not lines:
        lines.append("    pass")
    return _block(lines)


def _skel_operation(op):
    method = f"_op_{op.name}"
    lines = [f"    def {method}(self, call, reply):"]
    impl_args = []
    for param in op.children("Param"):
        direction = param.get("getType", "in")
        if direction in ("in", "incopy", "inout"):
            lines.extend(_indent(get_lines(param, param.name, obj="call"), 2))
            impl_args.append(param.name)
    results = []
    if op.get("type") != "void":
        results.append("_result")
    out_params = [
        p for p in op.children("Param") if p.get("getType") in ("out", "inout")
    ]
    results.extend(f"_{p.name}" for p in out_params)
    invocation = f"self.impl.{op.name}({', '.join(impl_args)})"
    if not results:
        lines.append(f"        {invocation}")
    elif len(results) == 1:
        lines.append(f"        {results[0]} = {invocation}")
    else:
        lines.append(f"        ({', '.join(results)}) = {invocation}")
    if op.get("oneway"):
        return lines
    if op.get("type") != "void":
        lines.extend(_indent(put_lines(op, "_result", "in", obj="reply"), 2))
    for param in out_params:
        lines.extend(
            _indent(put_lines(param, f"_{param.name}", "in", obj="reply"), 2)
        )
    return lines


def _skel_attribute(attr):
    lines = [f"    def _op_get_{attr.name}(self, call, reply):"]
    lines.append(f"        _result = self.impl.get_{attr.name}()")
    lines.extend(_indent(put_lines(attr, "_result", "in", obj="reply"), 2))
    if attr.get("attributeQualifier") != "readonly":
        lines.append(f"    def _op_set_{attr.name}(self, call, reply):")
        lines.extend(_indent(get_lines(attr, "_value", obj="call"), 2))
        lines.append(f"        self.impl.set_{attr.name}(_value)")
    return lines


def map_skel_methods(value, ctx):
    node = ctx.node
    lines = []
    for op in _iter_methods(node):
        lines.extend(_skel_operation(op))
    for attr in _iter_attributes(node):
        lines.extend(_skel_attribute(attr))
    if not lines:
        lines.append("    pass")
    return _block(lines)


def map_impl_scaffold(value, ctx):
    """Ready-to-fill implementation methods for one interface.

    Covers own *and inherited* operations/attributes, since an
    implementation object must answer everything its most-derived
    interface promises.
    """
    node = ctx.node
    lines = []
    seen = set()

    def emit_for(interface):
        for op in interface.children("Operation"):
            if op.name in seen:
                continue
            seen.add(op.name)
            signature, _, out_params = method_params(op)
            lines.append(f"    def {op.name}({', '.join(signature)}):")
            returns = []
            if op.get("type") != "void":
                returns.append("a result")
            returns.extend(f"out parameter {p.name!r}" for p in out_params)
            todo = " and ".join(returns) if returns else "nothing"
            lines.append(f"        # TODO: implement {op.name} "
                         f"(returns {todo})")
            lines.append(
                f"        raise NotImplementedError({op.name!r})"
            )
            lines.append("")
        for attr in interface.children("Attribute"):
            getter = f"get_{attr.name}"
            if getter in seen:
                continue
            seen.add(getter)
            lines.append(f"    def {getter}(self):")
            lines.append(f"        raise NotImplementedError({getter!r})")
            lines.append("")
            if attr.get("attributeQualifier") != "readonly":
                lines.append(f"    def set_{attr.name}(self, value):")
                lines.append(
                    f"        raise NotImplementedError('set_{attr.name}')"
                )
                lines.append("")

    # Own members first, then every inherited interface's.
    emit_for(node)
    est_root = ctx.runtime.est if ctx.runtime is not None else None
    if est_root is not None:
        by_scoped = {
            n.get("scopedName"): n
            for n in est_root.walk() if n.kind == "Interface"
        }
        stack = [i.name for i in node.children("Inherited")]
        visited = set()
        while stack:
            scoped = stack.pop(0)
            if scoped in visited:
                continue
            visited.add(scoped)
            base = by_scoped.get(scoped)
            if base is None:
                continue
            emit_for(base)
            stack.extend(i.name for i in base.children("Inherited"))
    while lines and lines[-1] == "":
        lines.pop()
    if not lines:
        lines.append("    pass")
    return _block(lines)


def map_skel_ops(value, ctx):
    node = ctx.node
    entries = []
    for op in _iter_methods(node):
        entries.append(f"({op.name!r}, '_op_{op.name}')")
    for attr in _iter_attributes(node):
        entries.append(f"('_get_{attr.name}', '_op_get_{attr.name}')")
        if attr.get("attributeQualifier") != "readonly":
            entries.append(f"('_set_{attr.name}', '_op_set_{attr.name}')")
    return "(" + ", ".join(entries) + ("," if entries else "") + ")"


def map_parents_tuple(value, ctx):
    node = ctx.node
    repo_ids = [
        child.get("repoId")
        for child in node.children("Inherited")
        if child.get("repoId")
    ]
    return "(" + ", ".join(repr(r) for r in repo_ids) + ("," if repo_ids else "") + ")"


def map_flat(value, ctx):
    return flat(value)


@register_pack
class PythonRmiPack(MappingPack):
    """Template pack for the executable Python mapping."""

    name = "python_rmi"
    language = "Python"
    description = (
        "Live Python mapping: generated stubs/skeletons run on the "
        "repro.heidirmi runtime over real transports"
    )
    main_template = "main.tmpl"
    type_table = PYTHON_TYPE_TABLE

    def variables(self, spec, est):
        """``pyInterfaceList`` aliases the base topological ordering:
        Python executes the module top to bottom, so base classes must
        be generated before their subclasses."""
        merged = super().variables(spec, est)
        merged["pyInterfaceList"] = merged["topoInterfaceList"]
        return merged

    def register_maps(self, registry):
        registry.register("PY::Flat", map_flat)
        registry.register("PY::EnumBody", map_enum_body)
        registry.register("PY::UnionBody", map_union_body)
        registry.register("PY::StructBody", map_struct_body)
        registry.register("PY::ExceptionBody", map_exception_body)
        registry.register("PY::AbstractMethods", map_abstract_methods)
        registry.register("PY::StubMethods", map_stub_methods)
        registry.register("PY::SkelMethods", map_skel_methods)
        registry.register("PY::SkelOps", map_skel_ops)
        registry.register("PY::ImplScaffold", map_impl_scaffold)
        registry.register("PY::ParentsTuple", map_parents_tuple)


def generate_module(spec, pack=None):
    """Generate, exec and return the mapping module namespace for *spec*.

    The namespace contains the generated classes (``Heidi_A_stub`` ...)
    and has already registered them with the global type registry.
    """
    pack = pack or PythonRmiPack()
    sink = pack.generate(spec)
    files = sink.files()
    (path, source), = files.items()
    namespace = {"__name__": f"repro.mappings.python_rmi._generated"}
    exec(compile(source, path, "exec"), namespace)
    return namespace

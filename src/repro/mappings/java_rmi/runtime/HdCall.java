/* HdCall.java — the Call object of the Java mapping (paper Fig. 4).
 *
 * A call accumulates typed tokens, sends one text-protocol line
 * through its connector, and exposes the reply tokens for typed
 * extraction — the same structure as the generated Tcl and Python
 * stubs use, so a Java client interoperates with the Python ORB.
 */

import java.io.IOException;
import java.util.ArrayList;
import java.util.List;
import java.util.Vector;

public final class HdCall {
    private final HdConnector connector;
    private final String header;
    private final boolean oneway;
    private final List<String> outTokens = new ArrayList<String>();
    private List<String> inTokens = new ArrayList<String>();
    private int position = 0;

    HdCall(HdConnector connector, String header, boolean oneway) {
        this.connector = connector;
        this.header = header;
        this.oneway = oneway;
    }

    /* -- marshalling -------------------------------------------------- */

    public void insertBoolean(boolean value) {
        outTokens.add(value ? "T" : "F");
    }

    public void insertLong(long value) {
        outTokens.add(Long.toString(value));
    }

    public void insertDouble(double value) {
        outTokens.add(Double.toString(value));
    }

    public void insertString(String value) {
        outTokens.add(HdWire.escape(value));
    }

    public void insertChar(char value) {
        outTokens.add(HdWire.escape(String.valueOf(value)));
    }

    public void insertEnum(String memberName) {
        outTokens.add(HdWire.escape(memberName));
    }

    public void insertObject(HdObjRef ref) {
        insertBoolean(false);  /* by-reference discriminator */
        outTokens.add(ref == null ? "nil" : HdWire.escape(ref.stringify()));
    }

    public void beginSeq() {
        outTokens.add("{");
    }

    public void endSeq() {
        outTokens.add("}");
    }

    public void insertStringSeq(Vector<String> values) {
        beginSeq();
        insertLong(values.size());
        for (String value : values) insertString(value);
        endSeq();
    }

    public void insertLongSeq(Vector<Long> values) {
        beginSeq();
        insertLong(values.size());
        for (Long value : values) insertLong(value.longValue());
        endSeq();
    }

    public void insertObjectSeq(Vector<HdObjRef> values) {
        beginSeq();
        insertLong(values.size());
        for (HdObjRef value : values) insertObject(value);
        endSeq();
    }

    /* -- I/O ------------------------------------------------------------- */

    public void send() throws HdRemoteException {
        StringBuilder line = new StringBuilder(header);
        for (String token : outTokens) {
            line.append(' ').append(token);
        }
        try {
            String reply = connector.exchange(line.toString(), oneway);
            if (oneway) {
                return;
            }
            String[] parts = reply.split(" ");
            if (parts.length < 2 || !parts[0].equals("RET")) {
                throw new HdRemoteException("Protocol",
                                            "malformed reply: " + reply);
            }
            if (parts[1].equals("OK")) {
                inTokens = new ArrayList<String>();
                for (int i = 2; i < parts.length; i++) {
                    inTokens.add(parts[i]);
                }
                position = 0;
                return;
            }
            String repoId = parts.length > 2 ? HdWire.unescape(parts[2]) : "";
            String detail = parts.length > 3 ? HdWire.unescape(parts[3]) : "";
            throw new HdRemoteException(repoId, detail);
        } catch (IOException error) {
            throw new HdRemoteException("Communication", error.toString());
        }
    }

    public void release() {
        outTokens.clear();
        inTokens.clear();
    }

    /* -- unmarshalling ------------------------------------------------------ */

    private String next() throws HdRemoteException {
        if (position >= inTokens.size()) {
            throw new HdRemoteException("Marshal", "ran out of reply tokens");
        }
        return inTokens.get(position++);
    }

    public boolean extractBoolean() throws HdRemoteException {
        String token = next();
        if (token.equals("T")) return true;
        if (token.equals("F")) return false;
        throw new HdRemoteException("Marshal", "expected boolean, got " + token);
    }

    public long extractLong() throws HdRemoteException {
        return Long.parseLong(next());
    }

    public double extractDouble() throws HdRemoteException {
        return Double.parseDouble(next());
    }

    public String extractString() throws HdRemoteException {
        return HdWire.unescape(next());
    }

    public char extractChar() throws HdRemoteException {
        return HdWire.unescape(next()).charAt(0);
    }

    public int extractEnum(String[] members) throws HdRemoteException {
        String token = HdWire.unescape(next());
        for (int i = 0; i < members.length; i++) {
            if (members[i].equals(token)) return i;
        }
        return Integer.parseInt(token);
    }

    public HdObjRef extractObject() throws HdRemoteException {
        boolean byValue = extractBoolean();
        if (byValue) {
            throw new HdRemoteException(
                "Marshal", "by-value objects are not supported in Java");
        }
        String token = next();
        if (token.equals("nil")) return null;
        return HdObjRef.parse(HdWire.unescape(token));
    }

    public void beginExtract() throws HdRemoteException {
        String token = next();
        if (!token.equals("{")) {
            throw new HdRemoteException("Marshal", "expected '{', got " + token);
        }
    }

    public void endExtract() throws HdRemoteException {
        String token = next();
        if (!token.equals("}")) {
            throw new HdRemoteException("Marshal", "expected '}', got " + token);
        }
    }

    public Vector<String> extractStringSeq() throws HdRemoteException {
        beginExtract();
        long count = extractLong();
        Vector<String> values = new Vector<String>();
        for (long i = 0; i < count; i++) values.add(extractString());
        endExtract();
        return values;
    }

    public Vector<Long> extractLongSeq() throws HdRemoteException {
        beginExtract();
        long count = extractLong();
        Vector<Long> values = new Vector<Long>();
        for (long i = 0; i < count; i++) values.add(extractLong());
        endExtract();
        return values;
    }

    public Vector<HdObjRef> extractObjectSeq() throws HdRemoteException {
        beginExtract();
        long count = extractLong();
        Vector<HdObjRef> values = new Vector<HdObjRef>();
        for (long i = 0; i < count; i++) values.add(extractObject());
        endExtract();
        return values;
    }
}

/* HdWire.java — token escaping for the HeidiRMI text protocol.
 *
 * Matches repro.heidirmi.textwire: UTF-8 bytes, every byte <= 0x20,
 * >= 0x7F or '%' percent-escaped; the empty string is the token "%e".
 */

import java.io.ByteArrayOutputStream;
import java.nio.charset.StandardCharsets;

public final class HdWire {

    private HdWire() {}

    public static String escape(String text) {
        if (text.isEmpty()) {
            return "%e";
        }
        byte[] bytes = text.getBytes(StandardCharsets.UTF_8);
        StringBuilder out = new StringBuilder(bytes.length);
        for (byte raw : bytes) {
            int b = raw & 0xFF;
            if (b <= 0x20 || b == 0x25 || b >= 0x7F) {
                out.append(String.format("%%%02X", b));
            } else {
                out.append((char) b);
            }
        }
        return out.toString();
    }

    public static String unescape(String token) {
        if (token.equals("%e")) {
            return "";
        }
        ByteArrayOutputStream out = new ByteArrayOutputStream(token.length());
        int index = 0;
        while (index < token.length()) {
            char ch = token.charAt(index);
            if (ch == '%') {
                if (index + 2 >= token.length() + 1) {
                    throw new IllegalArgumentException(
                        "truncated escape in token " + token);
                }
                String code = token.substring(index + 1, index + 3);
                out.write(Integer.parseInt(code, 16));
                index += 3;
            } else {
                out.write((byte) ch);
                index += 1;
            }
        }
        return new String(out.toByteArray(), StandardCharsets.UTF_8);
    }
}

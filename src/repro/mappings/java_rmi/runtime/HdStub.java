/* HdStub.java — generic client stub base for the Java mapping.
 *
 * "All stubs inherit from a base HdStub class which provides the
 * generic stub functionality" (paper, Section 3.1) — here: the object
 * reference and the connector the generated methods call through.
 */

public abstract class HdStub {
    protected final HdObjRef pb_ior_;
    protected final HdConnector pb_connector_;

    protected HdStub(HdObjRef ior, HdConnector connector) {
        this.pb_ior_ = ior;
        this.pb_connector_ = connector;
    }

    public HdObjRef ior() {
        return pb_ior_;
    }
}

/* HdConnector.java — cached connection to one bootstrap port.
 *
 * "Connections are cached and reused" (paper, Section 3.1): one socket
 * per host:port, reused across calls, reopened on failure.
 */

import java.io.BufferedReader;
import java.io.BufferedWriter;
import java.io.IOException;
import java.io.InputStreamReader;
import java.io.OutputStreamWriter;
import java.net.Socket;
import java.nio.charset.StandardCharsets;
import java.util.HashMap;
import java.util.Map;

public final class HdConnector {
    private static final Map<String, HdConnector> CACHE =
        new HashMap<String, HdConnector>();

    private final String host;
    private final int port;
    private Socket socket;
    private BufferedReader reader;
    private BufferedWriter writer;

    private HdConnector(String host, int port) {
        this.host = host;
        this.port = port;
    }

    public static synchronized HdConnector get(String host, int port) {
        String key = host + ":" + port;
        HdConnector connector = CACHE.get(key);
        if (connector == null) {
            connector = new HdConnector(host, port);
            CACHE.put(key, connector);
        }
        return connector;
    }

    public static HdConnector forRef(HdObjRef ref) {
        return get(ref.host, ref.port);
    }

    private void ensureOpen() throws IOException {
        if (socket != null && socket.isConnected() && !socket.isClosed()) {
            return;
        }
        socket = new Socket(host, port);
        socket.setTcpNoDelay(true);
        reader = new BufferedReader(new InputStreamReader(
            socket.getInputStream(), StandardCharsets.US_ASCII));
        writer = new BufferedWriter(new OutputStreamWriter(
            socket.getOutputStream(), StandardCharsets.US_ASCII));
    }

    /* A request call addressed at a stub's object (cf. Fig. 10's
     * "getRequestCall $this <op> <oneway>" in the Tcl mapping). */
    public HdCall getRequestCall(HdStub stub, String operation,
                                 boolean oneway) {
        String verb = oneway ? "ONEWAY" : "CALL";
        String header = verb + " " + HdWire.escape(stub.ior().stringify())
            + " " + HdWire.escape(operation);
        return new HdCall(this, header, oneway);
    }

    synchronized String exchange(String line, boolean oneway)
            throws IOException {
        ensureOpen();
        writer.write(line);
        writer.write('\n');
        writer.flush();
        if (oneway) {
            return "";
        }
        String reply = reader.readLine();
        if (reply == null) {
            close();
            throw new IOException("connection closed by peer");
        }
        return reply;
    }

    public synchronized void close() {
        try {
            if (socket != null) socket.close();
        } catch (IOException ignored) {
            /* already closing */
        }
        socket = null;
    }
}

/* HdObjRef.java — stringified object references for the Java mapping.
 *
 * The same three-part reference the paper describes (Section 3.1):
 * bootstrap URL, object identifier, object type, stringified as
 * "@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0".
 */

public final class HdObjRef {
    public final String protocol;
    public final String host;
    public final int port;
    public final String objectId;
    public final String typeId;

    public HdObjRef(String protocol, String host, int port,
                    String objectId, String typeId) {
        this.protocol = protocol;
        this.host = host;
        this.port = port;
        this.objectId = objectId;
        this.typeId = typeId;
    }

    public static HdObjRef parse(String text) {
        if (text == null || !text.startsWith("@")) {
            throw new IllegalArgumentException(
                "object reference must start with '@': " + text);
        }
        String body = text.substring(1);
        int firstHash = body.indexOf('#');
        int secondHash = body.indexOf('#', firstHash + 1);
        if (firstHash < 0 || secondHash < 0) {
            throw new IllegalArgumentException(
                "object reference needs url#oid#type parts: " + text);
        }
        String url = body.substring(0, firstHash);
        String oid = body.substring(firstHash + 1, secondHash);
        String type = body.substring(secondHash + 1);
        String[] parts = url.split(":", -1);
        if (parts.length != 3) {
            throw new IllegalArgumentException(
                "bootstrap URL must be protocol:host:port: " + url);
        }
        return new HdObjRef(parts[0], parts[1],
                            Integer.parseInt(parts[2]), oid, type);
    }

    public String stringify() {
        return "@" + protocol + ":" + host + ":" + port
            + "#" + objectId + "#" + typeId;
    }

    @Override
    public String toString() {
        return stringify();
    }
}

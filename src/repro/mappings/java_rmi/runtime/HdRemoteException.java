/* HdRemoteException.java — any remote failure surfaced to Java code.
 *
 * Declared IDL exceptions and system-level errors both arrive as
 * HdRemoteException; repoId carries the exception repository ID or the
 * error category.
 */

public class HdRemoteException extends Exception {
    public final String repoId;

    public HdRemoteException(String repoId, String message) {
        super(repoId + ": " + message);
        this.repoId = repoId;
    }
}

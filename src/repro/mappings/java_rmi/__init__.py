"""The HeidiRMI-compatible IDL→Java mapping (paper, Section 4.2).

"The class inheritance structure in our IDL-Java mapping was similar to
the HeidiRMI C++ mapping, but expanded multiple super-classes in order
to get around the unavailability of multiple inheritance in Java.  The
IDL-Java mapping we implemented also does not support default
parameters as the corresponding C++ mapping does."

The pack generates *runnable* Java: per-interface abstract classes
(first base extended, the rest expanded), enum classes (pre-Java-5 int
constants), struct classes with text-protocol marshalling, and client
stubs built on the shipped ``runtime/`` Java library — the generated
code compiles with javac and calls the Python HeidiRMI ORB over the
text protocol (the integration tests do exactly that).

Mapping decisions, documented:

- default parameter values are dropped (the paper says so explicitly);
- object references surface as ``HdObjRef`` in stub signatures (a
  caller wraps them in a typed stub when needed);
- pass-by-value (`incopy`) degrades to by-reference — the Java client
  side has no serializable registry;
- sequences map to ``java.util.Vector`` (it is 2000) with typed
  helpers for string/integer/objref elements.
"""

import os

from repro.mappings.base import MappingPack
from repro.mappings.registry import register_pack

JAVA_TYPE_TABLE = {
    "boolean": "boolean",
    "char": "char",
    "wchar": "char",
    "octet": "byte",
    "short": "short",
    "unsigned short": "short",
    "long": "int",
    "unsigned long": "int",
    "long long": "long",
    "unsigned long long": "long",
    "float": "float",
    "double": "double",
    "long double": "double",
    "string": "String",
    "wstring": "String",
    "any": "Object",
    "void": "void",
    "Object": "HdObjRef",
}

_CATEGORY_TO_TABLE_KEY = {
    "boolean": "boolean",
    "char": "char",
    "wchar": "wchar",
    "octet": "octet",
    "short": "short",
    "ushort": "unsigned short",
    "long": "long",
    "ulong": "unsigned long",
    "longlong": "long long",
    "ulonglong": "unsigned long long",
    "float": "float",
    "double": "double",
    "longdouble": "long double",
    "string": "string",
    "wstring": "wstring",
    "any": "any",
    "void": "void",
}

#: Integer categories that extract via extractLong + a narrowing cast.
_INT_CATEGORIES = {
    "octet": "byte",
    "short": "short",
    "ushort": "short",
    "long": "int",
    "ulong": "int",
    "longlong": "long",
    "ulonglong": "long",
}


def map_class_name(value):
    """``Heidi::A`` → ``HdA`` — same naming scheme as the C++ mapping."""
    return "Hd" + str(value).split("::")[-1]


class _View:
    """Resolved category/name view of a typed EST node (alias-aware)."""

    def __init__(self, node):
        self.node = node
        category = node.get("type")
        if category == "alias" and node.get("aliasedCategory"):
            category = node.get("aliasedCategory")
        self.category = category

    def spelling(self):
        for role in ("paramType", "returnType", "attributeType",
                     "memberType", "elementType"):
            value = self.node.get(role)
            if value is not None:
                return value
        return ""

    def element(self):
        children = self.node.children("ElementType")
        return _View(children[0]) if children else None


def _java_type(view):
    category = view.category
    if category == "objref":
        return "HdObjRef"
    if category == "enum":
        return "int"
    if category in ("struct", "union"):
        return map_class_name(view.spelling())
    if category == "sequence":
        element = view.element()
        if element is not None and element.category == "objref":
            return "java.util.Vector<HdObjRef>"
        if element is not None and element.category in _INT_CATEGORIES:
            return "java.util.Vector<Long>"
        return "java.util.Vector<String>"
    key = _CATEGORY_TO_TABLE_KEY.get(category)
    if key is not None and key in JAVA_TYPE_TABLE:
        return JAVA_TYPE_TABLE[key]
    return map_class_name(view.spelling())


def map_type(value, ctx):
    return _java_type(_View(ctx.node)) if ctx.node is not None else str(value)


def _insert_statement(view, name):
    category = view.category
    if category == "boolean":
        return f"c.insertBoolean({name});"
    if category in _INT_CATEGORIES:
        return f"c.insertLong({name});"
    if category in ("float", "double", "longdouble"):
        return f"c.insertDouble({name});"
    if category in ("char", "wchar"):
        return f"c.insertChar({name});"
    if category in ("string", "wstring"):
        return f"c.insertString({name});"
    if category == "enum":
        enum_class = map_class_name(view.spelling())
        return f"c.insertEnum({enum_class}.MEMBERS[{name}]);"
    if category == "objref":
        return f"c.insertObject({name});"
    if category == "struct":
        return f"{name}.insertInto(c);"
    if category == "sequence":
        element = view.element()
        if element is not None and element.category == "objref":
            return f"c.insertObjectSeq({name});"
        if element is not None and element.category in _INT_CATEGORIES:
            return f"c.insertLongSeq({name});"
        return f"c.insertStringSeq({name});"
    return f"/* unsupported insert for {category} */"


def _extract_expression(view):
    category = view.category
    if category == "boolean":
        return "c.extractBoolean()"
    if category in _INT_CATEGORIES:
        java = _INT_CATEGORIES[category]
        return f"({java}) c.extractLong()" if java != "long" \
            else "c.extractLong()"
    if category in ("float",):
        return "(float) c.extractDouble()"
    if category in ("double", "longdouble"):
        return "c.extractDouble()"
    if category in ("char", "wchar"):
        return "c.extractChar()"
    if category in ("string", "wstring"):
        return "c.extractString()"
    if category == "enum":
        enum_class = map_class_name(view.spelling())
        return f"c.extractEnum({enum_class}.MEMBERS)"
    if category == "objref":
        return "c.extractObject()"
    if category == "struct":
        return f"{map_class_name(view.spelling())}.extractFrom(c)"
    if category == "sequence":
        element = view.element()
        if element is not None and element.category == "objref":
            return "c.extractObjectSeq()"
        if element is not None and element.category in _INT_CATEGORIES:
            return "c.extractLongSeq()"
        return "c.extractStringSeq()"
    return "null /* unsupported */"


def map_insert(value, ctx):
    """Insert statement for the parameter under consideration."""
    return _insert_statement(_View(ctx.node), ctx.node.name)


def map_oneway_flag(value, ctx):
    return "true" if ctx.node is not None and ctx.node.get("oneway") else "false"


def map_stub_return(value, ctx):
    """Post-send result extraction line ('' for void)."""
    view = _View(ctx.node)
    if view.category == "void":
        return "c.release();"
    java = _java_type(view)
    return f"{java} _result = {_extract_expression(view)};\n        c.release();"


def map_stub_result(value, ctx):
    view = _View(ctx.node)
    if view.category == "void":
        return "// void return"
    return "return _result;"


def map_attr_extract(value, ctx):
    view = _View(ctx.node)
    return _extract_expression(view)


def map_attr_insert(value, ctx):
    """Insert statement for an attribute setter's `value` argument."""
    return _insert_statement(_View(ctx.node), "value")


def map_cap_name(value, ctx):
    """The node's own name, capitalized (getButton-style accessors)."""
    name = ctx.node.name if ctx.node is not None else str(value)
    return name[:1].upper() + name[1:]


def map_struct_body(value, ctx):
    """Fields + insertInto/extractFrom for a generated struct class."""
    node = ctx.node
    members = node.children("Member")
    lines = []
    for member in members:
        lines.append(f"    public {_java_type(_View(member))} {member.name};")
    lines.append("")
    lines.append("    public void insertInto(HdCall c) throws HdRemoteException {")
    lines.append("        c.beginSeq();")
    for member in members:
        lines.append("        "
                     + _insert_statement(_View(member), "this." + member.name))
    lines.append("        c.endSeq();")
    lines.append("    }")
    lines.append("")
    lines.append(f"    public static {map_class_name(node.get('scopedName'))} "
                 "extractFrom(HdCall c) throws HdRemoteException {")
    lines.append(f"        {map_class_name(node.get('scopedName'))} _s = "
                 f"new {map_class_name(node.get('scopedName'))}();")
    lines.append("        c.beginExtract();")
    for member in members:
        lines.append(f"        _s.{member.name} = "
                     f"{_extract_expression(_View(member))};")
    lines.append("        c.endExtract();")
    lines.append("        return _s;")
    lines.append("    }")
    return "\n".join(lines)


@register_pack
class JavaRmiPack(MappingPack):
    """Template pack for the HeidiRMI Java mapping."""

    name = "java_rmi"
    language = "Java"
    description = (
        "HeidiRMI Java mapping: flattened multiple inheritance, no "
        "default parameters, javac-compilable client stubs over the "
        "text protocol (paper Section 4.2)"
    )
    main_template = "main.tmpl"
    type_table = JAVA_TYPE_TABLE

    def static_assets(self):
        """The Java client runtime the generated stubs compile against."""
        assets = {}
        runtime_dir = os.path.join(self.template_dir(), "runtime")
        for name in sorted(os.listdir(runtime_dir)):
            if name.endswith(".java"):
                with open(os.path.join(runtime_dir, name),
                          encoding="utf-8") as handle:
                    assets[name] = handle.read()
        return assets

    def register_maps(self, registry):
        registry.register_simple("Java::MapClassName", map_class_name)
        registry.register("Java::MapType", map_type)
        registry.register("Java::MapReturnType", map_type)
        registry.register("Java::MapInsert", map_insert)
        registry.register("Java::MapOnewayFlag", map_oneway_flag)
        registry.register("Java::MapStubReturn", map_stub_return)
        registry.register("Java::MapStubResult", map_stub_result)
        registry.register("Java::MapAttrExtract", map_attr_extract)
        registry.register("Java::MapAttrInsert", map_attr_insert)
        registry.register("Java::MapCapName", map_cap_name)
        registry.register("Java::MapStructBody", map_struct_body)

"""Pack registry: look mappings up by name (CLI, tests, benchmarks)."""

from repro.heidirmi.errors import HeidiRmiError

_PACKS = {}


def register_pack(pack_class):
    """Register a MappingPack subclass; usable as a class decorator."""
    _PACKS[pack_class.name] = pack_class
    return pack_class


_BUILTIN_MODULES = (
    "repro.mappings.heidi_cpp",
    "repro.mappings.corba_cpp",
    "repro.mappings.java_rmi",
    "repro.mappings.tcl_orb",
    "repro.mappings.python_rmi",
)


def _ensure_builtin_packs():
    # Imported lazily to avoid import cycles at package import time.
    # Packs still under construction are skipped rather than fatal, so a
    # partial checkout remains usable.
    import importlib

    for module_name in _BUILTIN_MODULES:
        try:
            importlib.import_module(module_name)
        except ModuleNotFoundError:
            continue


def get_pack(name):
    """A fresh instance of the named pack."""
    _ensure_builtin_packs()
    pack_class = _PACKS.get(name)
    if pack_class is None:
        raise KeyError(
            f"unknown mapping pack {name!r}; available: {sorted(_PACKS)}"
        )
    return pack_class()


def all_packs():
    """Names of every registered pack."""
    _ensure_builtin_packs()
    return sorted(_PACKS)

/* HdSkel.hh — generic server-side ORB functionality.
 *
 * HeidiRMI skeletons delegate to the implementation object (Fig. 2)
 * and dispatch recursively up the skeleton class hierarchy
 * (Section 3.1).  The base class provides that generic behaviour for
 * the generated skeleton classes.
 */

#ifndef HD_SKEL_HH
#define HD_SKEL_HH

#include <HdStub.hh>
#include <cstring>

class HdSkel {
public:
    HdSkel() {}
    virtual ~HdSkel() {}

    /* Dispatch an incoming request; XFalse means "not handled here",
     * at which point a derived class delegates to its other bases. */
    virtual XBool dispatch(HdCall& call, HdReply& reply) {
        (void)call;
        (void)reply;
        return XFalse;
    }
};

#endif /* HD_SKEL_HH */

/* HdStub.hh — generic client-side ORB functionality.
 *
 * "All stubs inherit from a base HdStub class which provides the
 * generic stub functionality." (paper, Section 3.1)  The Call object
 * carries the marshalling surface of Fig. 4; this header gives the
 * generated C++ everything it references, implemented far enough for a
 * real compiler to build it.
 */

#ifndef HD_STUB_HH
#define HD_STUB_HH

#include <HdTypes.hh>

/* A stringified object reference: @proto:host:port#oid#type. */
class HdObjRef {
public:
    HdObjRef() {}
    explicit HdObjRef(const HdString& stringified)
        : stringified_(stringified) {}
    const HdString& stringified() const { return stringified_; }

private:
    HdString stringified_;
};

const HdObjRef HdNilRef;

inline XBool HdIsNil(const HdObjRef& ref) {
    return ref.stringified().length() == 0 ? XTrue : XFalse;
}

/* The reply side of an invocation: typed extraction. */
class HdReply {
public:
    XBool getBool() { return XFalse; }
    char getChar() { return '\0'; }
    long getLong() { return 0; }
    unsigned long getULong() { return 0; }
    long long getLongLong() { return 0; }
    short getShort() { return 0; }
    unsigned short getUShort() { return 0; }
    float getFloat() { return 0; }
    double getDouble() { return 0; }
    int getEnum() { return 0; }
    HdString getString() { return HdString(); }
    void* getObject() { return 0; }
    void* getAny() { return 0; }
    void begin(const char*) {}
    void end() {}

    /* Skeleton-side marshalling of results shares this surface. */
    void putBool(XBool) {}
    void putChar(char) {}
    void putLong(long) {}
    void putULong(unsigned long) {}
    void putLongLong(long long) {}
    void putShort(short) {}
    void putUShort(unsigned short) {}
    void putFloat(float) {}
    void putDouble(double) {}
    void putEnum(int) {}
    void putString(const HdString&) {}
    void putObject(const void*) {}
    void putObjRef(const HdObjRef&) {}
    void putAny(const void*) {}
};

/* The Call object of Fig. 4: header + marshalled parameters. */
class HdCall {
public:
    HdCall(const HdObjRef& target, const char* operation)
        : target_(target), operation_(operation) {}

    void putBool(XBool) {}
    void putChar(char) {}
    void putWChar(char) {}
    void putLong(long) {}
    void putULong(unsigned long) {}
    void putLongLong(long long) {}
    void putULongLong(unsigned long long) {}
    void putShort(short) {}
    void putUShort(unsigned short) {}
    void putFloat(float) {}
    void putDouble(double) {}
    void putLongDouble(long double) {}
    void putEnum(int) {}
    void putString(const HdString&) {}
    void putWString(const HdString&) {}
    void putObject(const void*) {}
    void putObjectByValue(const void*) {}
    void putObjRef(const HdObjRef&) {}
    void putAny(const void*) {}
    void begin(const char*) {}
    void end() {}

    XBool getBool() { return XFalse; }
    char getChar() { return '\0'; }
    char getWChar() { return '\0'; }
    long getLong() { return 0; }
    unsigned long getULong() { return 0; }
    long long getLongLong() { return 0; }
    unsigned long long getULongLong() { return 0; }
    short getShort() { return 0; }
    unsigned short getUShort() { return 0; }
    float getFloat() { return 0; }
    double getDouble() { return 0; }
    long double getLongDouble() { return 0; }
    int getEnum() { return 0; }
    HdString getString() { return HdString(); }
    HdString getWString() { return HdString(); }
    void* getObject() { return 0; }
    void* getAny() { return 0; }
    HdObjRef getObjRef() { return HdObjRef(); }
    const char* operation() const { return operation_; }

    HdReply invoke() { return HdReply(); }

private:
    HdObjRef target_;
    const char* operation_;
};

/* Generic stub base. */
class HdStub {
public:
    explicit HdStub(const HdObjRef& ref) : ref_(ref) {}
    virtual ~HdStub() {}
    const HdObjRef& objRef() const { return ref_; }

private:
    HdObjRef ref_;
};

/* ORB-library entry points the marshal helpers use. */
HdObjRef HdExport(const void* impl, const char* typeId);
void* HdCreateStub(const HdObjRef& ref);
XBool HdIsA(const void* obj, const char* typeId);
HdString HdTypeIdOf(const void* obj);

#endif /* HD_STUB_HH */

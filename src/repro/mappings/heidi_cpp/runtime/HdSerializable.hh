/* HdSerializable.hh — pass-by-value support (the incopy extension).
 *
 * "Whether a particular object has actually implemented the required
 * marshaling/unmarshaling primitives is determined by testing if it
 * implements the HdSerializable interface." (paper, Section 3.1)
 */

#ifndef HD_SERIALIZABLE_HH
#define HD_SERIALIZABLE_HH

#include <HdStub.hh>

class HdSerializable {
public:
    static const char* TypeId;

    virtual ~HdSerializable() {}

    /* Write this object's state into the call. */
    virtual void marshal(HdCall& call) = 0;

    /* Rebuild a copy registered under typeId from the call. */
    static HdSerializable* Unmarshal(const HdString& typeId, HdCall& call);
};

#endif /* HD_SERIALIZABLE_HH */

/* HdTypes.hh — the Heidi data types the custom mapping relies on.
 *
 * "The HeidiRMI mapping only utilizes Heidi defined data types, which
 * simplifies the use of legacy Heidi code." (paper, Section 3)
 *
 * This header is the C++ face of that claim: XBool, HdString, HdList
 * and friends, with no CORBA types anywhere.  It is a compact but
 * genuine implementation — the compile checks in the test suite build
 * generated code against it with a real C++ compiler.
 */

#ifndef HD_TYPES_HH
#define HD_TYPES_HH

#include <cstddef>
#include <cstring>

/* The Heidi boolean. */
typedef int XBool;
const XBool XTrue = 1;
const XBool XFalse = 0;

/* A minimal string value type. */
class HdString {
public:
    HdString() : data_(empty_()) {}
    HdString(const char* text) { assign_(text); }
    HdString(const HdString& other) { assign_(other.data_); }
    HdString& operator=(const HdString& other) {
        if (this != &other) {
            release_();
            assign_(other.data_);
        }
        return *this;
    }
    ~HdString() { release_(); }

    const char* c_str() const { return data_; }
    std::size_t length() const { return std::strlen(data_); }
    bool operator==(const HdString& other) const {
        return std::strcmp(data_, other.data_) == 0;
    }

private:
    static char* empty_() {
        char* buffer = new char[1];
        buffer[0] = '\0';
        return buffer;
    }
    void assign_(const char* text) {
        if (text == 0) {
            data_ = empty_();
            return;
        }
        data_ = new char[std::strlen(text) + 1];
        std::strcpy(data_, text);
    }
    void release_() { delete[] data_; }
    char* data_;
};

/* The Heidi growable list (sequence mapping target, cf. Fig. 3). */
template <class T>
class HdList {
public:
    HdList() : items_(0), size_(0), capacity_(0) {}
    ~HdList() { delete[] items_; }

    void append(const T& item) {
        if (size_ == capacity_) grow_();
        items_[size_++] = item;
    }
    std::size_t size() const { return size_; }
    T& operator[](std::size_t index) { return items_[index]; }
    const T& operator[](std::size_t index) const { return items_[index]; }

private:
    HdList(const HdList&);            /* lists pass by pointer in the */
    HdList& operator=(const HdList&); /* mapping, never by value      */
    void grow_() {
        std::size_t next = capacity_ == 0 ? 8 : capacity_ * 2;
        T* grown = new T[next];
        for (std::size_t i = 0; i < size_; ++i) grown[i] = items_[i];
        delete[] items_;
        items_ = grown;
        capacity_ = next;
    }
    T* items_;
    std::size_t size_;
    std::size_t capacity_;
};

/* Iterator companion (Fig. 3 generates HdListIterator typedefs). */
template <class T>
class HdListIterator {
public:
    explicit HdListIterator(const HdList<T>& list)
        : list_(&list), index_(0) {}
    bool more() const { return index_ < list_->size(); }
    const T& next() { return (*list_)[index_++]; }

private:
    const HdList<T>* list_;
    std::size_t index_;
};

/* Opaque value container (the `any` mapping target). */
class HdAny {
public:
    HdAny() : payload_(0) {}
    void* payload_;
};

/* Root of remote-accessible Heidi objects. */
class HdObject {
public:
    virtual ~HdObject() {}
};

#endif /* HD_TYPES_HH */

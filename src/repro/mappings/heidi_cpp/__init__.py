"""The HeidiRMI custom IDL→C++ mapping (paper, Section 3.1 and Fig. 3).

No CORBA-specific types appear in generated code: primitive IDL types
map to primitive C++ types, ``sequence`` and ``boolean`` map to the
Heidi-specific ``HdList`` and ``XBool``, interface ``Heidi::A`` maps to
class ``HdA``, default parameters map to C++ default parameters, and
skeletons *delegate* to the implementation class instead of being
inherited by it.
"""

from repro.mappings.base import MappingPack
from repro.mappings.registry import register_pack

#: IDL primitive → Heidi C++ type (the "Alternate C++ Mapping" column of
#: Table 1, completed for all primitives).
HEIDI_TYPE_TABLE = {
    "boolean": "XBool",
    "char": "char",
    "wchar": "wchar_t",
    "octet": "unsigned char",
    "short": "short",
    "unsigned short": "unsigned short",
    "long": "long",
    "unsigned long": "unsigned long",
    "long long": "long long",
    "unsigned long long": "unsigned long long",
    "float": "float",
    "double": "double",
    "long double": "long double",
    "string": "HdString",
    "wstring": "HdWString",
    "any": "HdAny*",
    "void": "void",
    "Object": "HdObject*",
}

_CATEGORY_TO_TABLE_KEY = {
    "boolean": "boolean",
    "char": "char",
    "wchar": "wchar",
    "octet": "octet",
    "short": "short",
    "ushort": "unsigned short",
    "long": "long",
    "ulong": "unsigned long",
    "longlong": "long long",
    "ulonglong": "unsigned long long",
    "float": "float",
    "double": "double",
    "longdouble": "long double",
    "string": "string",
    "wstring": "wstring",
    "any": "any",
    "void": "void",
    "objref": None,
}

#: Marshalling method on the Heidi C++ Call object, per category.
_PUT_METHOD = {
    "boolean": "putBool",
    "char": "putChar",
    "wchar": "putWChar",
    "octet": "putOctet",
    "short": "putShort",
    "ushort": "putUShort",
    "long": "putLong",
    "ulong": "putULong",
    "longlong": "putLongLong",
    "ulonglong": "putULongLong",
    "float": "putFloat",
    "double": "putDouble",
    "longdouble": "putLongDouble",
    "string": "putString",
    "wstring": "putWString",
    "enum": "putEnum",
}


def map_class_name(value):
    """``Heidi::A`` → ``HdA`` (strip scope, prefix Hd)."""
    simple = str(value).split("::")[-1]
    return "Hd" + simple


def _element_type(ctx):
    """The mapped element type of a sequence node's ElementType child."""
    children = ctx.node.children("ElementType") if ctx.node is not None else []
    if not children:
        return "HdAny*"
    element = children[0]
    category = element.get("type")
    if category in ("objref", "enum", "alias", "struct", "union"):
        return map_class_name(element.get("elementType"))
    key = _CATEGORY_TO_TABLE_KEY.get(category)
    return HEIDI_TYPE_TABLE.get(key, "HdAny*")


def map_type(value, ctx):
    """IDL type spelling → Heidi C++ type, using the node's category."""
    category = ctx.prop("type")
    if category == "objref":
        return map_class_name(value) + "*"
    if category in ("alias", "struct", "union"):
        return map_class_name(value) + "*"
    if category == "enum":
        return map_class_name(value)
    if category == "sequence":
        return f"HdList<{_element_type(ctx)}>*"
    if category == "array":
        return map_class_name(value) + "*"
    key = _CATEGORY_TO_TABLE_KEY.get(category)
    if key is not None and key in HEIDI_TYPE_TABLE:
        return HEIDI_TYPE_TABLE[key]
    return map_class_name(value)


def map_default(value, ctx):
    """IDL default-value spelling → C++ constant (Fig. 3: Start, XTrue)."""
    text = str(value)
    if text == "TRUE":
        return "XTrue"
    if text == "FALSE":
        return "XFalse"
    if "::" in text:
        return text.split("::")[-1]
    return text


_COMPOSITE = ("objref", "struct", "union", "alias", "sequence", "array")


def _spelling(ctx):
    """The node's IDL type spelling, whatever role the node plays."""
    for role in ("paramType", "returnType", "attributeType", "memberType",
                 "elementType", "constType"):
        value = ctx.node.get(role) if ctx.node is not None else None
        if value is not None:
            return value
    return ""


def map_put(value, ctx):
    """A C++ marshalling statement for the parameter under consideration.

    Synthesized entirely from the node context, so it can be attached to
    any variable name in a ``-map`` modifier.
    """
    category = ctx.node.get("type") if ctx.node is not None else ""
    name = ctx.node.get("paramName") if ctx.node is not None else None
    name = name or "value"
    direction = ctx.node.get("getType", "in") if ctx.node is not None else "in"
    if category in _COMPOSITE:
        if direction == "incopy":
            return f"call.putObjectByValue({name});"
        return f"call.putObject({name});"
    method = _PUT_METHOD.get(category, "putAny")
    return f"call.{method}({name});"


def map_get(value, ctx):
    """A C++ unmarshalling expression for the parameter."""
    category = ctx.node.get("type") if ctx.node is not None else ""
    if category in _COMPOSITE:
        return f"({map_type(_spelling(ctx), ctx)}) call.getObject()"
    method = _PUT_METHOD.get(category, "putAny").replace("put", "get", 1)
    if category == "enum":
        # C++ forbids the implicit int→enum conversion.
        return f"({map_type(_spelling(ctx), ctx)}) call.{method}()"
    return f"call.{method}()"


def map_return_put(value, ctx):
    """Marshal the implementation result into the reply (skeleton side)."""
    category = ctx.node.get("type") if ctx.node is not None else ""
    if category == "void":
        return "// void return"
    if category in _COMPOSITE:
        return "reply.putObject(result);"
    method = _PUT_METHOD.get(category, "putAny")
    return f"reply.{method}(result);"


def map_return_get(value, ctx):
    """Unmarshal the reply into the stub's return value (client side)."""
    category = ctx.node.get("type") if ctx.node is not None else ""
    if category == "void":
        return "// void return"
    if category in _COMPOSITE:
        return f"return ({map_type(_spelling(ctx), ctx)}) reply.getObject();"
    method = _PUT_METHOD.get(category, "putAny").replace("put", "get", 1)
    if category == "enum":
        return f"return ({map_type(_spelling(ctx), ctx)}) reply.{method}();"
    return f"return reply.{method}();"


@register_pack
class HeidiCppPack(MappingPack):
    """Template pack for the HeidiRMI C++ mapping."""

    name = "heidi_cpp"
    language = "C++"
    description = (
        "HeidiRMI custom C++ mapping: Hd-prefixed classes, Heidi data "
        "types, default parameters, delegation skeletons (paper Fig. 3)"
    )
    main_template = "main.tmpl"
    type_table = HEIDI_TYPE_TABLE

    def static_assets(self):
        """The generic ORB library headers generated code compiles against."""
        import os

        assets = {}
        runtime_dir = os.path.join(self.template_dir(), "runtime")
        for name in sorted(os.listdir(runtime_dir)):
            if name.endswith(".hh"):
                with open(os.path.join(runtime_dir, name), encoding="utf-8") as f:
                    assets[os.path.join("runtime", name)] = f.read()
        return assets

    def register_maps(self, registry):
        registry.register_simple("CPP::MapClassName", map_class_name)
        registry.register("CPP::MapType", map_type)
        registry.register("CPP::MapReturnType", map_type)
        registry.register("CPP::MapDefault", map_default)
        registry.register("CPP::MapPut", map_put)
        registry.register("CPP::MapGet", map_get)
        registry.register("CPP::MapReturnPut", map_return_put)
        registry.register("CPP::MapReturnGet", map_return_get)

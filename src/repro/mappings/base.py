"""The MappingPack base class.

A pack bundles everything needed to customize one IDL mapping:

- template sources (``.tmpl`` files next to the pack module),
- map functions registered under the pack's namespace
  (``CPP::MapClassName``-style names),
- a primitive type table (drives the Table 1 reproduction),
- optional static runtime assets (the Tcl pack ships its ORB library).

``generate`` runs the full two-stage pipeline: IDL AST → EST → compiled
template (cached) → output files.
"""

import os

from repro.est import build_est
from repro.est.node import Ast
from repro.templates.compiler import compile_template
from repro.templates.maps import BUILTIN_MAPS, MapRegistry
from repro.templates.runtime import Runtime


def _topological_interfaces(est):
    """Interface nodes ordered so every base precedes its subclasses."""
    if est is None:
        return []
    interfaces = [node for node in est.walk() if node.kind == "Interface"]
    by_scoped = {node.get("scopedName"): node for node in interfaces}
    ordered = []
    visiting = set()

    def visit(node):
        if node in ordered or id(node) in visiting:
            return
        visiting.add(id(node))
        for inherited in node.children("Inherited"):
            base_node = by_scoped.get(inherited.name)
            if base_node is not None:
                visit(base_node)
        visiting.discard(id(node))
        ordered.append(node)

    for node in interfaces:
        visit(node)
    return ordered


class MappingPack:
    """One IDL→language mapping: templates + map functions + type table."""

    #: Unique pack name used by the registry and CLI.
    name = "?"
    #: Human-readable target language.
    language = "?"
    description = ""
    #: The entry template (must exist next to the pack module).
    main_template = "main.tmpl"
    #: IDL primitive spelling → target type spelling (Table 1 material).
    type_table = {}
    #: Scoped operation names (``"Mod::Iface::op"``) the pack declares
    #: retry-safe.  Generated stubs mark these calls ``idempotent=True``
    #: so a configured RetryPolicy may transparently re-send them after
    #: a transport failure whose outcome is unknown.  Declaring an
    #: operation whose IDL signature has ``out``/``inout`` parameters
    #: here is retry-unsafe and trips lint rule MAP004
    #: (:func:`repro.lint.mapping_rules.lint_pack_idempotence`).
    idempotent_operations = ()

    def __init__(self):
        self._template_cache = {}
        self.maps = MapRegistry(parent=BUILTIN_MAPS)
        self.register_maps(self.maps)

    # -- hooks for concrete packs ------------------------------------------

    def register_maps(self, registry):
        """Register this pack's map functions; override in subclasses."""

    def template_dir(self):
        """Directory holding the pack's ``.tmpl`` files."""
        import inspect

        return os.path.dirname(inspect.getfile(type(self)))

    def variables(self, spec, est):
        """Extra template globals; override to add pack-specific ones.

        Besides the file names, every pack gets ``topoInterfaceList``:
        the EST's Interface nodes sorted so bases precede subclasses.
        Languages where a base class must be *defined* before use (C++,
        Python, Java) iterate it instead of ``allInterfaceList``.
        """
        filename = getattr(spec, "filename", "") or ""
        base = os.path.basename(filename)
        if not base or base.startswith("<"):
            base = "generated.idl"
        basename = base[:-4] if base.endswith(".idl") else base
        return {
            "basename": basename,
            "idlFile": base,
            "topoInterfaceList": _topological_interfaces(est),
        }

    # -- template machinery -----------------------------------------------------

    def load_template_source(self, template_name):
        path = os.path.join(self.template_dir(), template_name)
        if not os.path.isfile(path):
            raise KeyError(template_name)
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    def compiled(self, template_name=None):
        """The compiled template (step 1 output), cached per pack."""
        template_name = template_name or self.main_template
        compiled = self._template_cache.get(template_name)
        if compiled is None:
            source = self.load_template_source(template_name)
            compiled = compile_template(
                source,
                name=f"{self.name}/{template_name}",
                loader=self.load_template_source,
            )
            self._template_cache[template_name] = compiled
        return compiled

    # -- generation ---------------------------------------------------------------

    def generate(self, spec, template_name=None, variables=None, est=None,
                 strict=False):
        """Generate code for a parsed Specification (or prebuilt EST).

        *strict* is forwarded to the :class:`Runtime`: an undefined
        ``${var}`` raises instead of substituting "".  Returns the
        :class:`repro.templates.output.OutputSink`; use ``sink.files()``
        for the generated files or ``sink.write_to``.
        """
        if est is None:
            est = spec if isinstance(spec, Ast) else build_est(spec)
        merged_vars = self.variables(spec, est)
        if variables:
            merged_vars.update(variables)
        runtime = Runtime(est, maps=self.maps.child(), variables=merged_vars,
                          strict=strict)
        compiled = self.compiled(template_name)
        compiled.run(runtime)
        sink = runtime.sink
        for path, text in self.static_assets().items():
            sink.open_file(path)
            sink.write(text)
            sink.close_file()
        return sink

    def static_assets(self):
        """Extra files emitted verbatim alongside generated code."""
        return {}

    # -- introspection ---------------------------------------------------------------

    def describe(self):
        return {
            "name": self.name,
            "language": self.language,
            "description": self.description,
            "templates": sorted(
                entry
                for entry in os.listdir(self.template_dir())
                if entry.endswith(".tmpl")
            ),
            "maps": sorted(self.maps.names()),
        }

"""Compiled-template cache.

"The first step of the code-generation stage need only be performed
once for a particular code-generation template" (paper, Section 4.1).
The cache keys on the template source text, so editing a template
invalidates its entry naturally; entries hold the compiled generator
(the step-1 output) ready for repeated step-2 executions.
"""

import hashlib
import threading

from repro.templates.compiler import compile_template


class TemplateCache:
    """Source-keyed cache of compiled templates, with hit statistics."""

    def __init__(self, max_entries=256):
        self._entries = {}
        self._order = []
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self.stats = {"hits": 0, "misses": 0}

    @staticmethod
    def _key(source, name):
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        return (name, digest)

    def get(self, source, name="<template>", loader=None):
        """The compiled template for *source*, compiling on first use."""
        key = self._key(source, name)
        with self._lock:
            compiled = self._entries.get(key)
            if compiled is not None:
                self.stats["hits"] += 1
                return compiled
        compiled = compile_template(source, name=name, loader=loader)
        with self._lock:
            self.stats["misses"] += 1
            if key not in self._entries:
                self._entries[key] = compiled
                self._order.append(key)
                while len(self._order) > self._max_entries:
                    evicted = self._order.pop(0)
                    self._entries.pop(evicted, None)
        return compiled

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._order.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)


#: Shared process-wide cache used by the CLI.
GLOBAL_TEMPLATE_CACHE = TemplateCache()

"""The full compiler pipeline with every stage hand-off observable.

The paper's architecture (Fig. 6)::

    IDL source ──parser──▶ EST ──emit──▶ EST program (Python, cf. Fig. 8)
                                             │ exec
    template ──compile──▶ generator program ─┴─▶ generated mapping files

Each arrow is a method here, so the Fig. 6 bench can show the artifact
produced at every stage, and the EST-program hand-off can be measured
against re-parsing (the paper's efficiency argument in Section 4.1).
"""

import time
from dataclasses import dataclass, field

from repro.est import build_est, emit_program, load_program
from repro.idl import parse as parse_idl
from repro.mappings.registry import get_pack
from repro.templates.runtime import Runtime


@dataclass
class CompileResult:
    """Everything a full pipeline run produced."""

    spec: object
    est: object
    est_program: str
    files: dict
    #: Seconds spent in each stage, keyed by stage name.
    timings: dict = field(default_factory=dict)


class Pipeline:
    """A configured compiler: one mapping pack, reusable across files."""

    def __init__(self, pack="heidi_cpp", use_est_program=False):
        self.pack = get_pack(pack) if isinstance(pack, str) else pack
        #: When true, the EST crosses stages as an executable program
        #: (exactly the paper's two-stage hand-off); when false it is
        #: passed as the in-process object (the merged design the paper
        #: plans as future work).
        self.use_est_program = use_est_program

    # -- individual stages -------------------------------------------------

    def parse(self, source, filename="<string>", include_paths=()):
        return parse_idl(source, filename=filename, include_paths=include_paths)

    def build_est(self, spec):
        return build_est(spec)

    def emit_est_program(self, est):
        return emit_program(est)

    def load_est_program(self, program):
        return load_program(program)

    def compile_template(self, template_name=None):
        """Step 1 of code generation; cached inside the pack."""
        return self.pack.compiled(template_name)

    def generate(self, spec, est=None, variables=None):
        """Step 2: run the compiled template against the EST."""
        sink = self.pack.generate(spec, est=est, variables=variables)
        return sink.files()

    # -- end to end -----------------------------------------------------------

    def run(self, source, filename="<string>", include_paths=()):
        """Full pipeline with per-stage timings."""
        timings = {}

        start = time.perf_counter()
        spec = self.parse(source, filename=filename, include_paths=include_paths)
        timings["parse"] = time.perf_counter() - start

        start = time.perf_counter()
        est = self.build_est(spec)
        timings["build_est"] = time.perf_counter() - start

        start = time.perf_counter()
        est_program = self.emit_est_program(est)
        timings["emit_est_program"] = time.perf_counter() - start

        if self.use_est_program:
            start = time.perf_counter()
            est = self.load_est_program(est_program)
            timings["load_est_program"] = time.perf_counter() - start

        start = time.perf_counter()
        self.compile_template()
        timings["compile_template"] = time.perf_counter() - start

        start = time.perf_counter()
        files = self.generate(spec, est=est)
        timings["generate"] = time.perf_counter() - start

        return CompileResult(
            spec=spec, est=est, est_program=est_program, files=files,
            timings=timings,
        )


def compile_idl(source, pack="heidi_cpp", filename="<string>", include_paths=()):
    """One-call convenience: IDL text → {path: generated text}."""
    return Pipeline(pack).run(
        source, filename=filename, include_paths=include_paths
    ).files

"""The full compiler pipeline with every stage hand-off observable.

The paper's architecture (Fig. 6)::

    IDL source ──parser──▶ EST ──emit──▶ EST program (Python, cf. Fig. 8)
                                             │ exec
    template ──compile──▶ generator program ─┴─▶ generated mapping files

Each arrow is a method here, so the Fig. 6 bench can show the artifact
produced at every stage, and the EST-program hand-off can be measured
against re-parsing (the paper's efficiency argument in Section 4.1).

Compilation is lint-first: before any code is generated, the
:mod:`repro.lint` passes check the IDL source and the mapping pack's
templates, and error-severity findings abort with
:class:`repro.lint.diagnostics.LintError` listing *every* problem (no
fail-fast).  When the lint run is clean and the pack's main template is
strict-safe, generation runs with ``Runtime(strict=True)`` so a
regression to an undefined ``${var}`` fails loudly instead of
substituting "".
"""

import time
from dataclasses import dataclass, field

from repro.est import build_est, emit_program, load_program
from repro.idl import parse as parse_idl
from repro.lint.diagnostics import LintError, Severity
from repro.mappings.registry import get_pack


@dataclass
class CompileResult:
    """Everything a full pipeline run produced."""

    spec: object
    est: object
    est_program: str
    files: dict
    #: Seconds spent in each stage, keyed by stage name.
    timings: dict = field(default_factory=dict)
    #: Lint findings (empty when linting was disabled).
    lint_diagnostics: list = field(default_factory=list)
    #: Whether generation ran with strict template resolution.
    strict: bool = False


class Pipeline:
    """A configured compiler: one mapping pack, reusable across files."""

    def __init__(self, pack="heidi_cpp", use_est_program=False, lint=True,
                 strict_templates=None):
        self.pack = get_pack(pack) if isinstance(pack, str) else pack
        #: When true, the EST crosses stages as an executable program
        #: (exactly the paper's two-stage hand-off); when false it is
        #: passed as the in-process object (the merged design the paper
        #: plans as future work).
        self.use_est_program = use_est_program
        #: Run the lint passes before generating (the default).
        self.lint = lint
        #: Tri-state: True/False force strict template resolution on or
        #: off; None (auto) enables it when lint came back clean AND the
        #: pack's main template is strict-safe.
        self.strict_templates = strict_templates
        self._pack_lint = None  # cached (diagnostics, strict_safe)

    # -- individual stages -------------------------------------------------

    def parse(self, source, filename="<string>", include_paths=()):
        return parse_idl(source, filename=filename, include_paths=include_paths)

    def build_est(self, spec):
        return build_est(spec)

    def emit_est_program(self, est):
        return emit_program(est)

    def load_est_program(self, program):
        return load_program(program)

    def compile_template(self, template_name=None):
        """Step 1 of code generation; cached inside the pack."""
        return self.pack.compiled(template_name)

    def lint_source(self, source, filename="<string>", include_paths=()):
        """Run the IDL lint pass plus the (cached) pack self-lint."""
        from repro.lint.idl_rules import lint_idl_source

        _, diagnostics = lint_idl_source(
            source, filename=filename, include_paths=tuple(include_paths)
        )
        return list(diagnostics) + list(self._pack_lint_results()[0])

    def _pack_lint_results(self):
        if self._pack_lint is None:
            from repro.lint.mapping_rules import lint_pack, pack_strict_safe

            self._pack_lint = (lint_pack(self.pack),
                               pack_strict_safe(self.pack))
        return self._pack_lint

    def resolve_strict(self, diagnostics):
        """The effective strict-templates setting for one compile."""
        if self.strict_templates is not None:
            return bool(self.strict_templates)
        clean = not any(
            Severity.at_least(d.severity, Severity.WARNING)
            for d in diagnostics
        )
        return clean and self._pack_lint_results()[1]

    def generate(self, spec, est=None, variables=None, strict=False):
        """Step 2: run the compiled template against the EST."""
        sink = self.pack.generate(spec, est=est, variables=variables,
                                  strict=strict)
        return sink.files()

    # -- end to end -----------------------------------------------------------

    def run(self, source, filename="<string>", include_paths=()):
        """Full pipeline with per-stage timings; lint-first by default."""
        timings = {}

        diagnostics = []
        strict = bool(self.strict_templates)
        if self.lint:
            start = time.perf_counter()
            diagnostics = self.lint_source(
                source, filename=filename, include_paths=include_paths
            )
            if any(d.severity == Severity.ERROR for d in diagnostics):
                raise LintError(diagnostics)
            strict = self.resolve_strict(diagnostics)
            timings["lint"] = time.perf_counter() - start

        start = time.perf_counter()
        spec = self.parse(source, filename=filename, include_paths=include_paths)
        timings["parse"] = time.perf_counter() - start

        start = time.perf_counter()
        est = self.build_est(spec)
        timings["build_est"] = time.perf_counter() - start

        start = time.perf_counter()
        est_program = self.emit_est_program(est)
        timings["emit_est_program"] = time.perf_counter() - start

        if self.use_est_program:
            start = time.perf_counter()
            est = self.load_est_program(est_program)
            timings["load_est_program"] = time.perf_counter() - start

        start = time.perf_counter()
        self.compile_template()
        timings["compile_template"] = time.perf_counter() - start

        start = time.perf_counter()
        files = self.generate(spec, est=est, strict=strict)
        timings["generate"] = time.perf_counter() - start

        return CompileResult(
            spec=spec, est=est, est_program=est_program, files=files,
            timings=timings, lint_diagnostics=diagnostics, strict=strict,
        )


def compile_idl(source, pack="heidi_cpp", filename="<string>", include_paths=(),
                lint=True, strict_templates=None):
    """One-call convenience: IDL text → {path: generated text}."""
    return Pipeline(pack, lint=lint, strict_templates=strict_templates).run(
        source, filename=filename, include_paths=include_paths
    ).files

"""``python -m repro.compiler`` entry point."""

import sys

from repro.compiler.cli import main

sys.exit(main())

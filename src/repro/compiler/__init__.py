"""The two-stage template-driven IDL compiler (paper Fig. 6).

Stage 1 (parse): a generic IDL parser builds the Enhanced Syntax Tree
and can emit it as an executable program.  Stage 2 (code generation) is
itself two steps: a template compiles into a generator program (once),
which then executes against the EST to produce the mapping.

:class:`repro.compiler.pipeline.Pipeline` exposes every stage
separately (so tests and benches can measure each hand-off) and
end-to-end; ``python -m repro.compiler`` is the command-line front-end.
"""

from repro.compiler.cache import TemplateCache
from repro.compiler.pipeline import CompileResult, Pipeline, compile_idl

__all__ = ["Pipeline", "CompileResult", "compile_idl", "TemplateCache"]

"""Command-line front-end: ``repro-idlc`` / ``python -m repro.compiler``.

Examples::

    repro-idlc A.idl                          # HeidiRMI C++ mapping
    repro-idlc --mapping tcl_orb A.idl        # Fig. 10 Tcl stubs + orb.tcl
    repro-idlc --mapping python_rmi -o out/ A.idl
    repro-idlc --list-mappings
    repro-idlc --dump-est A.idl               # Fig. 7 tree rendering
    repro-idlc --emit-est-program A.idl       # Fig. 8 program
"""

import argparse
import sys

from repro.compiler.pipeline import Pipeline
from repro.est import render_tree
from repro.idl.errors import IdlError
from repro.mappings.registry import all_packs, get_pack
from repro.templates.errors import TemplateError


def build_arg_parser():
    parser = argparse.ArgumentParser(
        prog="repro-idlc",
        description="Template-driven IDL compiler "
        "(reproduction of Welling & Ott, Middleware 2000)",
    )
    parser.add_argument("idl", nargs="?", help="IDL source file")
    parser.add_argument(
        "--mapping", "-m", default="heidi_cpp",
        help="mapping pack to generate with (see --list-mappings)",
    )
    parser.add_argument(
        "--output", "-o", default=None,
        help="directory to write generated files into (default: stdout)",
    )
    parser.add_argument(
        "--include", "-I", action="append", default=[],
        help="directory to search for #include files (repeatable)",
    )
    parser.add_argument(
        "--list-mappings", action="store_true",
        help="list available mapping packs and exit",
    )
    parser.add_argument(
        "--dump-est", action="store_true",
        help="print the Enhanced Syntax Tree (paper Fig. 7) and exit",
    )
    parser.add_argument(
        "--emit-est-program", action="store_true",
        help="print the EST-rebuilding program (paper Fig. 8) and exit",
    )
    parser.add_argument(
        "--dump-generator", action="store_true",
        help="print the compiled generator program (step 1 output) and exit",
    )
    parser.add_argument(
        "--ir", metavar="DIR", default=None,
        help="also record the compiled file's EST in the interface "
        "repository at DIR (created if absent)",
    )
    parser.add_argument(
        "--ir-list", metavar="DIR", default=None,
        help="list the entries and interfaces of the interface "
        "repository at DIR and exit",
    )
    parser.add_argument(
        "--no-lint", action="store_true",
        help="skip the lint passes that normally run before generation",
    )
    parser.add_argument(
        "--strict-templates", action="store_true",
        help="force strict template resolution (undefined ${var} is an "
        "error); by default strict turns on automatically when lint is "
        "clean and the mapping's template is strict-safe",
    )
    return parser


def main(argv=None):
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if args.list_mappings:
        for name in all_packs():
            pack = get_pack(name)
            print(f"{name:12s} [{pack.language}] {pack.description}")
        return 0

    if args.ir_list:
        from repro.est.repository import InterfaceRepository

        try:
            repository = InterfaceRepository.load(args.ir_list)
        except OSError as exc:
            print(f"error: cannot load repository {args.ir_list}: {exc}",
                  file=sys.stderr)
            return 1
        for entry in repository.entries():
            print(f"entry {entry}")
        for repo_id in repository.interfaces():
            operations = ", ".join(repository.operations_of(repo_id))
            print(f"  {repo_id}  ({operations})")
        return 0

    if not args.idl:
        parser.error("an IDL file is required (or use --list-mappings)")

    try:
        with open(args.idl, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        print(f"error: cannot read {args.idl}: {exc}", file=sys.stderr)
        return 1

    pipeline = Pipeline(
        args.mapping,
        lint=not args.no_lint,
        strict_templates=True if args.strict_templates else None,
    )
    strict = args.strict_templates
    if not args.no_lint:
        from repro.lint.diagnostics import Severity

        diagnostics = pipeline.lint_source(
            source, filename=args.idl, include_paths=args.include
        )
        reportable = [
            d for d in diagnostics
            if Severity.at_least(d.severity, Severity.WARNING)
        ]
        for diagnostic in sorted(reportable, key=lambda d: d.sort_key):
            print(diagnostic, file=sys.stderr)
        errors = [d for d in diagnostics if d.severity == Severity.ERROR]
        if errors:
            print(f"error: lint found {len(errors)} error(s); "
                  "not generating (use --no-lint to override)",
                  file=sys.stderr)
            return 1
        strict = pipeline.resolve_strict(diagnostics)

    try:
        if args.dump_generator:
            print(pipeline.compile_template().source)
            return 0
        spec = pipeline.parse(
            source, filename=args.idl, include_paths=args.include
        )
        est = pipeline.build_est(spec)
        if args.dump_est:
            print(render_tree(est), end="")
            return 0
        if args.emit_est_program:
            print(pipeline.emit_est_program(est), end="")
            return 0
        if args.ir:
            from repro.est.repository import InterfaceRepository

            import os as _os

            if _os.path.isfile(_os.path.join(args.ir, "index.txt")):
                repository = InterfaceRepository.load(args.ir)
            else:
                repository = InterfaceRepository()
            repository.add(est, name=_os.path.basename(args.idl))
            repository.save(args.ir)
            print(f"recorded {_os.path.basename(args.idl)} in repository "
                  f"{args.ir}", file=sys.stderr)
        files = pipeline.generate(spec, est=est, strict=strict)
    except (IdlError, TemplateError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.output:
        import os

        os.makedirs(args.output, exist_ok=True)
        for path, text in files.items():
            target = os.path.join(args.output, path)
            os.makedirs(os.path.dirname(target) or args.output, exist_ok=True)
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {target}")
    else:
        for path, text in files.items():
            print(f"// ==== {path} ====")
            print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""Step 2 of the two-step code generation: executing a generator program.

A :class:`Runtime` binds an EST, a map registry, global variables and an
output sink.  The compiled generator drives it through a tiny surface:
``line``/``write`` for output, ``var`` for substitutions, ``foreach``
for kind-grouped iteration, ``open_file``/``close_file`` for routing,
and ``truth`` for ``@if`` tests.

Variable resolution order (the paper's "node under current
consideration"): innermost loop bindings, then the EST node stack (a
node lookup already walks its ancestors), then template globals.  A
``-map`` modifier on the innermost enclosing ``@foreach`` that names the
variable is applied to the resolved value.
"""

from repro.est.node import Ast
from repro.templates.errors import TemplateRuntimeError
from repro.templates.maps import BUILTIN_MAPS, MapRegistry
from repro.templates.output import OutputSink

_MISSING = object()


class _Frame:
    """One live ``@foreach`` iteration: bindings, maps, current node."""

    __slots__ = ("bindings", "maps", "node")

    def __init__(self, maps):
        self.bindings = {}
        self.maps = maps
        self.node = None


class Runtime:
    """Execution state for one generation run."""

    def __init__(self, est, maps=None, variables=None, sink=None, strict=False):
        self.est = est
        self.maps = maps if maps is not None else MapRegistry(parent=BUILTIN_MAPS)
        self.sink = sink if sink is not None else OutputSink()
        self.globals = dict(variables or {})
        self.strict = strict
        self._frames = []
        self._node_stack = [est] if est is not None else []

    # -- output ----------------------------------------------------------

    def write(self, text):
        self.sink.write(text)

    def line(self, *parts, newline=True):
        text = "".join(parts)
        self.sink.write(text + "\n" if newline else text)

    def open_file(self, path):
        self.sink.open_file(path)

    def close_file(self):
        self.sink.close_file()

    # -- variables ----------------------------------------------------------

    def set_var(self, name, value):
        self.globals[name] = value

    def var(self, name):
        """Resolve ``${name}`` and apply the innermost applicable -map.

        A ``-map`` may name a variable with no underlying property —
        the map then *synthesizes* the value from the node context
        (e.g. a marshalling statement built from the parameter's type),
        receiving "" as its input value.
        """
        value = self._raw_lookup(name)
        for frame in reversed(self._frames):
            map_name = frame.maps.get(name)
            if map_name is not None:
                base = "" if value is _MISSING else value
                return self.maps.apply(
                    map_name, base, node=self.current_node(), runtime=self
                )
        if value is _MISSING:
            if self.strict:
                raise TemplateRuntimeError(f"undefined template variable ${{{name}}}")
            return ""
        return "" if value is None else str(value)

    def _raw_lookup(self, name):
        for frame in reversed(self._frames):
            if name in frame.bindings:
                return frame.bindings[name]
        node = self.current_node()
        if node is not None:
            value = node.lookup(name)
            if value is not None:
                return value
        if name in self.globals:
            return self.globals[name]
        return _MISSING

    def current_node(self):
        return self._node_stack[-1] if self._node_stack else None

    def truth(self, value):
        """The ``@if ${x}`` truthiness rule: empty/0/false are false."""
        if isinstance(value, str):
            return value.strip() not in ("", "0", "false", "False", "FALSE")
        return bool(value)

    # -- iteration ------------------------------------------------------------

    def foreach(self, list_name, maps=None, if_more=None, separator=None,
                reverse=False, line=0):
        """Iterate a child list or plain list property (``@foreach``)."""
        items = self._resolve_list(list_name, line)
        if reverse:
            items = list(reversed(items))
        frame = _Frame(maps or {})
        self._frames.append(frame)
        try:
            total = len(items)
            for index, item in enumerate(items):
                if separator is not None and index > 0:
                    self.sink.write(separator)
                frame.bindings = {
                    "index": index,
                    "count": index + 1,
                    "first": "1" if index == 0 else "",
                    "last": "1" if index == total - 1 else "",
                }
                if if_more is not None:
                    frame.bindings["ifMore"] = if_more if index < total - 1 else ""
                else:
                    frame.bindings["ifMore"] = ""
                if isinstance(item, Ast):
                    frame.node = item
                    self._node_stack.append(item)
                    try:
                        yield item
                    finally:
                        self._node_stack.pop()
                        frame.node = None
                else:
                    frame.bindings["item"] = item
                    singular = _singular(list_name)
                    if singular:
                        frame.bindings[singular] = item
                    yield item
        finally:
            self._frames.pop()

    def _resolve_list(self, list_name, line):
        node = self.current_node()
        value = node.lookup(list_name) if node is not None else None
        if value is None:
            value = self.globals.get(list_name)
        if value is None and list_name.startswith("all") and list_name.endswith("List"):
            # Whole-tree grouping: ``allInterfaceList`` iterates every
            # Interface node in the EST regardless of module nesting —
            # the EST's grouping rule applied globally.
            kind = list_name[3:-4]
            value = [n for n in self.est.walk() if n.kind == kind] if self.est else []
        if value is None:
            # Not an error even under strict: a node legitimately has no
            # group for a child kind with zero children (an operation
            # without parameters has no paramList), and strict only
            # governs undefined ${var}.  Statically-unknown list names
            # are the lint engine's job (TPL002).
            return []
        if isinstance(value, (list, tuple)):
            return list(value)
        raise TemplateRuntimeError(
            f"@foreach {list_name}: value is not a list ({type(value).__name__})",
            line=line,
        )


def _singular(list_name):
    """A singular binding name: ``members`` → ``member``, ``xList`` → ``x``."""
    if list_name.endswith("List") and len(list_name) > 4:
        return list_name[:-4]
    if list_name.endswith("s") and len(list_name) > 1:
        return list_name[:-1]
    return ""


def generate(template_source, est, name="<template>", maps=None, variables=None,
             loader=None, strict=False):
    """One-call convenience: compile (step 1) and run (step 2).

    Returns the :class:`repro.templates.output.OutputSink` holding the
    default stream and any ``@openfile`` outputs.
    """
    from repro.templates.compiler import compile_template

    compiled = compile_template(template_source, name=name, loader=loader)
    runtime = Runtime(est, maps=maps, variables=variables, strict=strict)
    return compiled.run(runtime)

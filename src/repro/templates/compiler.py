"""Step 1 of the two-step code generation: template → generator program.

``compile_to_source`` turns a parsed template into the *source text* of
a Python program whose ``generate(rt)`` function performs the generation
against a :class:`repro.templates.runtime.Runtime`.  This mirrors the
paper's use of Jeeves, which produced a Perl program from the template;
the program is what gets cached, so step 1 runs once per template.

``compile_template`` additionally ``exec``-utes the program and wraps it
in a :class:`CompiledTemplate` ready for step 2.
"""

from repro.templates import ast
from repro.templates.errors import TemplateSyntaxError
from repro.templates.parser import parse_template

_PROLOGUE = '''\
# Code generator produced by repro.templates.compiler (step 1 of the
# paper's two-step code-generation process) from template {name!r}.
# Execute step 2 by calling generate(rt) with a repro.templates.runtime
# Runtime bound to an EST.

def generate(rt):
'''


def compile_to_source(template):
    """Render the generator-program source for a parsed template."""
    lines = [_PROLOGUE.format(name=template.name)]
    emitter = _Emitter(lines)
    if not template.body:
        emitter.statement("pass", 1)
    else:
        for node in template.body:
            emitter.emit(node, depth=1)
    return "".join(line + "\n" for line in lines)


class _Emitter:
    def __init__(self, lines):
        self._lines = lines
        self._loop_counter = 0

    def statement(self, text, depth):
        self._lines.append("    " * depth + text)

    def emit(self, node, depth):
        if isinstance(node, ast.TextLine):
            self._emit_text(node, depth)
        elif isinstance(node, ast.Foreach):
            self._emit_foreach(node, depth)
        elif isinstance(node, ast.If):
            self._emit_if(node, depth)
        elif isinstance(node, ast.OpenFile):
            self.statement(f"rt.open_file({self._cat(node.parts)})", depth)
        elif isinstance(node, ast.CloseFile):
            self.statement("rt.close_file()", depth)
        elif isinstance(node, ast.SetVar):
            self.statement(
                f"rt.set_var({node.name!r}, {self._cat(node.parts)})", depth
            )
        else:  # pragma: no cover - parser produces only the above
            raise TemplateSyntaxError(f"cannot compile node {node!r}")

    def _emit_text(self, node, depth):
        args = [self._part(part) for part in node.parts]
        newline = "True" if node.newline else "False"
        arg_text = ", ".join(args)
        if args:
            self.statement(f"rt.line({arg_text}, newline={newline})", depth)
        else:
            self.statement(f"rt.line(newline={newline})", depth)

    def _emit_foreach(self, node, depth):
        self._loop_counter += 1
        loop_var = f"_iter{self._loop_counter}"
        arguments = [repr(node.list_name)]
        if node.maps:
            arguments.append(f"maps={node.maps!r}")
        if node.if_more is not None:
            arguments.append(f"if_more={node.if_more!r}")
        if node.separator is not None:
            arguments.append(f"separator={node.separator!r}")
        if node.reverse:
            arguments.append("reverse=True")
        arguments.append(f"line={node.line}")
        self.statement(
            f"for {loop_var} in rt.foreach({', '.join(arguments)}):", depth
        )
        if node.body:
            for child in node.body:
                self.emit(child, depth + 1)
        else:
            self.statement("pass", depth + 1)

    def _emit_if(self, node, depth):
        first = True
        for condition, body in node.branches:
            if condition is None:
                self.statement("else:", depth)
            else:
                keyword = "if" if first else "elif"
                self.statement(f"{keyword} {self._condition(condition)}:", depth)
            if body:
                for child in body:
                    self.emit(child, depth + 1)
            else:
                self.statement("pass", depth + 1)
            first = False

    def _condition(self, condition):
        left = self._cat(condition.left)
        if not condition.op:
            return f"rt.truth({left})"
        right = self._cat(condition.right)
        return f"({left}) {condition.op} ({right})"

    def _part(self, part):
        if isinstance(part, ast.VarRef):
            return f"rt.var({part.name!r})"
        return repr(part)

    def _cat(self, parts):
        if not parts:
            return "''"
        if len(parts) == 1:
            piece = self._part(parts[0])
            return piece if isinstance(parts[0], ast.VarRef) else piece
        return " + ".join(self._part(part) for part in parts)


class CompiledTemplate:
    """A template after step 1: generator source plus its generate()."""

    def __init__(self, template, source, generate_func):
        self.template = template
        self.name = template.name
        self.source = source
        self._generate = generate_func

    def run(self, runtime):
        """Step 2: execute the generator against *runtime*'s EST."""
        self._generate(runtime)
        runtime.sink.close_all()
        return runtime.sink


def compile_template(source_or_template, name="<template>", loader=None):
    """Compile template text (or a parsed Template) through step 1."""
    if isinstance(source_or_template, ast.Template):
        template = source_or_template
    else:
        template = parse_template(source_or_template, name=name, loader=loader)
    program = compile_to_source(template)
    namespace = {"__name__": f"repro.templates._generated.{_safe(template.name)}"}
    exec(compile(program, f"<generator:{template.name}>", "exec"), namespace)
    return CompiledTemplate(template, program, namespace["generate"])


def _safe(name):
    return "".join(ch if ch.isalnum() else "_" for ch in name)

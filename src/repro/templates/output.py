"""Output routing for ``@openfile`` multi-file generation.

Generation writes into an :class:`OutputSink`, which collects one
:class:`GeneratedOutput` per opened file plus a default stream for text
emitted outside any ``@openfile`` region.  Nothing touches the
filesystem until :meth:`OutputSink.write_to` is called, which keeps
tests and benchmarks hermetic.
"""

import os
from dataclasses import dataclass, field


@dataclass
class GeneratedOutput:
    """One generated file: a relative path and accumulated text."""

    path: str
    chunks: list = field(default_factory=list)

    def write(self, text):
        if text:
            self.chunks.append(text)

    @property
    def text(self):
        return "".join(self.chunks)


class OutputSink:
    """Collects generated files; the current target is a small stack."""

    DEFAULT = "<default>"

    def __init__(self):
        self._outputs = {}
        self._order = []
        self._stack = [self._get_or_create(self.DEFAULT)]

    def _get_or_create(self, path):
        output = self._outputs.get(path)
        if output is None:
            output = GeneratedOutput(path=path)
            self._outputs[path] = output
            self._order.append(path)
        return output

    # -- runtime interface ------------------------------------------------

    def write(self, text):
        self._stack[-1].write(text)

    def open_file(self, path):
        """Route subsequent output to *path* (reopening appends)."""
        self._stack.append(self._get_or_create(path))

    def close_file(self):
        """Return to the enclosing output target."""
        if len(self._stack) > 1:
            self._stack.pop()

    def close_all(self):
        del self._stack[1:]

    # -- results ----------------------------------------------------------------

    @property
    def default_text(self):
        return self._outputs[self.DEFAULT].text

    def files(self):
        """Generated files as an ordered {path: text} dict (no default)."""
        return {
            path: self._outputs[path].text
            for path in self._order
            if path != self.DEFAULT and self._outputs[path].text
        }

    def file_text(self, path):
        output = self._outputs.get(path)
        return output.text if output else None

    def write_to(self, directory):
        """Write every generated file beneath *directory*; return paths."""
        written = []
        for path, text in self.files().items():
            target = os.path.join(directory, path)
            os.makedirs(os.path.dirname(target) or directory, exist_ok=True)
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
            written.append(target)
        return written

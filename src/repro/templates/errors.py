"""Diagnostics for the template engine, located by template line."""


class TemplateError(Exception):
    """Base class for template-engine errors."""

    def __init__(self, message, template="<template>", line=0):
        self.template = template
        self.line = line
        self.message = message
        where = f"{template}:{line}: " if line else f"{template}: "
        super().__init__(where + message)


class TemplateSyntaxError(TemplateError):
    """Malformed directive, unbalanced @foreach/@if, unknown command."""


class TemplateRuntimeError(TemplateError):
    """Raised while executing a compiled template (step 2)."""

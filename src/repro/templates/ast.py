"""Template AST.

Text content is pre-split into *parts*: a part is either a literal
string or a :class:`VarRef`.  Splitting at parse time keeps the compiled
generator free of any ``${...}`` scanning at run time.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class VarRef:
    """A ``${name}`` substitution site."""

    name: str

    def __str__(self):
        return "${" + self.name + "}"


@dataclass
class TemplateNode:
    line: int = field(default=0, kw_only=True)


@dataclass
class TextLine(TemplateNode):
    """A literal output line; ``newline`` is False for ``\\``-continued lines."""

    parts: list
    newline: bool = True


@dataclass
class Foreach(TemplateNode):
    """``@foreach <list_name> [modifiers]`` … ``@end``."""

    list_name: str
    body: list = field(default_factory=list)
    #: var name -> map-function name, from ``-map var Func`` modifiers.
    maps: dict = field(default_factory=dict)
    #: the ${ifMore} separator, from ``-ifMore 'sep'`` (None if absent).
    if_more: str = None
    #: literal emitted between iterations, from ``-sep 'text'``.
    separator: str = None
    reverse: bool = False


@dataclass
class Condition(TemplateNode):
    """One test: parts on each side of an operator, or a truth test."""

    left: list = field(default_factory=list)
    op: str = ""  # "==", "!=", or "" for truthiness of `left`
    right: list = field(default_factory=list)


@dataclass
class If(TemplateNode):
    """``@if``/``@elif``/``@else``/``@fi``; branches are (cond|None, body)."""

    branches: list = field(default_factory=list)


@dataclass
class OpenFile(TemplateNode):
    """``@openfile <path>`` — path parts are substituted at run time."""

    parts: list = field(default_factory=list)


@dataclass
class CloseFile(TemplateNode):
    """``@closefile`` — return output to the default stream."""


@dataclass
class SetVar(TemplateNode):
    """``@set <name> <value>`` — bind a global substitution variable."""

    name: str = ""
    parts: list = field(default_factory=list)


@dataclass
class Template:
    """A parsed template: a name and a body of TemplateNodes."""

    name: str = "<template>"
    body: list = field(default_factory=list)

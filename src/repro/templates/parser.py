"""Line-oriented parser for the template language.

A line whose first non-blank character is ``@`` is a directive; every
other line is literal output.  ``@@`` at the start of a line escapes a
literal ``@``.  Directive grammar::

    @foreach <list> [-ifMore 'sep'] [-sep 'text'] [-reverse]
                    [-map <var> <MapFunc>]...
    @end [<list>]
    @if <parts> [==|!= <parts>]
    @elif <parts> [==|!= <parts>]
    @else
    @fi
    @openfile <path>
    @closefile
    @set <name> <value>
    @include <template-name>
    @# comment (also @//)
"""

import re
import shlex

from repro.templates import ast
from repro.templates.errors import TemplateSyntaxError

_VAR_RE = re.compile(r"\$\{([A-Za-z_][A-Za-z0-9_:]*)\}")


def split_parts(text):
    """Split text into literal strings and VarRefs at ``${...}`` sites."""
    parts = []
    pos = 0
    for match in _VAR_RE.finditer(text):
        if match.start() > pos:
            parts.append(text[pos : match.start()])
        parts.append(ast.VarRef(match.group(1)))
        pos = match.end()
    if pos < len(text):
        parts.append(text[pos:])
    return parts


def parse_template(source, name="<template>", loader=None):
    """Parse template source into a :class:`repro.templates.ast.Template`.

    *loader*, when given, is a callable ``loader(name) -> source`` used
    to resolve ``@include`` directives.
    """
    parser = _Parser(source, name, loader)
    return parser.parse()


class _Parser:
    def __init__(self, source, name, loader, _depth=0):
        self._lines = source.splitlines()
        self._name = name
        self._loader = loader
        self._index = 0
        self._depth = _depth
        if _depth > 16:
            raise TemplateSyntaxError("include nesting too deep", name)

    def _error(self, message, line):
        raise TemplateSyntaxError(message, self._name, line)

    def parse(self):
        body, terminator = self._parse_body(terminators=())
        assert terminator is None
        return ast.Template(name=self._name, body=body)

    def _parse_body(self, terminators):
        """Parse until EOF or one of *terminators*; return (body, term)."""
        body = []
        while self._index < len(self._lines):
            lineno = self._index + 1
            raw = self._lines[self._index]
            self._index += 1
            stripped = raw.lstrip()
            if stripped.startswith("@@"):
                # Escaped literal '@' line.
                indent = raw[: len(raw) - len(stripped)]
                body.append(self._text_line(indent + stripped[1:], lineno))
                continue
            if not stripped.startswith("@"):
                body.append(self._text_line(raw, lineno))
                continue

            directive_text = stripped[1:]
            word = directive_text.split(None, 1)[0] if directive_text.strip() else ""
            rest = directive_text[len(word) :].strip()

            if word in terminators:
                return body, (word, rest, lineno)
            if word in ("#",) or word.startswith("#") or word.startswith("//"):
                continue
            handler = getattr(self, f"_parse_{word}", None)
            if handler is None:
                self._error(f"unknown directive @{word}", lineno)
            node = handler(rest, lineno)
            if node is not None:
                if isinstance(node, list):
                    body.extend(node)
                else:
                    body.append(node)
        return body, None

    @staticmethod
    def _text_line(raw, lineno):
        newline = True
        if raw.endswith("\\") and not raw.endswith("\\\\"):
            raw = raw[:-1]
            newline = False
        elif raw.endswith("\\\\"):
            raw = raw[:-1]  # escaped backslash at end of line
        return ast.TextLine(parts=split_parts(raw), newline=newline, line=lineno)

    # -- directive handlers --------------------------------------------------

    def _parse_foreach(self, rest, lineno):
        try:
            words = shlex.split(rest)
        except ValueError as exc:
            self._error(f"malformed @foreach arguments: {exc}", lineno)
        if not words:
            self._error("@foreach requires a list name", lineno)
        node = ast.Foreach(list_name=words[0], line=lineno)
        index = 1
        while index < len(words):
            modifier = words[index]
            if modifier == "-map":
                if index + 2 >= len(words):
                    self._error("-map requires a variable and a map name", lineno)
                node.maps[words[index + 1]] = words[index + 2]
                index += 3
            elif modifier == "-ifMore":
                if index + 1 >= len(words):
                    self._error("-ifMore requires a separator", lineno)
                node.if_more = words[index + 1]
                index += 2
            elif modifier == "-sep":
                if index + 1 >= len(words):
                    self._error("-sep requires a separator", lineno)
                node.separator = words[index + 1]
                index += 2
            elif modifier == "-reverse":
                node.reverse = True
                index += 1
            else:
                self._error(f"unknown @foreach modifier {modifier!r}", lineno)
        body, terminator = self._parse_body(terminators=("end",))
        if terminator is None:
            self._error(f"@foreach {node.list_name} never closed by @end", lineno)
        _, end_arg, end_line = terminator
        if end_arg and end_arg.split()[0] != node.list_name:
            self._error(
                f"@end {end_arg.split()[0]} does not close @foreach {node.list_name}",
                end_line,
            )
        node.body = body
        return node

    def _parse_if(self, rest, lineno):
        node = ast.If(line=lineno)
        condition = self._parse_condition(rest, lineno)
        while True:
            body, terminator = self._parse_body(terminators=("elif", "else", "fi"))
            if terminator is None:
                self._error("@if never closed by @fi", lineno)
            word, term_rest, term_line = terminator
            node.branches.append((condition, body))
            if word == "fi":
                return node
            if word == "elif":
                condition = self._parse_condition(term_rest, term_line)
                continue
            # @else: one final unconditional branch, then expect @fi.
            body, terminator = self._parse_body(terminators=("fi",))
            if terminator is None:
                self._error("@else never closed by @fi", term_line)
            node.branches.append((None, body))
            return node

    def _parse_condition(self, rest, lineno):
        for op in ("==", "!="):
            if op in rest:
                left, _, right = rest.partition(op)
                return ast.Condition(
                    left=split_parts(_unquote(left.strip())),
                    op=op,
                    right=split_parts(_unquote(right.strip())),
                    line=lineno,
                )
        if not rest.strip():
            self._error("@if requires a condition", lineno)
        return ast.Condition(left=split_parts(_unquote(rest.strip())), op="", line=lineno)

    def _parse_openfile(self, rest, lineno):
        if not rest:
            self._error("@openfile requires a path", lineno)
        return ast.OpenFile(parts=split_parts(rest), line=lineno)

    def _parse_closefile(self, rest, lineno):
        return ast.CloseFile(line=lineno)

    def _parse_set(self, rest, lineno):
        pieces = rest.split(None, 1)
        if not pieces:
            self._error("@set requires a name", lineno)
        name = pieces[0]
        value = pieces[1] if len(pieces) > 1 else ""
        return ast.SetVar(name=name, parts=split_parts(_unquote(value)), line=lineno)

    def _parse_include(self, rest, lineno):
        if not rest:
            self._error("@include requires a template name", lineno)
        if self._loader is None:
            self._error(f"@include {rest}: no template loader configured", lineno)
        try:
            source = self._loader(rest)
        except KeyError:
            self._error(f"@include {rest}: template not found", lineno)
            return None  # unreachable; _error raises
        sub = _Parser(source, rest, self._loader, _depth=self._depth + 1)
        return sub.parse().body


def _unquote(text):
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    return text

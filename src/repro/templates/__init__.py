"""Jeeves-style template engine with two-step code generation.

The engine implements the paper's template language (Fig. 9):

- ``@`` at the start of a line escapes a code-generation command;
  all other lines are printed with ``${name}`` substitutions applied.
- ``@foreach <list> [-ifMore 'sep'] [-sep 'text'] [-map var MapFunc]``
  … ``@end <list>`` walks a kind-grouped EST child list (or a plain
  list property), binding the node under consideration.
- ``@if <test>`` / ``@elif`` / ``@else`` / ``@fi`` conditionals.
- ``@openfile <path>`` routes subsequent output to a new file.
- ``@include <template>``, ``@set <var> <value>``, ``@#`` comments.
- a trailing backslash on a text line suppresses its newline so a
  multi-line template region can generate a single output line.

Code generation is the paper's **two-step** process (Section 4.1):
*step 1* compiles the template into a Python program (the code
generator); *step 2* executes that program against an EST.  Step 1 need
only run once per template — :mod:`repro.compiler.cache` exploits that.
"""

from repro.templates.errors import (
    TemplateError,
    TemplateRuntimeError,
    TemplateSyntaxError,
)
from repro.templates.parser import parse_template
from repro.templates.compiler import CompiledTemplate, compile_template, compile_to_source
from repro.templates.maps import MapRegistry, simple_map
from repro.templates.output import GeneratedOutput, OutputSink
from repro.templates.runtime import Runtime, generate

__all__ = [
    "TemplateError",
    "TemplateSyntaxError",
    "TemplateRuntimeError",
    "parse_template",
    "compile_template",
    "compile_to_source",
    "CompiledTemplate",
    "MapRegistry",
    "simple_map",
    "OutputSink",
    "GeneratedOutput",
    "Runtime",
    "generate",
]

"""Map-function registry.

The paper's templates convert names between the IDL world and the target
language with *map functions*: ``-map interfaceName CPP::MapClassName``
turns ``Heidi::A`` into ``HdA`` "in the context of the code that is
being generated".

A map function is a callable ``f(value, ctx)`` where *ctx* is a
:class:`MapContext` giving access to the EST node under consideration
and the runtime (so a map can look at the node's ``type`` property, its
path, or other registered maps).  ``simple_map`` wraps a plain
one-argument function.
"""

from dataclasses import dataclass

from repro.templates.errors import TemplateRuntimeError


@dataclass
class MapContext:
    """What a map function may consult: the current node and runtime."""

    node: object = None
    runtime: object = None

    def prop(self, name, default=None):
        """The named property of the current node (outward lookup)."""
        if self.node is None:
            return default
        value = self.node.lookup(name)
        return default if value is None else value


def simple_map(func):
    """Adapt a one-argument function into map-function form."""

    def adapted(value, ctx):
        return func(value)

    adapted.__name__ = getattr(func, "__name__", "simple_map")
    return adapted


class MapRegistry:
    """Name → map-function table, with pack-style namespacing.

    Names follow the paper's ``Namespace::Function`` convention
    (``CPP::MapClassName``).  Registries can chain to a parent so a
    mapping pack extends the engine's built-ins without copying them.
    """

    def __init__(self, parent=None):
        self._maps = {}
        self._parent = parent

    def register(self, name, func):
        self._maps[name] = func
        return func

    def register_simple(self, name, func):
        return self.register(name, simple_map(func))

    def registered(self, name):
        """Decorator form: ``@registry.registered("CPP::MapType")``."""

        def decorator(func):
            return self.register(name, func)

        return decorator

    def get(self, name):
        registry = self
        while registry is not None:
            func = registry._maps.get(name)
            if func is not None:
                return func
            registry = registry._parent
        return None

    def apply(self, name, value, node=None, runtime=None):
        func = self.get(name)
        if func is None:
            raise TemplateRuntimeError(f"unknown map function {name!r}")
        result = func(value, MapContext(node=node, runtime=runtime))
        return "" if result is None else str(result)

    def names(self):
        collected = dict(self._parent.names()) if self._parent else {}
        collected.update(self._maps)
        return collected

    def child(self):
        """A new registry chaining to this one."""
        return MapRegistry(parent=self)


#: Engine-level built-ins usable from any template.
BUILTIN_MAPS = MapRegistry()
BUILTIN_MAPS.register_simple("Identity", lambda value: value)
BUILTIN_MAPS.register_simple("Upper", lambda value: str(value).upper())
BUILTIN_MAPS.register_simple("Lower", lambda value: str(value).lower())
BUILTIN_MAPS.register_simple(
    "Flatten", lambda value: str(value).replace("::", "_")
)
BUILTIN_MAPS.register_simple(
    "CapFirst", lambda value: str(value)[:1].upper() + str(value)[1:]
)
BUILTIN_MAPS.register_simple(
    "Simple", lambda value: str(value).split("::")[-1]
)

"""Cross-layer coverage checks for mapping packs.

A mapping pack is "a template plus a table of map functions" — this
pass verifies the two halves reference each other consistently:

- **MAP001** the pack's entry templates must exist and parse;
- every ``-map`` in a pack template must name a function the pack (or
  the engine built-ins) registers — that is the template analyzer's
  TPL003, run here with the pack's real registry;
- **MAP002** every map function the pack registers should be referenced
  by at least one of its templates (a registered-but-unreferenced map
  is dead customization surface, usually a renamed hook);
- **MAP003** the pack's primitive type table should cover the core IDL
  primitives (the paper's Table 1 rows).

Every ``.tmpl`` file is analyzed *standalone*, with ``@include``
resolving to an empty fragment: the bundled packs include fragments
only at top level (root context), so each fragment analyzes correctly
under its own name — which keeps diagnostic file/line attribution
exact, where inlining (what the parser does at generation time) would
re-anchor a fragment's findings to the includer's line numbering.
"""

import os

from repro.lint.diagnostics import DiagnosticReporter, Span
from repro.lint.template_rules import lint_template_source

#: The Table 1 rows every pack's type table is expected to cover.
CORE_PRIMITIVES = (
    "boolean", "char", "octet", "short", "unsigned short", "long",
    "unsigned long", "float", "double", "string", "void",
)


def _resolve_pack(name_or_pack):
    if isinstance(name_or_pack, str):
        from repro.mappings.registry import get_pack

        return get_pack(name_or_pack)
    return name_or_pack


def pack_globals(pack):
    """The template globals a pack defines, split into scalars and lists."""
    try:
        variables = pack.variables(None, None)
    except Exception:
        variables = {"basename": "", "idlFile": "", "topoInterfaceList": []}
    scalars, lists = set(), {}
    for name, value in variables.items():
        scalars.add(name)
        if isinstance(value, (list, tuple)):
            # Every bundled list global holds Interface nodes; anything
            # exotic degrades to "could be any kind" (permissive).
            if name.endswith("InterfaceList"):
                lists[name] = ("Interface",)
            else:
                lists[name] = tuple(sorted(_known_kinds()))
    return scalars, lists


def _known_kinds():
    from repro.lint import vartable

    return vartable.known_kinds()


def lint_pack(name_or_pack, reporter=None):
    """Lint one mapping pack; returns the diagnostics list."""
    pack = _resolve_pack(name_or_pack)
    if reporter is None:
        reporter = DiagnosticReporter(default_file=pack.name, source="mapping")

    template_dir = pack.template_dir()
    sources = {}
    for entry in sorted(os.listdir(template_dir)):
        if not entry.endswith(".tmpl"):
            continue
        try:
            sources[entry] = pack.load_template_source(entry)
        except (OSError, KeyError) as exc:
            reporter.error(
                "MAP001",
                f"pack {pack.name!r}: template {entry!r} is unreadable: {exc}",
                Span(file=os.path.join(template_dir, entry)),
            )
    if pack.main_template not in sources:
        reporter.error(
            "MAP001",
            f"pack {pack.name!r}: entry template {pack.main_template!r} "
            f"not found in {template_dir}",
            Span(file=template_dir),
        )

    scalars, lists = pack_globals(pack)
    used_maps = set()
    for entry in sorted(sources):
        result = lint_template_source(
            sources[entry],
            name=f"{pack.name}/{entry}",
            loader=lambda name: "",
            maps=pack.maps,
            extra_globals=scalars,
            extra_global_lists=lists,
            reporter=reporter,
        )
        used_maps |= result.used_maps

    _check_unreferenced_maps(pack, used_maps, reporter)
    _check_type_table(pack, reporter)
    return reporter.diagnostics


def pack_strict_safe(pack, template_name=None):
    """Whether a pack's entry template is strict-safe (see
    :class:`repro.lint.template_rules.TemplateLintResult`)."""
    pack = _resolve_pack(pack)
    template_name = template_name or pack.main_template
    try:
        source = pack.load_template_source(template_name)
    except (OSError, KeyError):
        return False
    scalars, lists = pack_globals(pack)
    result = lint_template_source(
        source,
        name=f"{pack.name}/{template_name}",
        loader=pack.load_template_source,
        maps=pack.maps,
        extra_globals=scalars,
        extra_global_lists=lists,
    )
    return result.strict_safe and not result.diagnostics


def lint_pack_idempotence(name_or_pack, spec_or_est, reporter=None,
                          filename=None):
    """MAP004: idempotent-declared operations must be retry-safe.

    A pack's :attr:`~repro.mappings.base.MappingPack.idempotent_operations`
    tells the runtime's RetryPolicy it may silently re-send those calls
    after a transport failure — at which point the first attempt may
    already have executed on the server.  An operation returning data
    through ``out``/``inout`` parameters is a tell that it carries
    per-call state a duplicate execution would corrupt, so declaring it
    idempotent is flagged.  *spec_or_est* is a parsed Specification (or
    a prebuilt EST) to check the declarations against; returns the
    diagnostics list.
    """
    from repro.est import build_est
    from repro.est.node import Ast

    pack = _resolve_pack(name_or_pack)
    if reporter is None:
        reporter = DiagnosticReporter(default_file=pack.name, source="mapping")
    declared = set(pack.idempotent_operations or ())
    if not declared or spec_or_est is None:
        return reporter.diagnostics
    est = (spec_or_est if isinstance(spec_or_est, Ast)
           else build_est(spec_or_est))
    span = Span(file=filename or pack.name)
    for interface in est.walk():
        if interface.kind != "Interface":
            continue
        for operation in interface.children("Operation"):
            scoped = operation.get("scopedName")
            if scoped not in declared:
                continue
            unsafe = sorted(
                param.name
                for param in operation.children("Param")
                if param.get("getType") in ("out", "inout")
            )
            if unsafe:
                reporter.warning(
                    "MAP004",
                    f"pack {pack.name!r} declares {scoped!r} idempotent, "
                    f"but its signature has out/inout parameter(s) "
                    f"{', '.join(unsafe)}: a retried call would observe or "
                    "clobber the first attempt's results",
                    span,
                )
    return reporter.diagnostics


def _check_unreferenced_maps(pack, used_maps, reporter):
    from repro.templates.maps import BUILTIN_MAPS

    own = set(pack.maps.names()) - set(BUILTIN_MAPS.names())
    for name in sorted(own - used_maps):
        reporter.info(
            "MAP002",
            f"pack {pack.name!r} registers map function {name!r} but no "
            "template references it",
            Span(file=pack.name),
        )


def _check_type_table(pack, reporter):
    table = pack.type_table or {}
    missing = [p for p in CORE_PRIMITIVES if p not in table]
    if missing:
        reporter.info(
            "MAP003",
            f"pack {pack.name!r} type table misses core primitive(s): "
            f"{', '.join(missing)}",
            Span(file=pack.name),
        )

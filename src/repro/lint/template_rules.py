"""The template static analyzer: checks a template AST without running it.

The analyzer mirrors the runtime's resolution rules
(:mod:`repro.templates.runtime`) statically:

- ``@foreach <list>`` resolves through the current node's ancestors,
  then globals, then the ``all<Kind>List`` whole-tree grouping; a name
  none of those can produce is **TPL002**;
- ``${var}`` resolves through loop bindings, the node stack (a node
  lookup walks its EST ancestors, so the per-kind tables in
  :mod:`repro.lint.vartable` are closed over possible ancestors), then
  globals; an unreachable name is **TPL001**;
- every ``-map var Func`` must name a registered map function
  (**TPL003**) and bind a variable the loop subtree actually uses
  (**TPL006**);
- ``@openfile``/``@closefile`` must balance (**TPL004**) and ``@if``
  conditions with no ``${var}`` on either side are statically dead
  (**TPL005**).

The analyzer also classifies the template as *strict-safe*: every
``${var}`` use is a mapped variable, a loop binding, a global, or a
property the builder guarantees on every node that can be in scope.
Only strict-safe templates can run under ``Runtime(strict=True)`` for
arbitrary IDL input, which is what lets the compiler pipeline turn
strict mode on automatically after a clean lint.
"""

from repro.templates import ast as tpl_ast
from repro.templates.errors import TemplateSyntaxError
from repro.templates.maps import BUILTIN_MAPS
from repro.templates.parser import parse_template
from repro.templates.runtime import _singular
from repro.lint import vartable
from repro.lint.diagnostics import DiagnosticReporter, Span


class TemplateLintResult:
    """What one template analysis produced."""

    def __init__(self, template, diagnostics, strict_safe, used_maps,
                 strict_unsafe_uses):
        self.template = template
        self.diagnostics = diagnostics
        #: True when every ${var} use is guaranteed defined for any EST.
        self.strict_safe = strict_safe
        #: Map-function names the template references via -map.
        self.used_maps = used_maps
        #: (name, line) pairs that are resolvable but not guaranteed.
        self.strict_unsafe_uses = strict_unsafe_uses


def lint_template_source(source, name="<template>", loader=None, maps=None,
                         extra_globals=(), extra_global_lists=None,
                         reporter=None):
    """Parse and lint template text; returns a :class:`TemplateLintResult`.

    *maps* is a :class:`repro.templates.maps.MapRegistry` (or None for a
    bare template, where only engine built-ins are checkable);
    *extra_globals*/*extra_global_lists* describe pack-provided
    variables beyond the standard ones.
    """
    if reporter is None:
        reporter = DiagnosticReporter(default_file=name, source="template")
    try:
        template = parse_template(source, name=name, loader=loader)
    except TemplateSyntaxError as exc:
        reporter.error(
            "TPL007", exc.message,
            Span(file=exc.template or name, line=exc.line or 0),
        )
        return TemplateLintResult(None, reporter.diagnostics, False, set(), [])
    return lint_template(template, maps=maps, extra_globals=extra_globals,
                         extra_global_lists=extra_global_lists,
                         reporter=reporter)


def lint_template(template, maps=None, extra_globals=(),
                  extra_global_lists=None, reporter=None):
    """Lint a parsed :class:`repro.templates.ast.Template`."""
    if reporter is None:
        reporter = DiagnosticReporter(default_file=template.name,
                                      source="template")
    analyzer = _Analyzer(template, maps, extra_globals,
                         extra_global_lists or {}, reporter)
    analyzer.run()
    return TemplateLintResult(
        template,
        reporter.diagnostics,
        analyzer.strict_safe,
        analyzer.used_maps,
        analyzer.strict_unsafe_uses,
    )


class _StaticFrame:
    """One @foreach nesting level, statically."""

    __slots__ = ("kinds", "maps", "plain_bindings", "used_vars")

    def __init__(self, kinds, maps, plain_bindings=()):
        #: Possible element kinds for a node frame; None for plain lists.
        self.kinds = kinds
        self.maps = dict(maps or {})
        self.plain_bindings = frozenset(plain_bindings)
        #: ${var} names used anywhere in the subtree (for TPL006).
        self.used_vars = set()


class _Analyzer:
    def __init__(self, template, maps, extra_globals, extra_global_lists,
                 reporter):
        self._template = template
        self._maps = maps
        self._reporter = reporter
        self._file = template.name
        self._frames = []
        self._open_depth = 0
        self._last_open_line = 0
        self._global_vars = set(vartable.PACK_GLOBALS) | set(extra_globals)
        self._global_lists = dict(vartable.GLOBAL_LISTS)
        self._global_lists.update(extra_global_lists)
        self._global_vars.update(self._global_lists)
        #: All @set names (flow-insensitive) vs. names set so far
        #: (document order) — the difference drives strict-safety only.
        self._all_set_names = self._collect_set_names(template.body)
        self._set_so_far = set()
        self.strict_safe = True
        self.strict_unsafe_uses = []
        self.used_maps = set()

    def run(self):
        self._walk_body(self._template.body)
        if self._open_depth > 0:
            self._reporter.warning(
                "TPL004",
                f"{self._open_depth} @openfile region(s) never closed by "
                "@closefile",
                Span(file=self._file, line=self._last_open_line),
            )

    # -- traversal --------------------------------------------------------

    def _collect_set_names(self, body):
        names = set()
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, tpl_ast.SetVar):
                names.add(node.name)
            elif isinstance(node, tpl_ast.Foreach):
                stack.extend(node.body)
            elif isinstance(node, tpl_ast.If):
                for _, branch in node.branches:
                    stack.extend(branch)
        return names

    def _walk_body(self, body):
        for node in body:
            if isinstance(node, tpl_ast.TextLine):
                self._check_parts(node.parts, node.line)
            elif isinstance(node, tpl_ast.Foreach):
                self._enter_foreach(node)
            elif isinstance(node, tpl_ast.If):
                self._check_if(node)
            elif isinstance(node, tpl_ast.OpenFile):
                self._check_parts(node.parts, node.line)
                self._open_depth += 1
                self._last_open_line = node.line
            elif isinstance(node, tpl_ast.CloseFile):
                if self._open_depth == 0:
                    self._reporter.warning(
                        "TPL004",
                        "@closefile without a matching @openfile",
                        Span(file=self._file, line=node.line),
                    )
                else:
                    self._open_depth -= 1
            elif isinstance(node, tpl_ast.SetVar):
                self._check_parts(node.parts, node.line)
                self._set_so_far.add(node.name)

    def _check_if(self, node):
        for condition, branch in node.branches:
            if condition is not None:
                refs = [p for p in condition.left + condition.right
                        if isinstance(p, tpl_ast.VarRef)]
                if not refs:
                    rendered = "".join(str(p) for p in condition.left)
                    if condition.op:
                        rendered += f" {condition.op} " + "".join(
                            str(p) for p in condition.right
                        )
                    self._reporter.warning(
                        "TPL005",
                        f"@if condition ({rendered.strip() or 'empty'}) contains "
                        "no ${var}; the branch is statically dead or always "
                        "taken",
                        Span(file=self._file, line=condition.line),
                    )
                self._check_parts(condition.left, condition.line)
                self._check_parts(condition.right, condition.line)
            self._walk_body(branch)

    # -- @foreach ----------------------------------------------------------

    def _enter_foreach(self, node):
        for var, func in node.maps.items():
            self._check_map_function(func, node.line)
        frame = self._resolve_list_frame(node)
        self._frames.append(frame)
        self._walk_body(node.body)
        self._frames.pop()
        for var in node.maps:
            if var not in frame.used_vars:
                self._reporter.warning(
                    "TPL006",
                    f"-map binds ${{{var}}} but the @foreach "
                    f"{node.list_name} body never uses it",
                    Span(file=self._file, line=node.line),
                )
        # Propagate subtree usage so -map on an *outer* loop counts uses
        # in inner loops.
        if self._frames:
            self._frames[-1].used_vars |= frame.used_vars

    def _node_kinds(self):
        """Element kinds of the innermost node frame ({"Root"} outside)."""
        for frame in reversed(self._frames):
            if frame.kinds is not None:
                return frame.kinds
        return frozenset({"Root"})

    def _resolve_list_frame(self, node):
        list_name = node.list_name
        kinds = self._node_kinds()
        node_lists = vartable.lists_of(kinds)
        if list_name in node_lists:
            return _StaticFrame(frozenset(node_lists[list_name]), node.maps)
        if list_name in self._global_lists:
            return _StaticFrame(
                frozenset(self._global_lists[list_name]), node.maps
            )
        if list_name in vartable.plain_lists_of(kinds):
            bindings = {"item"}
            singular = _singular(list_name)
            if singular:
                bindings.add(singular)
            return _StaticFrame(None, node.maps, bindings)
        if list_name.startswith("all") and list_name.endswith("List"):
            kind = list_name[3:-4]
            if kind in vartable.known_kinds():
                return _StaticFrame(frozenset({kind}), node.maps)
        self._reporter.error(
            "TPL002",
            f"@foreach {list_name}: no EST kind, plain-list property, or "
            "global defines such a list (the loop would silently iterate "
            "nothing)",
            Span(file=self._file, line=node.line),
        )
        # Analyze the body permissively so one bad list name does not
        # cascade into a TPL001 for every variable inside it.
        return _StaticFrame(frozenset(vartable.known_kinds()), node.maps,
                            {"item", _singular(list_name) or "item"})

    def _check_map_function(self, func, line):
        self.used_maps.add(func)
        if self._maps is not None:
            known = self._maps.names()
        else:
            # Bare template: pack namespaces are unknowable, so only
            # check un-namespaced (builtin) references.
            if "::" in func:
                return
            known = BUILTIN_MAPS.names()
        if func not in known:
            self._reporter.error(
                "TPL003",
                f"-map references unknown map function {func!r} "
                f"(known: {', '.join(sorted(known)) or 'none'})",
                Span(file=self._file, line=line),
            )

    # -- ${var} -------------------------------------------------------------

    def _check_parts(self, parts, line):
        for part in parts:
            if isinstance(part, tpl_ast.VarRef):
                self._check_var(part.name, line)

    def _check_var(self, name, line):
        for frame in self._frames:
            frame.used_vars.add(name)
        # 1. Mapped by an enclosing frame: the map synthesizes a value
        #    even when no underlying property exists — always defined.
        if any(name in frame.maps for frame in self._frames):
            return
        # 2. Loop bindings.
        if self._frames and name in vartable.LOOP_BINDINGS:
            return
        if any(name in frame.plain_bindings for frame in self._frames):
            return
        # 3. Node lookup (walks EST ancestors).
        kinds = self._node_kinds()
        closure = vartable.ancestor_closure(kinds)
        if name in vartable.available_vars(closure):
            if name not in _guaranteed_vars(kinds):
                self._note_strict_unsafe(name, line)
            return
        # A child list is itself a resolvable (list-valued) variable.
        if name in vartable.lists_of(kinds) or name in vartable.plain_lists_of(kinds):
            self._note_strict_unsafe(name, line)
            return
        # 4. Globals, including @set bindings.
        if name in self._global_vars:
            return
        if name in self._all_set_names:
            if name not in self._set_so_far:
                # Defined somewhere, but possibly after this use.
                self._note_strict_unsafe(name, line)
            return
        self.strict_safe = False
        self._reporter.error(
            "TPL001",
            f"${{{name}}} cannot resolve in any reachable context "
            f"(node kinds in scope: {', '.join(sorted(kinds))})",
            Span(file=self._file, line=line),
        )

    def _note_strict_unsafe(self, name, line):
        self.strict_safe = False
        self.strict_unsafe_uses.append((name, line))


def _guaranteed_vars(kinds):
    """Variables guaranteed resolvable on a node of *every* kind in
    *kinds*, via the greatest fixpoint over possible parent chains."""
    table = _guaranteed_table()
    result = None
    for kind in kinds:
        entry = table.get(kind, frozenset())
        result = entry if result is None else (result & entry)
    return result or frozenset()


_GUARANTEED = None


def _guaranteed_table():
    global _GUARANTEED
    if _GUARANTEED is not None:
        return _GUARANTEED
    parents = {}
    for kind, entry in vartable.KIND_TABLE.items():
        for element_kinds in entry.node_lists.values():
            for element in element_kinds:
                parents.setdefault(element, set()).add(kind)
    universe = set()
    for entry in vartable.KIND_TABLE.values():
        universe |= entry.required
    table = {
        kind: (set(universe) | entry.required)
        for kind, entry in vartable.KIND_TABLE.items()
    }
    table["Root"] = set(vartable.KIND_TABLE["Root"].required)
    changed = True
    while changed:
        changed = False
        for kind, entry in vartable.KIND_TABLE.items():
            kind_parents = parents.get(kind)
            if not kind_parents:
                new = set(entry.required)
            else:
                inherited = None
                for parent in kind_parents:
                    parent_vars = table.get(parent, set())
                    inherited = (
                        set(parent_vars) if inherited is None
                        else inherited & parent_vars
                    )
                new = entry.required | (inherited or set())
            if new != table[kind]:
                table[kind] = new
                changed = True
    _GUARANTEED = {kind: frozenset(vars_) for kind, vars_ in table.items()}
    return _GUARANTEED

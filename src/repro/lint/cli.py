"""``python -m repro.lint`` — run the diagnostics engine from the shell.

Targets may be ``.idl`` files (IDL lint pass), ``.tmpl`` files (bare
template analysis against the engine built-ins), ``.py`` files
(embedded IDL string literals are extracted and linted — the repo's
examples carry their IDL inline), or directories (scanned recursively
for all three).  ``--mapping`` lints a bundled pack by name; with no
targets at all, every registered pack is linted.

``--concurrency`` switches the ``.py`` targets to the flow pass
(CON0xx concurrency analysis) instead of embedded-IDL extraction, with
an optional justified baseline (``--baseline`` / ``--write-baseline``).
``--arch`` composes with it in the same invocation, sharing one parse
per wire module.

Exit status is 1 when any finding reaches ``--fail-on`` severity
(default: error), 2 on usage errors.
"""

import argparse
import ast as python_ast
import os
import sys

from repro.lint.arch_rules import lint_emission_paths, lint_wire_layering
from repro.lint.diagnostics import Severity, Span
from repro.lint.formats import render_json, render_sarif, render_text
from repro.lint.idl_rules import lint_idl_source
from repro.lint.mapping_rules import lint_pack, lint_pack_idempotence
from repro.lint.template_rules import lint_template_source

#: The checked-in concurrency baseline, picked up when present.
DEFAULT_BASELINE = ".concurrency-baseline.json"


def build_arg_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically check IDL files, templates, and mapping packs.",
    )
    parser.add_argument(
        "targets", nargs="*",
        help=".idl/.tmpl/.py files or directories to lint",
    )
    parser.add_argument(
        "--mapping", "-m", action="append", default=[], metavar="NAME",
        help="lint a bundled mapping pack (repeatable)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--fail-on", choices=(Severity.ERROR, Severity.WARNING),
        default=Severity.ERROR,
        help="lowest severity that makes the exit status non-zero",
    )
    parser.add_argument(
        "--include", "-I", action="append", default=[], metavar="DIR",
        help="IDL include search path (repeatable)",
    )
    parser.add_argument(
        "--arch", action="store_true",
        help="check the architecture contracts: ARCH001 (no module "
             "under repro.wire except wire/aio may import socket, "
             "selectors, asyncio, or the blocking transport) and "
             "ARCH002 (no bytes-concatenation frame assembly in the "
             "wire/marshal hot paths outside the BufferPlan module)",
    )
    parser.add_argument(
        "--concurrency", action="store_true",
        help="run the flow pass (CON0xx) over the .py targets: blocking "
             "calls reachable from async code, lock-order cycles, "
             "guarded-by violations, thread lifecycle, error-kind "
             "vocabulary (default target: the installed repro package)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="justified-baseline file for --concurrency (default: "
             f"{DEFAULT_BASELINE} when it exists); matching findings "
             "are suppressed, stale entries become CON000 warnings",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="write the current --concurrency findings to FILE as a "
             "baseline skeleton (justifications must be filled in) and "
             "exit clean",
    )
    return parser


def main(argv=None):
    args = build_arg_parser().parse_args(argv)
    diagnostics = []

    packs = []
    for name in args.mapping:
        try:
            diagnostics.extend(lint_pack(name))
        except KeyError:
            print(f"error: unknown mapping {name!r}", file=sys.stderr)
            return 2
        from repro.mappings.registry import get_pack

        packs.append(get_pack(name))

    # A concurrency run walks directories for .py only; the IDL and
    # template passes still apply to explicitly named files.
    extensions = (".py",) if args.concurrency else (".idl", ".tmpl", ".py")
    files = _expand_targets(args.targets, extensions)
    if files is None:
        return 2

    program = None
    if args.concurrency:
        # .py targets feed the flow pass (one parse, shared with
        # --arch below); everything else flows through the usual
        # per-file passes.  Embedded-IDL extraction is a per-file
        # convenience for the examples, not wanted on a whole-package
        # concurrency sweep.
        from repro.lint.flow import build_program, lint_program

        py_targets = [f for f in files if f.endswith(".py")]
        files = [f for f in files if not f.endswith(".py")]
        if not args.targets:
            import repro

            py_targets = [os.path.dirname(repro.__file__)]
        program = build_program(py_targets)
        flow_findings = lint_program(program)
        code = _apply_flow_baseline(args, flow_findings, diagnostics)
        if code is not None:
            return code

    for path in files:
        diagnostics.extend(_lint_file(path, args.include, packs))

    if args.arch:
        preparsed = None
        if program is not None:
            preparsed = {
                os.path.abspath(module.filename): module.tree
                for module in program.modules.values()
            }
        diagnostics.extend(lint_wire_layering(preparsed=preparsed))
        diagnostics.extend(lint_emission_paths(preparsed=preparsed))

    if (not args.targets and not args.mapping and not args.arch
            and not args.concurrency):
        from repro.mappings.registry import all_packs

        for pack in all_packs():
            diagnostics.extend(lint_pack(pack))

    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.format]
    sys.stdout.write(renderer(diagnostics))
    failing = [
        d for d in diagnostics if Severity.at_least(d.severity, args.fail_on)
    ]
    return 1 if failing else 0


def _apply_flow_baseline(args, flow_findings, diagnostics):
    """Fold the flow findings into *diagnostics* through the baseline
    workflow.  Returns an exit code to short-circuit with, or None to
    continue the run."""
    from repro.lint.flow import apply_baseline, load_baseline, render_baseline

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(flow_findings))
        print(
            f"wrote {len(flow_findings)} finding(s) to "
            f"{args.write_baseline}; fill in the justifications",
            file=sys.stderr,
        )
        return 0
    baseline_path = args.baseline
    if baseline_path is None and os.path.isfile(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    if baseline_path is None:
        diagnostics.extend(flow_findings)
        return None
    try:
        entries = load_baseline(baseline_path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    kept, _suppressed, stale = apply_baseline(
        flow_findings, entries, baseline_path
    )
    diagnostics.extend(kept)
    diagnostics.extend(stale)
    return None


def _expand_targets(targets, extensions=(".idl", ".tmpl", ".py")):
    files = []
    for target in targets:
        if os.path.isdir(target):
            for root, _dirs, names in sorted(os.walk(target)):
                for name in sorted(names):
                    if name.endswith(extensions):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(target):
            files.append(target)
        else:
            print(f"error: no such file or directory: {target}",
                  file=sys.stderr)
            return None
    return files


def _lint_file(path, include_paths, packs=()):
    if path.endswith(".idl"):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        spec, diagnostics = lint_idl_source(
            source, filename=path, include_paths=tuple(include_paths)
        )
        if spec is not None:
            # Cross-check each --mapping pack's idempotence declarations
            # against this file's operation signatures (MAP004).
            for pack in packs:
                diagnostics.extend(
                    lint_pack_idempotence(pack, spec, filename=path)
                )
        return diagnostics
    if path.endswith(".tmpl"):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        directory = os.path.dirname(path) or "."

        def loader(name):
            candidate = os.path.join(directory, name)
            if not os.path.isfile(candidate):
                raise KeyError(name)
            with open(candidate, "r", encoding="utf-8") as handle:
                return handle.read()

        result = lint_template_source(source, name=path, loader=loader)
        return result.diagnostics
    if path.endswith(".py"):
        return _lint_embedded_idl(path, include_paths)
    return []


def _lint_embedded_idl(path, include_paths):
    """Lint IDL carried as string literals inside a Python file.

    The examples embed their IDL as module-level strings; any string
    constant that looks like IDL (declares a module/interface and uses
    braces) is linted, with diagnostic lines re-anchored into the
    Python file.
    """
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = python_ast.parse(source, filename=path)
    except SyntaxError:
        return []
    diagnostics = []
    for node in python_ast.walk(tree):
        if not isinstance(node, python_ast.Constant):
            continue
        value = node.value
        if not isinstance(value, str) or not _looks_like_idl(value):
            continue
        _, found = lint_idl_source(
            value, filename=path, include_paths=tuple(include_paths)
        )
        # The literal's first line is node.lineno; IDL line N sits at
        # Python line (lineno + N - 1).
        offset = node.lineno - 1
        for diagnostic in found:
            span = diagnostic.span
            if span.line:
                diagnostic.span = Span(
                    file=span.file, line=span.line + offset, column=span.column
                )
            diagnostics.append(diagnostic)
    return diagnostics


def _looks_like_idl(text):
    stripped = text.strip()
    if "{" not in stripped or ";" not in stripped:
        return False
    return any(
        keyword in stripped for keyword in ("interface ", "module ")
    )

"""``python -m repro.lint`` — run the diagnostics engine from the shell.

Targets may be ``.idl`` files (IDL lint pass), ``.tmpl`` files (bare
template analysis against the engine built-ins), ``.py`` files
(embedded IDL string literals are extracted and linted — the repo's
examples carry their IDL inline), or directories (scanned recursively
for all three).  ``--mapping`` lints a bundled pack by name; with no
targets at all, every registered pack is linted.

Exit status is 1 when any finding reaches ``--fail-on`` severity
(default: error), 2 on usage errors.
"""

import argparse
import ast as python_ast
import os
import sys

from repro.lint.arch_rules import lint_wire_layering
from repro.lint.diagnostics import Severity, Span
from repro.lint.formats import render_json, render_sarif, render_text
from repro.lint.idl_rules import lint_idl_source
from repro.lint.mapping_rules import lint_pack, lint_pack_idempotence
from repro.lint.template_rules import lint_template_source


def build_arg_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically check IDL files, templates, and mapping packs.",
    )
    parser.add_argument(
        "targets", nargs="*",
        help=".idl/.tmpl/.py files or directories to lint",
    )
    parser.add_argument(
        "--mapping", "-m", action="append", default=[], metavar="NAME",
        help="lint a bundled mapping pack (repeatable)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--fail-on", choices=(Severity.ERROR, Severity.WARNING),
        default=Severity.ERROR,
        help="lowest severity that makes the exit status non-zero",
    )
    parser.add_argument(
        "--include", "-I", action="append", default=[], metavar="DIR",
        help="IDL include search path (repeatable)",
    )
    parser.add_argument(
        "--arch", action="store_true",
        help="check the sans-I/O layering contract (ARCH001): no module "
             "under repro.wire except wire/aio may import socket, "
             "selectors, asyncio, or the blocking transport",
    )
    return parser


def main(argv=None):
    args = build_arg_parser().parse_args(argv)
    diagnostics = []

    packs = []
    for name in args.mapping:
        try:
            diagnostics.extend(lint_pack(name))
        except KeyError:
            print(f"error: unknown mapping {name!r}", file=sys.stderr)
            return 2
        from repro.mappings.registry import get_pack

        packs.append(get_pack(name))

    files = _expand_targets(args.targets)
    if files is None:
        return 2
    for path in files:
        diagnostics.extend(_lint_file(path, args.include, packs))

    if args.arch:
        diagnostics.extend(lint_wire_layering())

    if not args.targets and not args.mapping and not args.arch:
        from repro.mappings.registry import all_packs

        for pack in all_packs():
            diagnostics.extend(lint_pack(pack))

    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.format]
    sys.stdout.write(renderer(diagnostics))
    failing = [
        d for d in diagnostics if Severity.at_least(d.severity, args.fail_on)
    ]
    return 1 if failing else 0


def _expand_targets(targets):
    files = []
    for target in targets:
        if os.path.isdir(target):
            for root, _dirs, names in sorted(os.walk(target)):
                for name in sorted(names):
                    if name.endswith((".idl", ".tmpl", ".py")):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(target):
            files.append(target)
        else:
            print(f"error: no such file or directory: {target}",
                  file=sys.stderr)
            return None
    return files


def _lint_file(path, include_paths, packs=()):
    if path.endswith(".idl"):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        spec, diagnostics = lint_idl_source(
            source, filename=path, include_paths=tuple(include_paths)
        )
        if spec is not None:
            # Cross-check each --mapping pack's idempotence declarations
            # against this file's operation signatures (MAP004).
            for pack in packs:
                diagnostics.extend(
                    lint_pack_idempotence(pack, spec, filename=path)
                )
        return diagnostics
    if path.endswith(".tmpl"):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        directory = os.path.dirname(path) or "."

        def loader(name):
            candidate = os.path.join(directory, name)
            if not os.path.isfile(candidate):
                raise KeyError(name)
            with open(candidate, "r", encoding="utf-8") as handle:
                return handle.read()

        result = lint_template_source(source, name=path, loader=loader)
        return result.diagnostics
    if path.endswith(".py"):
        return _lint_embedded_idl(path, include_paths)
    return []


def _lint_embedded_idl(path, include_paths):
    """Lint IDL carried as string literals inside a Python file.

    The examples embed their IDL as module-level strings; any string
    constant that looks like IDL (declares a module/interface and uses
    braces) is linted, with diagnostic lines re-anchored into the
    Python file.
    """
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = python_ast.parse(source, filename=path)
    except SyntaxError:
        return []
    diagnostics = []
    for node in python_ast.walk(tree):
        if not isinstance(node, python_ast.Constant):
            continue
        value = node.value
        if not isinstance(value, str) or not _looks_like_idl(value):
            continue
        _, found = lint_idl_source(
            value, filename=path, include_paths=tuple(include_paths)
        )
        # The literal's first line is node.lineno; IDL line N sits at
        # Python line (lineno + N - 1).
        offset = node.lineno - 1
        for diagnostic in found:
            span = diagnostic.span
            if span.line:
                diagnostic.span = Span(
                    file=span.file, line=span.line + offset, column=span.column
                )
            diagnostics.append(diagnostic)
    return diagnostics


def _looks_like_idl(text):
    stripped = text.strip()
    if "{" not in stripped or ";" not in stripped:
        return False
    return any(
        keyword in stripped for keyword in ("interface ", "module ")
    )

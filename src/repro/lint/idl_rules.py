"""The IDL lint pass: collect-many semantics plus rules the fail-fast
checker cannot express.

:func:`lint_idl_source` parses an IDL file, runs
:class:`repro.idl.semantics.SemanticAnalyzer` with a collecting reporter
(every ``IDL00x`` problem in one run instead of aborting at the first),
then applies the pure lint rules over the resolved tree:

- **IDL010** identifiers in one scope that collide case-insensitively —
  IDL is case-insensitive for collision purposes (CORBA 2.3 §3.2.3)
  even though this front-end resolves names case-sensitively;
- **IDL011** forward-declared interfaces never defined;
- **IDL012/IDL013** typedefs and constants nothing references;
- **IDL014** ``incopy`` of an interface type — pass-by-value of an
  object reference copies the *reference*, not the object, which is
  usually not what the author of an ``incopy`` signature intended;
- **IDL015** ``oneway`` with ``raises`` — a fire-and-forget call can
  never deliver the exception;
- **IDL016** unbounded recursion: a struct/union/exception that
  contains itself by value (directly or through typedefs/members) has
  no finite representation.  Recursion through a *sequence* is legal
  IDL and not flagged.
"""

from repro.idl import ast
from repro.idl.errors import IdlError, IdlSyntaxError
from repro.idl.lexer import tokenize
from repro.idl.parser import parse_tokens
from repro.idl.semantics import analyze
from repro.idl import types as idl_types
from repro.lint.diagnostics import DiagnosticReporter, Note, Span


def lint_idl_source(source, filename="<string>", include_paths=(), reporter=None):
    """Lint IDL text; returns ``(spec_or_None, diagnostics)``."""
    if reporter is None:
        reporter = DiagnosticReporter(default_file=filename, source="idl")
    try:
        tokens = tokenize(source, filename=filename)
        spec = parse_tokens(tokens, filename=filename, include_paths=include_paths)
    except IdlSyntaxError as exc:
        reporter.error("IDL000", exc.message, exc.location)
        return None, reporter.diagnostics
    except IdlError as exc:
        reporter.error("IDL000", exc.message, getattr(exc, "location", None))
        return None, reporter.diagnostics
    analyze(spec, reporter=reporter)
    lint_spec(spec, reporter)
    return spec, reporter.diagnostics


def lint_spec(spec, reporter):
    """Apply the pure lint rules to an analyzed Specification."""
    _check_case_collisions(spec, reporter)
    _check_undefined_forwards(spec, reporter)
    _check_unused(spec, reporter)
    _check_incopy_interfaces(spec, reporter)
    _check_oneway_raises(spec, reporter)
    _check_recursion(spec, reporter)
    return reporter.diagnostics


# -- IDL010: case-insensitive collisions ------------------------------------

def _scope_members(node):
    if isinstance(node, (ast.Specification, ast.Module)):
        return node.declarations
    if isinstance(node, ast.InterfaceDecl):
        return node.body
    return ()


def _check_case_collisions(spec, reporter):
    for scope in ast.walk(spec):
        members = _scope_members(scope)
        if not members:
            continue
        by_folded = {}
        for decl in members:
            names = [decl.name] if decl.name else []
            if isinstance(decl, ast.EnumDecl):
                names.extend(decl.enumerators)
            for name in names:
                by_folded.setdefault(name.lower(), []).append((name, decl))
        for folded, entries in by_folded.items():
            distinct = {name for name, _ in entries}
            if len(distinct) < 2:
                continue
            first_name, first_decl = entries[0]
            for name, decl in entries[1:]:
                if name == first_name:
                    continue
                reporter.warning(
                    "IDL010",
                    f"{name!r} differs from {first_name!r} only by case; IDL "
                    "identifiers may not collide case-insensitively",
                    decl.location,
                    notes=[Note(
                        f"{first_name!r} declared here",
                        Span.from_location(first_decl.location),
                    )],
                )


# -- IDL011: forwards never defined ------------------------------------------

def _check_undefined_forwards(spec, reporter):
    seen = set()
    for node in ast.walk(spec):
        if not isinstance(node, ast.Forward):
            continue
        target = node.scoped_name()
        if target in seen:
            continue
        seen.add(target)
        definition = node.definition or spec.find(target)
        if not isinstance(definition, ast.InterfaceDecl):
            reporter.warning(
                "IDL011",
                f"forward-declared interface {target!r} is never defined",
                node.location,
            )


# -- IDL012/IDL013: unused typedefs and constants -----------------------------

def _referenced_declarations(spec):
    """Every declaration some type reference or constant expression names."""
    referenced = set()

    def note_type(idl_type):
        while idl_type is not None:
            if isinstance(idl_type, idl_types.NamedType):
                if idl_type.declaration is not None:
                    referenced.add(id(idl_type.declaration))
                return
            if isinstance(idl_type, (idl_types.SequenceType, idl_types.ArrayType)):
                note_expr(getattr(idl_type, "bound_expr", None))
                idl_type = idl_type.element
                continue
            note_expr(getattr(idl_type, "bound_expr", None))
            return

    def note_expr(expr):
        if isinstance(expr, ast.NameRef):
            if expr.declaration is not None:
                referenced.add(id(expr.declaration))
        elif isinstance(expr, ast.UnaryExpr):
            note_expr(expr.operand)
        elif isinstance(expr, ast.BinaryExpr):
            note_expr(expr.left)
            note_expr(expr.right)

    for node in ast.walk(spec):
        if isinstance(node, (ast.TypedefDecl,)):
            note_type(node.aliased_type)
        elif isinstance(node, (ast.Parameter,)):
            note_type(node.idl_type)
            note_expr(node.default)
        elif isinstance(node, ast.Operation):
            note_type(node.return_type)
            referenced.update(id(r) for r in node.resolved_raises)
        elif isinstance(node, ast.Attribute):
            note_type(node.idl_type)
        elif isinstance(node, (ast.StructMember, ast.UnionCase)):
            note_type(node.idl_type)
            for label in getattr(node, "labels", ()):
                note_expr(label)
        elif isinstance(node, ast.UnionDecl):
            note_type(node.discriminator)
        elif isinstance(node, ast.ConstDecl):
            note_type(node.idl_type)
            note_expr(node.value)
        elif isinstance(node, ast.InterfaceDecl):
            referenced.update(id(b) for b in node.resolved_bases)
    return referenced


def _check_unused(spec, reporter):
    referenced = _referenced_declarations(spec)
    for node in ast.walk(spec):
        if id(node) in referenced:
            continue
        if isinstance(node, ast.TypedefDecl):
            reporter.info(
                "IDL012",
                f"typedef {node.scoped_name()!r} is never referenced",
                node.location,
            )
        elif isinstance(node, ast.ConstDecl):
            reporter.info(
                "IDL013",
                f"constant {node.scoped_name()!r} is never referenced",
                node.location,
            )


# -- IDL014: incopy of an interface type ---------------------------------------

def _names_interface(idl_type):
    if isinstance(idl_type, idl_types.NamedType):
        decl = idl_type.declaration
        if isinstance(decl, ast.Forward):
            decl = decl.definition or decl
        return isinstance(decl, (ast.InterfaceDecl, ast.Forward))
    return isinstance(idl_type, idl_types.ObjectType)


def _check_incopy_interfaces(spec, reporter):
    for node in ast.walk(spec):
        if not isinstance(node, ast.Parameter):
            continue
        if node.direction == "incopy" and _names_interface(node.idl_type):
            reporter.info(
                "IDL014",
                f"incopy parameter {node.name!r} has interface type "
                f"{node.idl_type.idl_name()}; only the object reference is "
                "copied, not the object state",
                node.location,
            )


# -- IDL015: oneway with raises ------------------------------------------------

def _check_oneway_raises(spec, reporter):
    for node in ast.walk(spec):
        if isinstance(node, ast.Operation) and node.is_oneway and node.raises:
            reporter.error(
                "IDL015",
                f"oneway operation {node.scoped_name()!r} declares raises "
                f"({', '.join(node.raises)}); a fire-and-forget call can "
                "never deliver an exception",
                node.location,
            )


# -- IDL016: unbounded recursion -----------------------------------------------

def _by_value_components(decl):
    """The member types a struct/union/exception embeds *by value*."""
    if isinstance(decl, (ast.StructDecl, ast.ExceptionDecl)):
        return [m.idl_type for m in decl.members]
    if isinstance(decl, ast.UnionDecl):
        return [c.idl_type for c in decl.cases]
    return []


def _embedded_declarations(idl_type):
    """Declarations *idl_type* embeds by value.

    Sequences (and object references) break the by-value chain — a
    recursive sequence member is legal IDL — but arrays and typedef
    chains do not.
    """
    if isinstance(idl_type, idl_types.NamedType):
        decl = idl_type.declaration
        if isinstance(decl, ast.TypedefDecl):
            return _embedded_declarations(decl.aliased_type)
        if isinstance(decl, (ast.StructDecl, ast.UnionDecl, ast.ExceptionDecl)):
            return [decl]
        return []
    if isinstance(idl_type, idl_types.ArrayType):
        return _embedded_declarations(idl_type.element)
    return []


def _check_recursion(spec, reporter):
    flagged = set()
    for node in ast.walk(spec):
        if not isinstance(node, (ast.StructDecl, ast.UnionDecl, ast.ExceptionDecl)):
            continue
        if id(node) in flagged:
            continue
        # DFS over the by-value containment graph looking for a cycle
        # back to `node`.
        stack = [(node, [node])]
        visited = set()
        while stack:
            current, path = stack.pop()
            for component in _by_value_components(current):
                for embedded in _embedded_declarations(component):
                    if embedded is node:
                        cycle = " -> ".join(d.scoped_name() for d in path + [node])
                        reporter.error(
                            "IDL016",
                            f"{node.scoped_name()!r} contains itself by value "
                            f"({cycle}); recursion is only legal through a "
                            "sequence",
                            node.location,
                        )
                        flagged.update(id(d) for d in path)
                        stack.clear()
                        break
                    if id(embedded) not in visited:
                        visited.add(id(embedded))
                        stack.append((embedded, path + [embedded]))
                else:
                    continue
                break
    return reporter.diagnostics

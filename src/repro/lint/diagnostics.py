"""The shared diagnostic model: codes, severities, spans, reporters.

Every lint pass reports :class:`Diagnostic` objects with a stable code
(``IDL0xx`` for the IDL front-end, ``TPL0xx`` for the template analyzer,
``MAP0xx`` for the cross-layer mapping checks), a severity, a source
span, and optional related notes.  A :class:`DiagnosticReporter`
collects many diagnostics in one run — the opposite of the historical
fail-fast behaviour, which :class:`repro.idl.errors.IdlSemanticError`
preserved by raising on the first problem.
"""

from dataclasses import dataclass, field


class Severity:
    """Diagnostic severities, ordered ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _RANK = {ERROR: 3, WARNING: 2, INFO: 1}

    @classmethod
    def rank(cls, severity):
        return cls._RANK.get(severity, 0)

    @classmethod
    def at_least(cls, severity, threshold):
        return cls.rank(severity) >= cls.rank(threshold)


#: Every diagnostic code the engine can emit, with a one-line summary.
#: ``docs/DIAGNOSTICS.md`` catalogues each with a bad/good example.
CODES = {
    # -- IDL front-end (converted semantic checks) ------------------------
    "IDL000": "IDL syntax error (lexer or parser)",
    "IDL001": "redefinition of a name in the same scope",
    "IDL002": "undefined or unresolvable scoped name",
    "IDL003": "invalid inheritance (non-interface base, cycle, or member clash)",
    "IDL004": "raises clause names something that is not an exception",
    "IDL005": "invalid oneway operation signature",
    "IDL006": "invalid constant (range, type, ordering, or evaluation)",
    "IDL007": "invalid parameter list (defaults or duplicate names)",
    # -- IDL lint rules (beyond the fail-fast checker) --------------------
    "IDL010": "identifiers in one scope collide case-insensitively",
    "IDL011": "forward-declared interface is never defined",
    "IDL012": "typedef is never referenced",
    "IDL013": "constant is never referenced",
    "IDL014": "incopy parameter of an interface type (pass-by-value of an object)",
    "IDL015": "oneway operation declares a raises clause",
    "IDL016": "unbounded recursion in a struct/union/exception",
    # -- template static analysis ----------------------------------------
    "TPL001": "template variable cannot be resolved in any reachable context",
    "TPL002": "@foreach iterates a list no EST kind or global defines",
    "TPL003": "-map references an unknown map function",
    "TPL004": "unbalanced @openfile/@closefile",
    "TPL005": "@if condition is statically constant (dead branch)",
    "TPL006": "-map binds a variable the loop body never uses",
    "TPL007": "template syntax error",
    # -- cross-layer mapping checks ---------------------------------------
    "MAP001": "mapping pack template is missing or unreadable",
    "MAP002": "map function is registered but never referenced by a template",
    "MAP003": "mapping pack type table misses primitive IDL types",
    "MAP004": "idempotent-declared operation has out/inout parameters "
              "(retry-unsafe)",
    # -- architecture / layering ------------------------------------------
    "ARCH001": "sans-I/O wire module imports an I/O facility "
               "(socket/selectors/asyncio/transport)",
    "ARCH002": "wire/marshal hot path assembles frames by bytes "
               "concatenation or join instead of a BufferPlan",
    # -- concurrency / flow analysis ---------------------------------------
    "CON000": "flow pass administrative finding (unparseable module or "
              "stale baseline entry)",
    "CON001": "blocking call reachable from async code",
    "CON002": "lock-order cycle in the acquisition graph",
    "CON003": "guarded-by violation: field accessed without its "
              "declared lock",
    "CON004": "thread lifecycle: non-daemon thread is never joined",
    "CON005": "CommunicationError kind outside the documented vocabulary",
}


@dataclass(frozen=True)
class Span:
    """A source position: file plus 1-based line/column."""

    file: str = "<unknown>"
    line: int = 0
    column: int = 0

    def __str__(self):
        if self.line:
            return f"{self.file}:{self.line}:{self.column or 1}"
        return self.file

    @classmethod
    def from_location(cls, location, default_file="<unknown>"):
        """Build a Span from a :class:`repro.idl.errors.SourceLocation`,
        an existing Span, or None."""
        if location is None:
            return cls(file=default_file)
        if isinstance(location, cls):
            return location
        return cls(
            file=getattr(location, "filename", default_file),
            line=getattr(location, "line", 0),
            column=getattr(location, "column", 0),
        )


@dataclass(frozen=True)
class Note:
    """A related location attached to a diagnostic."""

    message: str
    span: Span = None

    def __str__(self):
        if self.span is not None:
            return f"{self.span}: note: {self.message}"
        return f"note: {self.message}"


@dataclass
class Diagnostic:
    """One finding: stable code, severity, message, span, related notes."""

    code: str
    severity: str
    message: str
    span: Span = field(default_factory=Span)
    notes: list = field(default_factory=list)
    #: Which pass produced it: "idl", "template", or "mapping".
    source: str = ""

    def __str__(self):
        return f"{self.span}: {self.severity}[{self.code}]: {self.message}"

    def as_dict(self):
        data = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "file": self.span.file,
            "line": self.span.line,
            "column": self.span.column,
            "source": self.source,
        }
        if self.notes:
            data["notes"] = [
                {
                    "message": note.message,
                    "file": note.span.file if note.span else None,
                    "line": note.span.line if note.span else 0,
                    "column": note.span.column if note.span else 0,
                }
                for note in self.notes
            ]
        return data

    @property
    def sort_key(self):
        return (self.span.file, self.span.line, self.span.column, self.code)


class DiagnosticReporter:
    """Collects diagnostics across passes instead of failing fast.

    The ``error`` method intentionally matches the minimal protocol the
    IDL semantic analyzer expects (``error(code, message, location)``),
    so the same object can be threaded through
    :class:`repro.idl.semantics.SemanticAnalyzer` to turn its historical
    fail-fast checks into collect-many diagnostics.
    """

    def __init__(self, default_file="<unknown>", source=""):
        self.diagnostics = []
        self._default_file = default_file
        self._source = source

    # -- emission ---------------------------------------------------------

    def emit(self, diagnostic):
        self.diagnostics.append(diagnostic)
        return diagnostic

    def _report(self, severity, code, message, location, notes, source):
        return self.emit(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                span=Span.from_location(location, self._default_file),
                notes=list(notes or ()),
                source=source if source is not None else self._source,
            )
        )

    def error(self, code, message, location=None, notes=None, source=None):
        return self._report(Severity.ERROR, code, message, location, notes, source)

    def warning(self, code, message, location=None, notes=None, source=None):
        return self._report(Severity.WARNING, code, message, location, notes, source)

    def info(self, code, message, location=None, notes=None, source=None):
        return self._report(Severity.INFO, code, message, location, notes, source)

    def extend(self, diagnostics):
        for diagnostic in diagnostics:
            self.emit(diagnostic)

    # -- interrogation ----------------------------------------------------

    @property
    def has_errors(self):
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    def count(self, severity):
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def at_least(self, threshold):
        """Diagnostics at or above *threshold* severity."""
        return [
            d for d in self.diagnostics if Severity.at_least(d.severity, threshold)
        ]

    def codes(self):
        """The distinct codes reported, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def sorted(self):
        return sorted(self.diagnostics, key=lambda d: d.sort_key)


class LintError(Exception):
    """Raised by the compiler pipeline when lint finds error-severity
    findings before generation starts."""

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics if d.severity == Severity.ERROR]
        summary = f"lint found {len(errors)} error(s)"
        if errors:
            summary += f"; first: {errors[0]}"
        super().__init__(summary)

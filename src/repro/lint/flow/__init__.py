"""Static concurrency/effect analysis: the flow pass (CON0xx).

The two-runtime ORB — a threaded blocking stack and an asyncio
front-end driving the same wire machines — is exactly the surface where
code review stops scaling: a blocking primitive three calls below a
coroutine, a lock taken in a different order on two paths, a field the
reader thread mutates that the caller thread reads bare.  This package
checks those properties statically, the same move the rest of
``repro.lint`` applies to IDL, templates, and mappings.

Layers:

- :mod:`repro.lint.flow.effects` — per-function effect summaries
  (blocking sites, lock acquisitions with held lock-sets, spawns,
  guarded-field accesses) plus the annotation grammar (``# guarded-by:``,
  ``# holds-lock:``, ``# race-ok:``, ``# blocking-ok:``);
- :mod:`repro.lint.flow.callgraph` — the import-resolved call graph and
  the transitive blocking/acquisition closures;
- :mod:`repro.lint.flow.rules` — the CON001–CON005 rule family;
- :mod:`repro.lint.flow.baseline` — the justified-baseline workflow for
  gating CI on new regressions only.

Entry points: :func:`lint_concurrency_paths` for files/trees (the CLI's
``--concurrency``), :func:`lint_concurrency_sources` for in-memory
sources (tests), both returning plain ``Diagnostic`` lists for the
standard renderers.
"""

import os

from repro.lint.flow.callgraph import Program
from repro.lint.flow.rules import ALLOWED_ERROR_KINDS, lint_program
from repro.lint.flow.baseline import (
    apply_baseline,
    load_baseline,
    render_baseline,
)

__all__ = [
    "ALLOWED_ERROR_KINDS",
    "Program",
    "apply_baseline",
    "build_program",
    "lint_concurrency_paths",
    "lint_concurrency_sources",
    "lint_program",
    "load_baseline",
    "module_name_for_path",
    "render_baseline",
]


def module_name_for_path(path):
    """Dotted module name for *path*, anchored at the ``repro`` package
    when the file lives under one, else the bare stem.

    Cross-module call resolution keys off these names, so files under
    ``src/repro/...`` must map to their real import names.
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    name = parts[-1]
    stem = name[:-3] if name.endswith(".py") else name
    if "repro" in parts[:-1]:
        anchor = len(parts) - 2 - parts[:-1][::-1].index("repro")
        dotted = parts[anchor:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


def build_program(paths):
    """Parse and analyze every ``.py`` file in *paths* into a Program.

    *paths* may mix files and directories; directories are walked
    recursively in sorted order.
    """
    program = Program()
    for path in _expand(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        program.add_source(module_name_for_path(path), path, source)
    return program


def _expand(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in sorted(os.walk(path)):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            files.append(path)
    return files


def lint_concurrency_paths(paths):
    """CON0xx findings for the ``.py`` files under *paths*."""
    return lint_program(build_program(paths))


def lint_concurrency_sources(named_sources):
    """CON0xx findings for in-memory ``(filename, source)`` pairs.

    Module names come from the filenames, so two fixture files can
    import each other by stem.
    """
    program = Program()
    for filename, source in named_sources:
        program.add_source(module_name_for_path(filename), filename, source)
    return lint_program(program)

"""Justified-baseline support for the concurrency pass.

A baseline file lets pre-existing findings gate CI on *new* regressions
only.  It is JSON, human-edited, and every entry must carry a written
justification:

.. code-block:: json

    {
      "version": 1,
      "findings": [
        {
          "code": "CON003",
          "file": "src/repro/heidirmi/communicator.py",
          "message": "field ... without holding it",
          "justification": "why this race is benign"
        }
      ]
    }

Matching is by code, path suffix (so the baseline works from any
checkout root), and exact message — deliberately *not* by line number,
so unrelated edits above a finding do not invalidate the baseline.
Entries that no longer match anything are reported as CON000 warnings:
a stale entry is usually a fixed bug whose justification should be
deleted, or a reworded message that silently un-suppressed itself.
"""

import json

from repro.lint.diagnostics import Diagnostic, Severity, Span

__all__ = ["apply_baseline", "load_baseline", "render_baseline"]


def _norm(path):
    return path.replace("\\", "/")


def load_baseline(path):
    """Parse a baseline file into its entry list.

    Raises ValueError on malformed content (missing justification is
    malformed: an unexplained suppression is how baselines rot).
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: baseline must be an object with 'findings'")
    entries = data["findings"]
    for entry in entries:
        for field in ("code", "file", "message", "justification"):
            if not entry.get(field):
                raise ValueError(
                    f"{path}: baseline entry {entry!r} is missing {field!r}"
                )
    return entries


def apply_baseline(diagnostics, entries, baseline_path):
    """Split *diagnostics* against the baseline.

    Returns ``(kept, suppressed, stale)`` where *stale* is a list of
    CON000 warning diagnostics for entries that matched nothing.
    """
    kept = []
    suppressed = []
    used = [False] * len(entries)
    for diagnostic in diagnostics:
        match = None
        for index, entry in enumerate(entries):
            if (entry["code"] == diagnostic.code
                    and entry["message"] == diagnostic.message
                    and _norm(diagnostic.span.file).endswith(_norm(entry["file"]))):
                match = index
                break
        if match is None:
            kept.append(diagnostic)
        else:
            used[match] = True
            suppressed.append(diagnostic)
    stale = []
    for index, entry in enumerate(entries):
        if used[index]:
            continue
        stale.append(Diagnostic(
            code="CON000",
            severity=Severity.WARNING,
            message=(
                f"stale baseline entry for {entry['code']} in "
                f"{entry['file']}: the finding is no longer produced "
                "(delete the entry)"
            ),
            span=Span(file=baseline_path),
            source="flow",
        ))
    return kept, suppressed, stale


def render_baseline(diagnostics):
    """Serialize *diagnostics* as a fresh baseline document.

    Justifications are emitted as a placeholder the author must fill
    in; ``load_baseline`` rejects the placeholder-free empty string but
    accepts anything non-empty, so review is the real gate.
    """
    findings = [
        {
            "code": d.code,
            "file": _norm(d.span.file),
            "message": d.message,
            "justification": "TODO: explain why this finding is acceptable",
        }
        for d in sorted(diagnostics, key=lambda d: d.sort_key)
    ]
    return json.dumps({"version": 1, "findings": findings}, indent=2) + "\n"

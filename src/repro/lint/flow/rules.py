"""The CON0xx rule family over a linked :class:`Program`.

- **CON001** — blocking primitives reachable from ``async def`` code:
  direct blockers in a coroutine are errors; a coroutine calling a
  *sync* function whose transitive closure blocks is an error with the
  witness chain attached; a timeout-less lock acquire directly inside a
  coroutine is a warning (it stalls the event loop for the critical
  section, not forever).  ``# blocking-ok: <reason>`` on the site line
  waives the finding.
- **CON002** — lock-order cycles: every held→acquired pair (direct or
  through resolved calls) is an edge; a strongly-connected component of
  two or more locks is a potential deadlock.
- **CON003** — ``# guarded-by:`` violations: a store or deep use (see
  :mod:`repro.lint.flow.effects` for the depth model) of a guarded
  field on a path that does not hold the declared lock, and calls to
  ``# holds-lock:`` functions without the lock held.  ``# race-ok:
  <reason>`` on the site line waives the finding.
- **CON004** — thread lifecycle: a non-daemon ``threading.Thread`` that
  is never joined outlives shutdown silently.
- **CON005** — ``CommunicationError(kind=...)`` literals outside the
  documented vocabulary (``repro.heidirmi.errors``): the observe layer
  buckets metrics by kind, so a typo mints an unqueryable bucket.
"""

from repro.lint.diagnostics import Diagnostic, Note, Severity, Span

__all__ = ["ALLOWED_ERROR_KINDS", "lint_program"]

#: The documented ``CommunicationError.kind`` vocabulary (the PR 3
#: catalogue in repro.heidirmi.errors, plus the resilience kinds).
ALLOWED_ERROR_KINDS = frozenset({
    "communication",
    "connect-refused",
    "connect-timeout",
    "bind-failed",
    "accept-failed",
    "listener-closed",
    "send-failed",
    "recv-failed",
    "peer-closed",
    "channel-closed",
    "reader-died",
    "peer-protocol-error",
    "frame-overflow",
    "deadline-exceeded",
    "circuit-open",
    "overloaded",
    "draining",
})


def _diag(code, severity, message, filename, line, notes=()):
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        span=Span(file=filename, line=line),
        notes=list(notes),
        source="flow",
    )


def lint_program(program):
    """All CON0xx findings for *program*, in deterministic order."""
    program.link()
    diagnostics = []
    for filename, exc in sorted(program.syntax_errors, key=lambda e: e[0]):
        diagnostics.append(_diag(
            "CON000", Severity.ERROR,
            f"cannot parse module for flow analysis: {exc.msg}",
            filename, exc.lineno or 0,
        ))
    diagnostics.extend(_check_blocking_in_async(program))
    diagnostics.extend(_check_lock_order(program))
    diagnostics.extend(_check_guarded_by(program))
    diagnostics.extend(_check_thread_lifecycle(program))
    diagnostics.extend(_check_error_kinds(program))
    return sorted(diagnostics, key=lambda d: d.sort_key)


# -- CON001 ---------------------------------------------------------------

def _check_blocking_in_async(program):
    diagnostics = []
    for key in sorted(program.functions):
        fn = program.functions[key]
        if not fn.is_async:
            continue
        module = program.modules[fn.module]
        waived = module.blocking_ok_lines
        for site in fn.blocking:
            if site.line in waived:
                continue
            if site.kind == "hard":
                diagnostics.append(_diag(
                    "CON001", Severity.ERROR,
                    f"coroutine {fn.qualname} makes blocking call "
                    f"{site.detail}",
                    module.filename, site.line,
                ))
            else:
                diagnostics.append(_diag(
                    "CON001", Severity.WARNING,
                    f"coroutine {fn.qualname} takes a timeout-less "
                    f"{site.detail}; the event loop stalls for the "
                    "critical section",
                    module.filename, site.line,
                ))
        for site in fn.calls:
            callee = program.resolved_callee(site)
            if callee is None or callee.is_async:
                continue
            if "hard" not in program.blocking_closure[callee.key]:
                continue
            if site.line in waived:
                continue
            chain = program.blocking_chain(callee.key, "hard")
            notes = [
                Note(
                    message=f"{program.functions[step_key].qualname}: {detail}",
                    span=Span(
                        file=program.modules[
                            program.functions[step_key].module
                        ].filename,
                        line=line,
                    ),
                )
                for step_key, line, detail in chain
            ]
            primitive = chain[-1][2] if chain else "a blocking primitive"
            diagnostics.append(_diag(
                "CON001", Severity.ERROR,
                f"coroutine {fn.qualname} reaches blocking {primitive} "
                f"through sync call to {callee.qualname}",
                module.filename, site.line, notes,
            ))
    return diagnostics


# -- CON002 ---------------------------------------------------------------

def _check_lock_order(program):
    edges = program.lock_order_edges()
    adjacency = {}
    for (held, acquired) in edges:
        adjacency.setdefault(held, set()).add(acquired)
        adjacency.setdefault(acquired, set())
    sccs = _tarjan(adjacency)
    diagnostics = []
    for component in sccs:
        if len(component) < 2:
            continue
        locks = sorted(component)
        witness_notes = []
        first_span = None
        for (held, acquired), (fn_key, line) in sorted(edges.items()):
            if held in component and acquired in component:
                fn = program.functions[fn_key]
                span = Span(
                    file=program.modules[fn.module].filename, line=line
                )
                if first_span is None:
                    first_span = span
                witness_notes.append(Note(
                    message=f"{fn.qualname} acquires {acquired} while "
                            f"holding {held}",
                    span=span,
                ))
        diagnostics.append(Diagnostic(
            code="CON002",
            severity=Severity.ERROR,
            message=("lock-order cycle between "
                     + " and ".join(locks)
                     + ": concurrent callers can deadlock"),
            span=first_span or Span(),
            notes=witness_notes,
            source="flow",
        ))
    return diagnostics


def _tarjan(adjacency):
    """Strongly connected components, deterministic over sorted nodes."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(node):
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(adjacency.get(node, ())):
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component = set()
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.add(member)
                if member == node:
                    break
            sccs.append(component)

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)
    return sccs


# -- CON003 ---------------------------------------------------------------

def _guard_for(program, module, owner, attr):
    if owner == "<module>":
        return module.global_guards.get(attr)
    candidates = program.class_by_name.get(owner, ())
    if len(candidates) == 1:
        return candidates[0].guards.get(attr)
    for cls in candidates:
        spec = cls.guards.get(attr)
        if spec is not None:
            return spec
    return None


def _check_guarded_by(program):
    diagnostics = []
    for key in sorted(program.functions):
        fn = program.functions[key]
        module = program.modules[fn.module]
        waived = module.race_ok_lines
        for access in fn.accesses:
            if access.mode == "shallow":
                continue
            spec = _guard_for(program, module, access.owner, access.attr)
            if spec is None or not spec.enforced:
                continue
            if fn.qualname == f"{access.owner}.__init__":
                continue  # construction happens-before publication
            if spec.lock_id in access.held:
                continue
            if access.line in waived:
                continue
            verb = "written" if access.mode == "store" else "used"
            owner = "" if access.owner == "<module>" else access.owner + "."
            diagnostics.append(_diag(
                "CON003", Severity.ERROR,
                f"field {owner}{access.attr} is guarded by {spec.lock_id} "
                f"but {verb} in {fn.qualname} without holding it",
                module.filename, access.line,
            ))
        for site in fn.calls:
            callee = program.resolved_callee(site)
            if callee is None or not callee.holds:
                continue
            for lock_id in callee.holds:
                if lock_id in site.held:
                    continue
                if site.line in waived:
                    continue
                diagnostics.append(_diag(
                    "CON003", Severity.ERROR,
                    f"{fn.qualname} calls {callee.qualname}, which "
                    f"requires holding {lock_id}, without the lock",
                    module.filename, site.line,
                ))
    return diagnostics


# -- CON004 ---------------------------------------------------------------

def _check_thread_lifecycle(program):
    diagnostics = []
    for modname in sorted(program.modules):
        module = program.modules[modname]
        module_joins = set()
        for fn in module.all_functions():
            for kind, name in fn.joins:
                module_joins.add((kind, name) if kind == "attr"
                                 else (kind, fn.qualname, name))
        for fn in sorted(module.all_functions(), key=lambda f: f.qualname):
            for spawn in fn.spawns:
                if spawn.daemon is True:
                    continue
                joined = False
                if spawn.bound is not None:
                    kind, name = spawn.bound
                    if kind == "local":
                        joined = ("local", fn.qualname, name) in module_joins
                    else:
                        joined = ("attr", name) in module_joins
                if joined:
                    continue
                how = ("daemon=False" if spawn.daemon is False
                       else "daemon not set")
                diagnostics.append(_diag(
                    "CON004", Severity.WARNING,
                    f"{fn.qualname} spawns a non-daemon thread ({how}) "
                    "that is never joined; it outlives shutdown",
                    module.filename, spawn.line,
                ))
    return diagnostics


# -- CON005 ---------------------------------------------------------------

def _check_error_kinds(program):
    diagnostics = []
    catalogue = ", ".join(sorted(ALLOWED_ERROR_KINDS))
    for key in sorted(program.functions):
        fn = program.functions[key]
        module = program.modules[fn.module]
        for kind, line in fn.error_kinds:
            if kind in ALLOWED_ERROR_KINDS:
                continue
            diagnostics.append(_diag(
                "CON005", Severity.ERROR,
                f"CommunicationError kind {kind!r} is not in the "
                "documented vocabulary",
                module.filename, line,
                notes=[Note(message=f"known kinds: {catalogue}")],
            ))
    return diagnostics

"""AST-level effect inference: per-function concurrency summaries.

The flow pass never executes the code it audits.  Each module is parsed
once; every function and method gets a :class:`FunctionSummary` that
records what the body *does* to the process' concurrency state:

- **blocking sites** — calls that park the calling thread (``time.sleep``,
  ``select.select``, socket-style ``recv``/``sendall``/``accept``,
  zero-argument ``Future.result()`` / ``Thread.join()`` / ``Event.wait()``,
  ``queue.Queue.get()``);
- **acquire sites** — lock acquisitions (``with self._lock:`` or explicit
  ``.acquire()``), each stamped with the lock-set already held so the
  call graph can build the lock-order graph;
- **call sites** — resolvable callees with the lock-set at the call;
- **spawn / join sites** — ``threading.Thread(...)`` constructions and
  the names they are joined under;
- **field accesses** — ``self.attr`` reads/writes classified by depth
  (see below), checked against ``# guarded-by:`` declarations;
- **error kinds** — ``CommunicationError(kind=...)`` literals.

Annotation grammar (trailing comments, parsed from the raw source):

- ``# guarded-by: self._lock`` on a field assignment declares the lock
  that guards the field.  A value of ``<serial:...>`` documents a field
  that is confined to one thread by design; it is recorded but not
  enforced.  The lock expression may be an alias chain one level deep
  (``self._table.lock``) when the owning attribute's type is inferable.
- ``# holds-lock: self._lock`` on a ``def`` line declares that every
  caller must already hold the lock; the summary starts with it in the
  lock-set and the call-graph pass enforces it at call sites.
- ``# race-ok: <reason>`` on an access line waives CON003 for that line
  (documented benign races: GIL-atomic reads, lock-free fast paths).
- ``# blocking-ok: <reason>`` on a call line waives CON001 for that
  line (documented benign blocking, e.g. an uncontended init lock).

Depth classification keeps CON003 quiet on the codebase's documented
unlocked *peeks*: a read used only for truthiness, comparison, or as a
bare binding (``entries = self.entries``) is a GIL-atomic snapshot and
passes unguarded; subscripts, method calls, iteration, builtin-call
arguments (``len(self.entries)``) and all stores require the lock.
"""

import ast
import re

__all__ = [
    "AccessSite",
    "AcquireSite",
    "BlockingSite",
    "CallSite",
    "ClassSummary",
    "FunctionSummary",
    "GuardSpec",
    "ModuleSummary",
    "SpawnSite",
    "analyze_module",
]

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([^\s#]+)")
_HOLDS_RE = re.compile(r"#\s*holds-lock:\s*([^\s#]+)")
_RACE_OK_RE = re.compile(r"#\s*race-ok\b")
_BLOCKING_OK_RE = re.compile(r"#\s*blocking-ok\b")

#: Constructors that create a lock-like object (threading module).
_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Method names that block on a socket-like receiver.
_SOCKET_BLOCKERS = frozenset(
    {"recv", "recv_into", "recvfrom", "sendall", "accept",
     "recv_exact", "recv_line"}
)

#: Zero-argument methods that park the thread until another signals.
_WAIT_BLOCKERS = frozenset({"result", "join", "wait"})


class GuardSpec:
    """One ``# guarded-by:`` declaration on a class or module field."""

    __slots__ = ("attr", "raw", "lock_id", "serial", "line")

    def __init__(self, attr, raw, line):
        self.attr = attr
        self.raw = raw          # annotation text, e.g. "self._lock"
        self.lock_id = None     # canonical lock id once resolved
        self.line = line
        text = raw.strip("<>")
        self.serial = text.startswith("serial:")

    @property
    def enforced(self):
        return not self.serial and self.lock_id is not None


class BlockingSite:
    """A call that blocks the calling thread."""

    __slots__ = ("kind", "detail", "line")

    def __init__(self, kind, detail, line):
        self.kind = kind        # "hard" | "lock"
        self.detail = detail    # display text, e.g. "time.sleep"
        self.line = line


class AcquireSite:
    """A lock acquisition, with the lock-set already held."""

    __slots__ = ("lock_id", "line", "held", "timeout")

    def __init__(self, lock_id, line, held, timeout):
        self.lock_id = lock_id
        self.line = line
        self.held = held        # frozenset of lock ids held on entry
        self.timeout = timeout  # True when bounded (timeout=/blocking=False)


class CallSite:
    """A call to a (possibly resolvable) callee."""

    __slots__ = ("callee", "display", "line", "held", "awaited")

    def __init__(self, callee, display, line, held, awaited):
        self.callee = callee    # descriptor tuple, resolved by the graph
        self.display = display
        self.line = line
        self.held = held
        self.awaited = awaited


class AccessSite:
    """A read or write of a guarded field."""

    __slots__ = ("owner", "attr", "line", "mode", "held")

    def __init__(self, owner, attr, line, mode, held):
        self.owner = owner      # class name the guard lives on
        self.attr = attr
        self.line = line
        self.mode = mode        # "store" | "deep" | "shallow"
        self.held = held


class SpawnSite:
    """A ``threading.Thread(...)`` construction."""

    __slots__ = ("line", "daemon", "bound")

    def __init__(self, line, daemon, bound):
        self.line = line
        self.daemon = daemon    # True/False/None (None: not set)
        self.bound = bound      # ("local", name) | ("attr", name) | None


class FunctionSummary:
    """Everything the flow rules need to know about one function."""

    def __init__(self, module, qualname, node, is_async, holds):
        self.module = module            # dotted module name
        self.qualname = qualname        # "Class.method" / "func" / "f.inner"
        self.name = node.name
        self.lineno = node.lineno
        self.is_async = is_async
        self.holds = holds              # lock ids from # holds-lock:
        self.blocking = []              # [BlockingSite]
        self.acquires = []              # [AcquireSite]
        self.calls = []                 # [CallSite]
        self.accesses = []              # [AccessSite]
        self.spawns = []                # [SpawnSite]
        self.joins = set()              # bound names .join()ed here
        self.error_kinds = []           # [(kind, line)]

    @property
    def key(self):
        return f"{self.module}:{self.qualname}"

    def __repr__(self):
        return f"<FunctionSummary {self.key}>"


class ClassSummary:
    """Per-class facts: lock fields, guard declarations, attr types."""

    def __init__(self, module, name, bases, lineno):
        self.module = module
        self.name = name
        self.bases = bases              # base-class name strings
        self.lineno = lineno
        self.lock_fields = {}           # attr -> canonical lock id
        self.guards = {}                # attr -> GuardSpec
        self.attr_types = {}            # attr -> class-name string
        self.lock_aliases = {}          # attr -> (owner_attr, owner_field)
        self.methods = {}               # name -> FunctionSummary

    @property
    def key(self):
        return f"{self.module}:{self.name}"


class ModuleSummary:
    """One analyzed module: filename, imports, classes, functions."""

    def __init__(self, modname, filename):
        self.modname = modname          # dotted name, e.g. "repro.wire.aio"
        self.filename = filename
        self.short = modname.rsplit(".", 1)[-1]
        self.imports = {}               # local name -> dotted module
        self.from_imports = {}          # local name -> (module, original)
        self.classes = {}               # name -> ClassSummary
        self.functions = {}             # qualname -> FunctionSummary
        self.global_locks = {}          # NAME -> canonical lock id
        self.global_guards = {}         # NAME -> GuardSpec
        self.race_ok_lines = set()
        self.blocking_ok_lines = set()
        self.tree = None

    def all_functions(self):
        return self.functions.values()


def _resolve_lock_path(module, cls, parts):
    """Canonical lock id for ``self.<parts...>`` within *cls*."""
    if len(parts) == 1:
        attr = parts[0]
        if attr in cls.lock_fields:
            return cls.lock_fields[attr]
        alias = cls.lock_aliases.get(attr)
        if alias is not None:
            owner_attr, field = alias
            owner_type = cls.attr_types.get(owner_attr)
            if owner_type is not None:
                return f"{owner_type}.{field}"
        return None
    if len(parts) == 2:
        owner_type = cls.attr_types.get(parts[0])
        if owner_type is not None:
            return f"{owner_type}.{parts[1]}"
    return None


def _resolve_lock_text(module, cls, text):
    """Canonical lock id for annotation text like ``self._lock`` or a
    module-global lock name, or None when unresolvable."""
    text = text.strip().rstrip(",")
    if text.startswith("self."):
        if cls is None:
            return None
        return _resolve_lock_path(module, cls, text[len("self."):].split("."))
    return module.global_locks.get(text)


def _const_kwarg(call, name):
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return kw.value.value
    return None


def _has_kwarg(call, name):
    return any(kw.arg == name for kw in call.keywords)


class _ModuleAnalyzer:
    """Single-module analysis: builds a :class:`ModuleSummary`."""

    def __init__(self, modname, filename, source):
        self.summary = ModuleSummary(modname, filename)
        self.source_lines = source.splitlines()
        self.summary.tree = ast.parse(source, filename=filename)

    # -- raw-line annotation helpers -------------------------------------

    def _line(self, lineno):
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""

    def _search_lines(self, regex, start, end):
        for lineno in range(start, (end or start) + 1):
            match = regex.search(self._line(lineno))
            if match:
                return match
        return None

    def _collect_waivers(self):
        for index, text in enumerate(self.source_lines, start=1):
            waived = None
            if _RACE_OK_RE.search(text):
                waived = self.summary.race_ok_lines
            elif _BLOCKING_OK_RE.search(text):
                waived = self.summary.blocking_ok_lines
            if waived is None:
                continue
            waived.add(index)
            # A standalone comment waives the next code line, so long
            # justifications need not share the offending line.
            if text.strip().startswith("#"):
                target = self._next_code_line(index)
                if target is not None:
                    waived.add(target)

    def _next_code_line(self, index):
        for lineno in range(index + 1, len(self.source_lines) + 1):
            stripped = self._line(lineno).strip()
            if stripped and not stripped.startswith("#"):
                return lineno
        return None

    # -- top-level walk ---------------------------------------------------

    def analyze(self):
        self._collect_waivers()
        tree = self.summary.tree
        for node in tree.body:
            self._top_level(node)
        self._resolve_guards()
        return self.summary

    def _resolve_guards(self):
        """Resolve every ``# guarded-by:`` annotation to a canonical
        lock id, now that all field facts are known."""
        for cls in self.summary.classes.values():
            for spec in cls.guards.values():
                if not spec.serial:
                    spec.lock_id = _resolve_lock_text(
                        self.summary, cls, spec.raw
                    )
        for spec in self.summary.global_guards.values():
            if not spec.serial:
                spec.lock_id = _resolve_lock_text(self.summary, None, spec.raw)

    def _top_level(self, node):
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.summary.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module and not node.level:
                for alias in node.names:
                    self.summary.from_imports[alias.asname or alias.name] = (
                        node.module, alias.name
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._analyze_function(node, qualprefix="", cls=None)
        elif isinstance(node, ast.ClassDef):
            self._analyze_class(node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._module_assignment(node)

    def _module_assignment(self, node):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            lock_id = f"{self.summary.short}.{name}"
            if value is not None and self._is_lock_factory(value):
                self.summary.global_locks[name] = lock_id
            match = self._search_lines(
                _GUARD_RE, node.lineno, getattr(node, "end_lineno", node.lineno)
            )
            if match:
                self.summary.global_guards[name] = GuardSpec(
                    name, match.group(1), node.lineno
                )

    # -- classes ----------------------------------------------------------

    def _analyze_class(self, node):
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        cls = ClassSummary(self.summary.modname, node.name, tuple(bases),
                           node.lineno)
        self.summary.classes[node.name] = cls
        # First pass: field facts from __init__ and the class body, so a
        # ``# guarded-by: self._table.lock`` alias can resolve no matter
        # where ``self._table`` is assigned.
        for item in node.body:
            if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "__init__"):
                for stmt in ast.walk(item):
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        self._field_facts(cls, stmt)
            elif isinstance(item, (ast.Assign, ast.AnnAssign)):
                self._field_facts(cls, item, class_body=True)
        # Second pass: method summaries.
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary = self._analyze_function(
                    item, qualprefix=node.name + ".", cls=cls
                )
                cls.methods[item.name] = summary

    def _field_facts(self, cls, node, class_body=False):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        for target in targets:
            attr = None
            if class_body and isinstance(target, ast.Name):
                attr = target.id
            elif (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                attr = target.attr
            if attr is None:
                continue
            if value is not None:
                if self._is_lock_factory(value):
                    cls.lock_fields[attr] = f"{cls.name}.{attr}"
                else:
                    typename = self._constructed_class(value)
                    if typename is not None:
                        cls.attr_types[attr] = typename
                    alias = self._attr_chain(value)
                    if alias is not None:
                        cls.lock_aliases[attr] = alias
            match = self._search_lines(
                _GUARD_RE, node.lineno, getattr(node, "end_lineno", node.lineno)
            )
            if match and attr not in cls.guards:
                cls.guards[attr] = GuardSpec(attr, match.group(1), node.lineno)

    def _is_lock_factory(self, value):
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
            base = func.value
            return isinstance(base, ast.Name) and base.id == "threading"
        if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
            origin = self.summary.from_imports.get(func.id)
            return origin is not None and origin[0] == "threading"
        return False

    def _constructed_class(self, value):
        """Class name when *value* is ``ClassName(...)`` / ``mod.Cls(...)``."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        if isinstance(func, ast.Name) and func.id[:1].isupper():
            return func.id
        if (isinstance(func, ast.Attribute) and func.attr[:1].isupper()
                and isinstance(func.value, ast.Name)):
            return func.attr
        return None

    def _attr_chain(self, value):
        """``self.X.Y`` as ``(X, Y)`` — one-level alias like
        ``self._pending_lock = self._table.lock``."""
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Attribute)
                and isinstance(value.value.value, ast.Name)
                and value.value.value.id == "self"):
            return (value.value.attr, value.attr)
        return None

    # -- functions --------------------------------------------------------

    def _analyze_function(self, node, qualprefix, cls):
        qualname = qualprefix + node.name
        holds = []
        body_start = node.body[0].lineno if node.body else node.lineno
        match = self._search_lines(_HOLDS_RE, node.lineno, body_start - 1)
        if match:
            holds.append(match.group(1))
        summary = FunctionSummary(
            self.summary.modname, qualname, node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            holds=tuple(holds),
        )
        self.summary.functions[qualname] = summary
        walker = _FunctionWalker(self, summary, cls)
        walker.run(node)
        return summary


class _FunctionWalker:
    """Lock-set-carrying walk of one function body."""

    def __init__(self, analyzer, summary, cls):
        self.analyzer = analyzer
        self.summary = summary
        self.cls = cls
        self.module = analyzer.summary
        #: Simple local aliases: name -> ("self_attr", attr).
        self.locals = {}
        #: Binding for a Thread ctor in the current assignment's value.
        self._pending_thread_binding = None

    def run(self, node):
        resolved = []
        for text in self.summary.holds:
            lock_id = _resolve_lock_text(self.module, self.cls, text)
            resolved.append(lock_id or text)
        self.summary.holds = tuple(resolved)
        self._walk_block(node.body, frozenset(resolved))

    # -- lock expression resolution --------------------------------------

    def _lock_id_for_attr_path(self, parts):
        """Lock id for ``self.<parts...>`` (1 or 2 components)."""
        if self.cls is None:
            return None
        return _resolve_lock_path(self.module, self.cls, parts)

    def _lock_id_for_expr(self, node):
        """Canonical lock id for a runtime lock expression, or None."""
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                if node.value.id == "self":
                    return self._lock_id_for_attr_path([node.attr])
                alias = self.locals.get(node.value.id)
                if alias is not None and alias[0] == "self_attr":
                    return self._lock_id_for_attr_path([alias[1], node.attr])
                return None
            if (isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"):
                return self._lock_id_for_attr_path(
                    [node.value.attr, node.attr]
                )
            return None
        if isinstance(node, ast.Name):
            if node.id in self.module.global_locks:
                return self.module.global_locks[node.id]
            alias = self.locals.get(node.id)
            if alias is not None and alias[0] == "self_attr":
                return self._lock_id_for_attr_path([alias[1]])
        return None

    # -- statement walk ---------------------------------------------------

    def _walk_block(self, stmts, held):
        for stmt in stmts:
            held = self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt, held):
        if isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value, held, "shallow")
            if isinstance(stmt.value, ast.Call):
                changed = self._stmt_lockset_change(stmt.value, held)
                if changed is not None:
                    return changed
            return held
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._assignment(stmt, held)
            return held
        if isinstance(stmt, ast.With):
            return self._with(stmt, held)
        if isinstance(stmt, ast.AsyncWith):
            # async with acquires asyncio primitives — same-loop, not
            # thread locks; walk the body under the current lock-set.
            for item in stmt.items:
                self._scan_expr(item.context_expr, held, "shallow")
            self._walk_block(stmt.body, held)
            return held
        if isinstance(stmt, (ast.If,)):
            self._scan_expr(stmt.test, held, "shallow")
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
            return held
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, held, "shallow")
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
            return held
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, held, "deep")
            self._bind_target(stmt.target)
            self._walk_block(stmt.body, held)
            self._walk_block(stmt.orelse, held)
            return held
        if isinstance(stmt, ast.Try):
            self._walk_block(stmt.body, held)
            for handler in stmt.handlers:
                self._walk_block(handler.body, held)
            self._walk_block(stmt.orelse, held)
            self._walk_block(stmt.finalbody, held)
            return held
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(stmt.value, held, "shallow")
            return held
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: analyzed separately with an EMPTY lock-set
            # (closures may run after the enclosing lock is released).
            self.analyzer._analyze_function(
                stmt, qualprefix=self.summary.qualname + ".", cls=self.cls
            )
            self.locals[stmt.name] = (
                "nested", self.summary.qualname + "." + stmt.name
            )
            return held
        if isinstance(stmt, (ast.Raise,)):
            if stmt.exc is not None:
                self._scan_expr(stmt.exc, held, "shallow")
            return held
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    self._scan_expr(target.value, held, "deep")
                else:
                    self._scan_expr(target, held, "deep")
            return held
        if isinstance(stmt, ast.Assert):
            self._scan_expr(stmt.test, held, "shallow")
            return held
        if isinstance(stmt, ast.Global):
            return held
        # Default: scan any expressions hiding in the statement.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held, "shallow")
        return held

    def _assignment(self, stmt, held):
        value = stmt.value
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        # ``t = threading.Thread(...)``: remember the binding so the
        # spawn recorded during the value scan carries it.
        if isinstance(value, ast.Call) and self._is_thread_ctor(value.func):
            if targets and isinstance(targets[0], ast.Name):
                self._pending_thread_binding = ("local", targets[0].id)
            elif (targets and isinstance(targets[0], ast.Attribute)
                    and isinstance(targets[0].value, ast.Name)
                    and targets[0].value.id == "self"):
                self._pending_thread_binding = ("attr", targets[0].attr)
        if value is not None:
            self._scan_expr(value, held, "shallow")
        self._pending_thread_binding = None
        for target in targets:
            self._store_target(target, held)
        # Track simple local aliases: ``table = self._table``.
        if (isinstance(stmt, ast.Assign) and len(targets) == 1
                and isinstance(targets[0], ast.Name)
                and isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"):
            self.locals[targets[0].id] = ("self_attr", value.attr)
        elif (isinstance(stmt, ast.Assign) and len(targets) == 1
                and isinstance(targets[0], ast.Name)):
            self.locals.pop(targets[0].id, None)

    def _store_target(self, target, held):
        if isinstance(target, ast.Attribute):
            self._record_access(target, held, "store")
        elif isinstance(target, ast.Subscript):
            self._scan_expr(target.value, held, "deep")
            self._scan_expr(target.slice, held, "shallow")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store_target(elt, held)
        elif isinstance(target, ast.Name):
            if target.id in self.module.global_guards:
                self.summary.accesses.append(
                    AccessSite("<module>", target.id, target.lineno, "store",
                               held)
                )

    def _bind_target(self, target):
        if isinstance(target, ast.Name):
            self.locals.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt)

    def _with(self, stmt, held):
        entered = set(held)
        for item in stmt.items:
            expr = item.context_expr
            lock_id = self._lock_id_for_expr(expr)
            if lock_id is None and isinstance(expr, ast.Call):
                # ``with make_lock():`` style helpers are not modelled;
                # plain calls are scanned for effects.
                self._scan_expr(expr, held, "shallow")
                continue
            if lock_id is not None:
                self.summary.acquires.append(
                    AcquireSite(lock_id, expr.lineno, frozenset(entered),
                                timeout=False)
                )
                entered.add(lock_id)
            else:
                self._scan_expr(expr, held, "deep")
        self._walk_block(stmt.body, frozenset(entered))
        return held

    # -- calls ------------------------------------------------------------

    def _stmt_lockset_change(self, node, held):
        """New lock-set after a statement-level ``lock.acquire()`` /
        ``lock.release()``, or None when the statement is neither."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        lock_id = self._lock_id_for_expr(func.value)
        if lock_id is None:
            return None
        if func.attr == "acquire":
            return frozenset(held | {lock_id})
        if func.attr == "release":
            return frozenset(held - {lock_id})
        return None

    def _effect_call(self, node, held):
        """Record call/blocking/acquire/spawn effects of one Call node.

        Called exactly once per Call, from the expression scan."""
        func = node.func
        self._maybe_error_kind(node)
        if self._is_thread_ctor(func):
            # Construction effects; binding (if any) is recorded by the
            # assignment handler.
            self._record_spawn(node, self._pending_thread_binding)
            return
        if isinstance(func, ast.Attribute):
            method = func.attr
            receiver_lock = self._lock_id_for_expr(func.value)
            if method == "acquire" and receiver_lock is not None:
                bounded = (_has_kwarg(node, "timeout")
                           or _has_kwarg(node, "blocking")
                           or bool(node.args))
                self.summary.acquires.append(
                    AcquireSite(receiver_lock, node.lineno, held,
                                timeout=bounded)
                )
                if not bounded:
                    self.summary.blocking.append(
                        BlockingSite("lock", f"acquire on {receiver_lock}",
                                     node.lineno)
                    )
                return
            if method == "release" and receiver_lock is not None:
                return
            self._maybe_blocking_method(node, func, method)
            self._maybe_join(func, method)
            self._record_method_call(node, func, method, held)
            return
        if isinstance(func, ast.Name):
            self._maybe_blocking_name(node, func)
            self._record_name_call(node, func, held)

    def _maybe_error_kind(self, node):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "CommunicationError":
            return
        kind = _const_kwarg(node, "kind")
        if isinstance(kind, str):
            self.summary.error_kinds.append((kind, node.lineno))

    def _maybe_blocking_method(self, node, func, method):
        base = func.value
        if method == "sleep" and isinstance(base, ast.Name):
            if self.module.imports.get(base.id) == "time":
                self.summary.blocking.append(
                    BlockingSite("hard", "time.sleep", node.lineno)
                )
            return
        if method == "select" and isinstance(base, ast.Name):
            if self.module.imports.get(base.id) == "select":
                self.summary.blocking.append(
                    BlockingSite("hard", "select.select", node.lineno)
                )
            return
        if method in _SOCKET_BLOCKERS:
            self.summary.blocking.append(
                BlockingSite("hard", f".{method}()", node.lineno)
            )
            return
        if method in _WAIT_BLOCKERS and not node.args and not node.keywords:
            # Zero-argument result()/join()/wait(): unbounded waits.
            # (``" ".join(parts)`` always has an argument.)
            self.summary.blocking.append(
                BlockingSite("hard", f"unbounded .{method}()", node.lineno)
            )
            return
        if method == "get" and not node.args and not node.keywords:
            if self._receiver_is_queue(func.value):
                self.summary.blocking.append(
                    BlockingSite("hard", "queue.Queue.get()", node.lineno)
                )

    def _receiver_is_queue(self, base):
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self" and self.cls is not None):
            return self.cls.attr_types.get(base.attr) == "Queue"
        return False

    def _maybe_blocking_name(self, node, func):
        origin = self.module.from_imports.get(func.id)
        if origin is not None:
            module, original = origin
            if module == "time" and original == "sleep":
                self.summary.blocking.append(
                    BlockingSite("hard", "time.sleep", node.lineno)
                )

    def _maybe_join(self, func, method):
        if method != "join":
            return
        base = func.value
        if isinstance(base, ast.Name):
            self.summary.joins.add(("local", base.id))
        elif (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"):
            self.summary.joins.add(("attr", base.attr))

    def _is_thread_ctor(self, func):
        if (isinstance(func, ast.Attribute) and func.attr == "Thread"
                and isinstance(func.value, ast.Name)
                and self.module.imports.get(func.value.id) == "threading"):
            return True
        if isinstance(func, ast.Name) and func.id == "Thread":
            origin = self.module.from_imports.get("Thread")
            return origin is not None and origin[0] == "threading"
        return False

    def _record_spawn(self, node, bound):
        daemon = _const_kwarg(node, "daemon")
        self.summary.spawns.append(SpawnSite(node.lineno, daemon, bound))

    def _record_method_call(self, node, func, method, held):
        base = func.value
        callee = None
        display = None
        if isinstance(base, ast.Name):
            if base.id == "self":
                callee = ("self_method", method)
                display = f"self.{method}"
            elif base.id in self.module.imports:
                callee = ("module_attr", self.module.imports[base.id], method)
                display = f"{base.id}.{method}"
            else:
                alias = self.locals.get(base.id)
                if alias is not None and alias[0] == "self_attr":
                    callee = ("self_attr_method", alias[1], method)
                    display = f"self.{alias[1]}.{method}"
        elif (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"):
            callee = ("self_attr_method", base.attr, method)
            display = f"self.{base.attr}.{method}"
        elif (isinstance(base, ast.Call) and isinstance(base.func, ast.Name)
                and base.func.id == "super"):
            callee = ("super_method", method)
            display = f"super().{method}"
        if callee is not None:
            self.summary.calls.append(
                CallSite(callee, display, node.lineno, held, awaited=False)
            )

    def _record_name_call(self, node, func, held):
        name = func.id
        alias = self.locals.get(name)
        if alias is not None and alias[0] == "nested":
            callee = ("qualname", alias[1])
        else:
            callee = ("name", name)
        self.summary.calls.append(
            CallSite(callee, name, node.lineno, held, awaited=False)
        )

    # -- expression scan (field accesses + nested calls) ------------------

    def _scan_expr(self, node, held, mode):
        """Record guarded-field accesses in *node*; *mode* is the depth
        the surrounding context implies for a bare ``self.attr`` read."""
        if node is None:
            return
        if isinstance(node, ast.Await):
            # Mark call sites inside the awaited expression so rules can
            # tell an awaited coroutine from a stray sync call.
            before = len(self.summary.calls)
            self._scan_expr(node.value, held, mode)
            for site in self.summary.calls[before:]:
                site.awaited = True
            return
        if isinstance(node, ast.Attribute):
            self._record_access(node, held, mode)
            # Chain bases: ``self.table.entries`` scans ``self.table``
            # via _record_access's chain handling; other bases recurse.
            if not self._is_self_chain(node):
                self._scan_expr(node.value, held, "shallow")
            return
        if isinstance(node, ast.Subscript):
            self._scan_expr(node.value, held, "deep")
            self._scan_expr(node.slice, held, "shallow")
            return
        if isinstance(node, ast.Call):
            self._effect_call(node, held)
            func = node.func
            if isinstance(func, ast.Attribute):
                # ``self.attr.method(...)``: deep use of the receiver.
                self._scan_expr(func.value, held, "deep")
            elif not isinstance(func, ast.Name):
                self._scan_expr(func, held, "shallow")
            arg_mode = "deep" if self._is_builtin_call(func) else "shallow"
            for arg in node.args:
                self._scan_expr(arg, held, arg_mode)
            for kw in node.keywords:
                self._scan_expr(kw.value, held, "shallow")
            return
        if isinstance(node, (ast.BoolOp, ast.Compare, ast.UnaryOp, ast.BinOp,
                             ast.IfExp, ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._scan_expr(child, held, "shallow")
            return
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp)):
            for gen in node.generators:
                self._scan_expr(gen.iter, held, "deep")
                for cond in gen.ifs:
                    self._scan_expr(cond, held, "shallow")
            if isinstance(node, ast.DictComp):
                self._scan_expr(node.key, held, "shallow")
                self._scan_expr(node.value, held, "shallow")
            else:
                self._scan_expr(node.elt, held, "shallow")
            return
        if isinstance(node, ast.Name):
            if node.id in self.module.global_guards and mode != "shallow":
                self.summary.accesses.append(
                    AccessSite("<module>", node.id, node.lineno, mode, held)
                )
            return
        if isinstance(node, ast.Lambda):
            return  # deferred body: lock-set unknown, skip
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held, mode if mode == "shallow"
                                else "shallow")

    def _is_builtin_call(self, func):
        return isinstance(func, ast.Name) and func.id in (
            "len", "list", "tuple", "set", "dict", "sorted", "min", "max",
            "sum", "any", "all", "bytes", "bytearray", "iter", "next",
        )

    def _is_self_chain(self, node):
        return (isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == "self")

    def _record_access(self, node, held, mode):
        """Record ``self.attr`` / ``self.owner.attr`` guarded accesses."""
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            if self.cls is not None:
                self.summary.accesses.append(
                    AccessSite(self.cls.name, node.attr, node.lineno, mode,
                               held)
                )
            return
        if self._is_self_chain(node) and self.cls is not None:
            owner_attr = node.value.attr
            owner_type = self.cls.attr_types.get(owner_attr)
            if owner_type is not None:
                self.summary.accesses.append(
                    AccessSite(owner_type, node.attr, node.lineno, mode, held)
                )
            # The base ``self.owner`` itself is a shallow read.
            self.summary.accesses.append(
                AccessSite(self.cls.name, owner_attr, node.value.lineno,
                           "shallow", held)
            )
            return
        if isinstance(node.value, ast.Name):
            alias = self.locals.get(node.value.id)
            if (alias is not None and alias[0] == "self_attr"
                    and self.cls is not None):
                owner_type = self.cls.attr_types.get(alias[1])
                if owner_type is not None:
                    self.summary.accesses.append(
                        AccessSite(owner_type, node.attr, node.lineno, mode,
                                   held)
                    )


def analyze_module(modname, filename, source):
    """Analyze one module's source, returning a :class:`ModuleSummary`.

    Raises :class:`SyntaxError` when the source does not parse; callers
    turn that into a diagnostic.
    """
    return _ModuleAnalyzer(modname, filename, source).analyze()

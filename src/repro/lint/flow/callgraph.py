"""The import-resolved call graph over a set of analyzed modules.

:class:`Program` links the per-module :class:`~repro.lint.flow.effects.
ModuleSummary` objects into one graph: call-site descriptors become
function keys, and two transitive closures are computed by monotone
fixpoint:

- **blocking closure** — for every function, the blocking primitives
  reachable through resolved *sync* callees, with a witness chain so
  CON001 can show *how* a coroutine reaches ``recv()``;
- **acquire closure** — the locks a call may take, directly or through
  callees, which feeds the lock-order graph for CON002.

Resolution is deliberately conservative: a receiver whose type cannot
be inferred produces no edge (no guessing by method name), so the graph
under-approximates reachability but never invents it.  Resolvable
callees are plain names (same module or from-imports of analyzed
modules), ``self.method`` (including single-inheritance bases and
``super().method``), ``self.attr.method`` where the attribute's class
was inferred from its ``__init__`` assignment, and ``module.func``
through plain imports.
"""

from repro.lint.flow.effects import analyze_module

__all__ = ["Program"]


class Program:
    """All analyzed modules plus the linked call graph."""

    def __init__(self):
        self.modules = {}            # dotted modname -> ModuleSummary
        self.by_file = {}            # filename -> ModuleSummary
        self.functions = {}          # "mod:qualname" -> FunctionSummary
        self.classes = {}            # "mod:Class" -> ClassSummary
        self.class_by_name = {}      # bare class name -> [ClassSummary]
        self.syntax_errors = []      # [(filename, SyntaxError)]
        self._linked = False

    # -- construction -----------------------------------------------------

    def add_source(self, modname, filename, source):
        try:
            summary = analyze_module(modname, filename, source)
        except SyntaxError as exc:
            self.syntax_errors.append((filename, exc))
            return None
        self.modules[modname] = summary
        self.by_file[filename] = summary
        self._linked = False
        return summary

    def link(self):
        """Index functions/classes and resolve every call site."""
        if self._linked:
            return
        self.functions = {}
        self.classes = {}
        self.class_by_name = {}
        for module in self.modules.values():
            for fn in module.all_functions():
                self.functions[fn.key] = fn
            for cls in module.classes.values():
                self.classes[cls.key] = cls
                self.class_by_name.setdefault(cls.name, []).append(cls)
        self._resolved = {}          # id(CallSite) -> function key or None
        for module in self.modules.values():
            for fn in module.all_functions():
                for site in fn.calls:
                    self._resolved[id(site)] = self._resolve(module, fn, site)
        self._compute_blocking_closure()
        self._compute_acquire_closure()
        self._linked = True

    def resolved_callee(self, site):
        """The FunctionSummary a call site reaches, or None."""
        key = self._resolved.get(id(site))
        return self.functions.get(key) if key else None

    # -- call resolution --------------------------------------------------

    def _class_of(self, module, fn):
        if "." not in fn.qualname:
            return None
        clsname = fn.qualname.split(".", 1)[0]
        return module.classes.get(clsname)

    def _lookup_class(self, module, name):
        """Resolve a class *name* visible in *module* to a ClassSummary."""
        cls = module.classes.get(name)
        if cls is not None:
            return cls
        origin = module.from_imports.get(name)
        if origin is not None:
            target = self.modules.get(origin[0])
            if target is not None:
                return target.classes.get(origin[1])
        # Unique bare name across the program (attr-type inference
        # stores bare class names).
        candidates = self.class_by_name.get(name, ())
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _method_on(self, module, cls, method, seen=None):
        """``cls.method`` resolved through single-inheritance bases."""
        if cls is None:
            return None
        if seen is None:
            seen = set()
        if cls.key in seen:
            return None
        seen.add(cls.key)
        if method in cls.methods:
            return cls.methods[method].key
        for base in cls.bases:
            base_cls = self._lookup_class(self.modules[cls.module], base)
            if base_cls is not None:
                found = self._method_on(module, base_cls, method, seen)
                if found:
                    return found
        return None

    def _resolve(self, module, fn, site):
        kind = site.callee[0]
        if kind == "qualname":
            key = f"{module.modname}:{site.callee[1]}"
            return key if key in self.functions else None
        if kind == "name":
            name = site.callee[1]
            key = f"{module.modname}:{name}"
            if key in self.functions:
                return key
            cls = module.classes.get(name)
            if cls is None:
                origin = module.from_imports.get(name)
                if origin is not None:
                    target = self.modules.get(origin[0])
                    if target is not None:
                        if name not in target.classes:
                            fkey = f"{origin[0]}:{origin[1]}"
                            return fkey if fkey in self.functions else None
                        cls = target.classes[origin[1]]
            if cls is not None:
                return self._method_on(module, cls, "__init__")
            return None
        if kind == "self_method":
            return self._method_on(
                module, self._class_of(module, fn), site.callee[1]
            )
        if kind == "super_method":
            cls = self._class_of(module, fn)
            if cls is None:
                return None
            for base in cls.bases:
                base_cls = self._lookup_class(module, base)
                found = self._method_on(module, base_cls, site.callee[1])
                if found:
                    return found
            return None
        if kind == "self_attr_method":
            cls = self._class_of(module, fn)
            if cls is None:
                return None
            attr, method = site.callee[1], site.callee[2]
            typename = cls.attr_types.get(attr)
            if typename is None:
                return None
            target_cls = self._lookup_class(module, typename)
            return self._method_on(module, target_cls, method)
        if kind == "module_attr":
            dotted, name = site.callee[1], site.callee[2]
            target = self.modules.get(dotted)
            if target is None:
                return None
            key = f"{dotted}:{name}"
            if key in self.functions:
                return key
            if name in target.classes:
                return self._method_on(module, target.classes[name], "__init__")
            return None
        return None

    # -- closures ---------------------------------------------------------

    def _compute_blocking_closure(self):
        """``self.blocking_closure[key]`` maps a blocking *kind* to its
        witness: ``("direct", site)`` or ``("via", callee_key, line)``."""
        self.blocking_closure = {}
        for key, fn in self.functions.items():
            direct = {}
            for site in fn.blocking:
                direct.setdefault(site.kind, ("direct", site))
            self.blocking_closure[key] = direct
        changed = True
        while changed:
            changed = False
            for key, fn in self.functions.items():
                closure = self.blocking_closure[key]
                for site in fn.calls:
                    callee_key = self._resolved.get(id(site))
                    if callee_key is None:
                        continue
                    callee = self.functions[callee_key]
                    if callee.is_async:
                        # An async callee never blocks the caller; its
                        # own blocking sites are its own findings.
                        continue
                    for kind in self.blocking_closure[callee_key]:
                        if kind not in closure:
                            closure[kind] = ("via", callee_key, site.line)
                            changed = True

    def _compute_acquire_closure(self):
        """``self.acquire_closure[key]``: lock ids a call may take,
        each with a witness ``("direct", site)`` / ``("via", key, line)``."""
        self.acquire_closure = {}
        for key, fn in self.functions.items():
            direct = {}
            for site in fn.acquires:
                direct.setdefault(site.lock_id, ("direct", site))
            self.acquire_closure[key] = direct
        changed = True
        while changed:
            changed = False
            for key, fn in self.functions.items():
                closure = self.acquire_closure[key]
                for site in fn.calls:
                    callee_key = self._resolved.get(id(site))
                    if callee_key is None:
                        continue
                    for lock_id in self.acquire_closure[callee_key]:
                        if lock_id not in closure:
                            closure[lock_id] = ("via", callee_key, site.line)
                            changed = True

    def blocking_chain(self, key, kind, limit=10):
        """Human-readable witness chain for *kind* reachable from *key*."""
        chain = []
        seen = set()
        while key not in seen and len(chain) < limit:
            seen.add(key)
            witness = self.blocking_closure.get(key, {}).get(kind)
            if witness is None:
                break
            if witness[0] == "direct":
                site = witness[1]
                chain.append((key, site.line, site.detail))
                break
            _, callee_key, line = witness
            chain.append((key, line, f"calls {self.functions[callee_key].qualname}"))
            key = callee_key
        return chain

    # -- lock-order graph -------------------------------------------------

    def lock_order_edges(self):
        """Directed held→acquired edges with witnesses.

        Returns ``{(held, acquired): (function_key, line)}`` keeping the
        first witness per edge in deterministic iteration order.
        """
        edges = {}
        for key in sorted(self.functions):
            fn = self.functions[key]
            for site in fn.acquires:
                for held in sorted(site.held):
                    if held != site.lock_id:
                        edges.setdefault((held, site.lock_id), (key, site.line))
            for site in fn.calls:
                if not site.held:
                    continue
                callee_key = self._resolved.get(id(site))
                if callee_key is None:
                    continue
                for lock_id in sorted(self.acquire_closure[callee_key]):
                    for held in sorted(site.held):
                        if held != lock_id:
                            edges.setdefault((held, lock_id), (key, site.line))
        return edges

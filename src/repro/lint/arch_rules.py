"""Architecture rules: the sans-I/O layering contract (ARCH001).

The wire machines in :mod:`repro.wire` are pure byte/event transducers;
the whole design collapses if one of them quietly grows a socket.  This
pass statically walks every module under ``src/repro/wire/`` — except
``wire/aio``, which *is* the sanctioned I/O front-end — and reports an
``ARCH001`` error for any import of an I/O facility:

- the stdlib I/O modules ``socket``, ``selectors``, ``asyncio``;
- the blocking transport layer ``repro.heidirmi.transport``.

The check is AST-based (no execution), so it also catches imports
hidden inside functions or ``try`` blocks.
"""

import ast
import os

from repro.lint.diagnostics import Diagnostic, Severity, Span

#: Top-level stdlib modules a sans-I/O wire module may never import.
BANNED_TOPLEVEL = ("socket", "selectors", "asyncio")

#: Internal modules that would couple the machines to an I/O stack.
BANNED_MODULES = ("repro.heidirmi.transport",)

#: Files under wire/ allowed to perform I/O (the asyncio front-end).
EXEMPT_FILES = ("aio.py",)


def default_wire_dir():
    """The installed location of the repro.wire package.

    Located from the parent package so the check never executes the
    code it is auditing.
    """
    import repro

    return os.path.join(os.path.dirname(repro.__file__), "wire")


def _banned_name(dotted):
    """The banned facility *dotted* resolves to, or None."""
    root = dotted.split(".", 1)[0]
    if root in BANNED_TOPLEVEL:
        return root
    for banned in BANNED_MODULES:
        if dotted == banned or dotted.startswith(banned + "."):
            return banned
    return None


def _imported_names(node):
    """Every dotted module name *node* could bind."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level:  # relative: stays inside repro.wire, always fine
            return []
        names = [node.module] if node.module else []
        # ``from repro.heidirmi import transport`` names the banned
        # module through the alias list, not the module part.
        names.extend(
            f"{node.module}.{alias.name}" for alias in node.names
            if node.module
        )
        return names
    return []


def lint_wire_source(source, filename="<wire>", tree=None):
    """ARCH001 findings for one wire module's source text.

    *tree* lets a caller that already parsed the module (the flow pass
    shares one parse with this one) skip the re-parse.
    """
    if tree is None:
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            return [Diagnostic(
                code="ARCH001",
                severity=Severity.ERROR,
                message=f"cannot parse wire module: {exc.msg}",
                span=Span(file=filename, line=exc.lineno or 0),
                source="arch",
            )]
    diagnostics = []
    for node in ast.walk(tree):
        # One finding per facility per statement: ``from selectors
        # import DefaultSelector`` names selectors twice (module part
        # and alias), but it is one violation.
        reported = set()
        for dotted in _imported_names(node):
            banned = _banned_name(dotted)
            if banned is None or banned in reported:
                continue
            reported.add(banned)
            diagnostics.append(Diagnostic(
                code="ARCH001",
                severity=Severity.ERROR,
                message=(
                    f"sans-I/O wire module imports {banned!r}: only "
                    "repro.wire.aio may touch sockets or event loops"
                ),
                span=Span(file=filename, line=node.lineno),
                source="arch",
            ))
    return diagnostics


def lint_wire_layering(wire_dir=None, preparsed=None):
    """ARCH001 findings for every non-exempt module under *wire_dir*.

    *preparsed* maps absolute paths to already-parsed ASTs (from a
    combined ``--arch --concurrency`` run) so each module is parsed at
    most once per invocation.
    """
    if wire_dir is None:
        wire_dir = default_wire_dir()
    diagnostics = []
    for name in sorted(os.listdir(wire_dir)):
        if not name.endswith(".py") or name in EXEMPT_FILES:
            continue
        path = os.path.join(wire_dir, name)
        tree = None
        if preparsed:
            tree = preparsed.get(os.path.abspath(path))
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        diagnostics.extend(lint_wire_source(source, filename=path, tree=tree))
    return diagnostics

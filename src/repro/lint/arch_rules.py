"""Architecture rules: layering (ARCH001) and emission (ARCH002).

The wire machines in :mod:`repro.wire` are pure byte/event transducers;
the whole design collapses if one of them quietly grows a socket.  The
ARCH001 pass statically walks every module under ``src/repro/wire/`` —
except ``wire/aio``, which *is* the sanctioned I/O front-end — and
reports an error for any import of an I/O facility:

- the stdlib I/O modules ``socket``, ``selectors``, ``asyncio``;
- the blocking transport layer ``repro.heidirmi.transport``.

ARCH002 guards the zero-copy emission contract: after the BufferPlan
refactor, frames in the wire/marshal hot paths are assembled from
pooled segments and borrowed fragments, never by gluing byte strings
together (each ``+`` or ``b"".join`` re-copies the frame).  The pass
flags, in every wire module except ``aio``/``bufferplan`` and in the
CDR marshal layer (``repro.giop`` ``cdr``/``cdrmarshal``/``messages``):

- ``join`` called on a bytes literal (``b"".join(parts)``);
- ``+`` with a bytes-literal operand (``header + b"\\n"``);
- ``+`` with an operand that is a call to an emission accessor
  (``.encode(...)``, ``.data()``, ``.tobytes()``, ``.to_bytes()``,
  ``.payload()``) — the classic encode-then-concatenate shape.

In-place ``+=`` into a bytearray is the sanctioned way to build a
segment, so augmented assignment is deliberately not flagged.

Both checks are AST-based (no execution), so they also catch
violations hidden inside functions or ``try`` blocks.
"""

import ast
import os

from repro.lint.diagnostics import Diagnostic, Severity, Span

#: Top-level stdlib modules a sans-I/O wire module may never import.
BANNED_TOPLEVEL = ("socket", "selectors", "asyncio")

#: Internal modules that would couple the machines to an I/O stack.
BANNED_MODULES = ("repro.heidirmi.transport",)

#: Files under wire/ allowed to perform I/O (the asyncio front-end).
EXEMPT_FILES = ("aio.py",)

#: Files under wire/ exempt from the ARCH002 emission check: the plan
#: module owns the one sanctioned join (``to_bytes``), and the I/O
#: front-end is outside the sans-I/O hot path.
EMISSION_EXEMPT_FILES = ("aio.py", "bufferplan.py")

#: Modules under repro.giop that belong to the marshal hot path and
#: are therefore also covered by ARCH002.
EMISSION_GIOP_FILES = ("cdr.py", "cdrmarshal.py", "messages.py")

#: Attribute calls whose result is emitted frame material; adding one
#: to anything is the encode-then-concatenate shape ARCH002 exists to
#: catch.
_EMISSION_ACCESSORS = ("encode", "data", "tobytes", "to_bytes", "payload")


def default_wire_dir():
    """The installed location of the repro.wire package.

    Located from the parent package so the check never executes the
    code it is auditing.
    """
    import repro

    return os.path.join(os.path.dirname(repro.__file__), "wire")


def _banned_name(dotted):
    """The banned facility *dotted* resolves to, or None."""
    root = dotted.split(".", 1)[0]
    if root in BANNED_TOPLEVEL:
        return root
    for banned in BANNED_MODULES:
        if dotted == banned or dotted.startswith(banned + "."):
            return banned
    return None


def _imported_names(node):
    """Every dotted module name *node* could bind."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level:  # relative: stays inside repro.wire, always fine
            return []
        names = [node.module] if node.module else []
        # ``from repro.heidirmi import transport`` names the banned
        # module through the alias list, not the module part.
        names.extend(
            f"{node.module}.{alias.name}" for alias in node.names
            if node.module
        )
        return names
    return []


def lint_wire_source(source, filename="<wire>", tree=None):
    """ARCH001 findings for one wire module's source text.

    *tree* lets a caller that already parsed the module (the flow pass
    shares one parse with this one) skip the re-parse.
    """
    if tree is None:
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            return [Diagnostic(
                code="ARCH001",
                severity=Severity.ERROR,
                message=f"cannot parse wire module: {exc.msg}",
                span=Span(file=filename, line=exc.lineno or 0),
                source="arch",
            )]
    diagnostics = []
    for node in ast.walk(tree):
        # One finding per facility per statement: ``from selectors
        # import DefaultSelector`` names selectors twice (module part
        # and alias), but it is one violation.
        reported = set()
        for dotted in _imported_names(node):
            banned = _banned_name(dotted)
            if banned is None or banned in reported:
                continue
            reported.add(banned)
            diagnostics.append(Diagnostic(
                code="ARCH001",
                severity=Severity.ERROR,
                message=(
                    f"sans-I/O wire module imports {banned!r}: only "
                    "repro.wire.aio may touch sockets or event loops"
                ),
                span=Span(file=filename, line=node.lineno),
                source="arch",
            ))
    return diagnostics


def lint_wire_layering(wire_dir=None, preparsed=None):
    """ARCH001 findings for every non-exempt module under *wire_dir*.

    *preparsed* maps absolute paths to already-parsed ASTs (from a
    combined ``--arch --concurrency`` run) so each module is parsed at
    most once per invocation.
    """
    if wire_dir is None:
        wire_dir = default_wire_dir()
    diagnostics = []
    for name in sorted(os.listdir(wire_dir)):
        if not name.endswith(".py") or name in EXEMPT_FILES:
            continue
        path = os.path.join(wire_dir, name)
        tree = None
        if preparsed:
            tree = preparsed.get(os.path.abspath(path))
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        diagnostics.extend(lint_wire_source(source, filename=path, tree=tree))
    return diagnostics


# ---------------------------------------------------------------------------
# ARCH002: no bytes-concatenation emission in the hot paths
# ---------------------------------------------------------------------------


def _is_bytes_literal(node):
    return isinstance(node, ast.Constant) and isinstance(node.value, bytes)


def _is_emission_accessor_call(node):
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _EMISSION_ACCESSORS
    )


def lint_emission_source(source, filename="<wire>", tree=None):
    """ARCH002 findings for one hot-path module's source text."""
    if tree is None:
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            return [Diagnostic(
                code="ARCH002",
                severity=Severity.ERROR,
                message=f"cannot parse module: {exc.msg}",
                span=Span(file=filename, line=exc.lineno or 0),
                source="arch",
            )]
    diagnostics = []
    for node in ast.walk(tree):
        what = None
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr == "join"
                    and _is_bytes_literal(func.value)):
                what = "joins byte strings into a frame"
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            if (_is_bytes_literal(node.left)
                    or _is_bytes_literal(node.right)):
                what = "concatenates a bytes literal into a frame"
            elif (_is_emission_accessor_call(node.left)
                    or _is_emission_accessor_call(node.right)):
                what = "concatenates encoded frame material"
        if what is None:
            continue
        diagnostics.append(Diagnostic(
            code="ARCH002",
            severity=Severity.ERROR,
            message=(
                f"wire/marshal hot path {what}: emit through a "
                "BufferPlan (pooled owned segments + borrowed "
                "fragments) instead of copying bytes"
            ),
            span=Span(file=filename, line=node.lineno),
            source="arch",
        ))
    return diagnostics


def default_marshal_dir():
    """The installed location of the repro.giop marshal package."""
    import repro

    return os.path.join(os.path.dirname(repro.__file__), "giop")


def lint_emission_paths(wire_dir=None, marshal_dir=None, preparsed=None):
    """ARCH002 findings across the wire and CDR-marshal hot paths.

    Covers every module under *wire_dir* except
    :data:`EMISSION_EXEMPT_FILES`, plus the :data:`EMISSION_GIOP_FILES`
    marshal modules under *marshal_dir*.  *preparsed* shares ASTs with
    a combined ``--arch --concurrency`` run, as for ARCH001.
    """
    if wire_dir is None:
        wire_dir = default_wire_dir()
    if marshal_dir is None:
        marshal_dir = default_marshal_dir()
    paths = [
        os.path.join(wire_dir, name)
        for name in sorted(os.listdir(wire_dir))
        if name.endswith(".py") and name not in EMISSION_EXEMPT_FILES
    ]
    paths.extend(
        os.path.join(marshal_dir, name)
        for name in EMISSION_GIOP_FILES
        if os.path.isfile(os.path.join(marshal_dir, name))
    )
    diagnostics = []
    for path in paths:
        tree = None
        if preparsed:
            tree = preparsed.get(os.path.abspath(path))
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        diagnostics.extend(
            lint_emission_source(source, filename=path, tree=tree)
        )
    return diagnostics

"""Static diagnostics over the customization artifacts.

The paper's pitch is that a new IDL mapping is "just a template plus a
table of map functions".  This package is the correctness tooling that
makes such customization safe: a multi-pass lint engine that checks the
three artifact layers *before* any code is generated:

- :mod:`repro.lint.idl_rules` — collect-many semantic analysis of an
  IDL file plus lint rules the fail-fast checker cannot express
  (case-insensitive collisions, undefined forwards, unused typedefs,
  unbounded recursion, ...);
- :mod:`repro.lint.template_rules` — a static analyzer that walks the
  template AST *without executing it*, checking every ``${var}`` and
  ``@foreach`` list against the per-EST-kind variable tables and every
  ``-map`` reference against a map registry;
- :mod:`repro.lint.mapping_rules` — a cross-layer coverage check that
  verifies a mapping pack's templates and map functions reference each
  other consistently.

``python -m repro.lint`` drives all passes from the command line with
``--format text|json|sarif``; :mod:`repro.compiler.pipeline` runs the
relevant passes lint-first before generating code.
"""

from repro.lint.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReporter,
    LintError,
    Note,
    Severity,
    Span,
)
from repro.lint.idl_rules import lint_idl_source, lint_spec
from repro.lint.template_rules import TemplateLintResult, lint_template, lint_template_source
from repro.lint.mapping_rules import lint_pack
from repro.lint.flow import lint_concurrency_paths, lint_concurrency_sources
from repro.lint.formats import render_json, render_sarif, render_text

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReporter",
    "LintError",
    "Note",
    "Severity",
    "Span",
    "lint_idl_source",
    "lint_spec",
    "lint_template",
    "lint_template_source",
    "TemplateLintResult",
    "lint_pack",
    "lint_concurrency_paths",
    "lint_concurrency_sources",
    "render_text",
    "render_json",
    "render_sarif",
]

"""Diagnostic output renderers: text, JSON, and SARIF 2.1.0.

SARIF (Static Analysis Results Interchange Format) is what CI services
ingest for code-scanning annotations; the renderer emits one run with
one rule per entry in :data:`repro.lint.diagnostics.CODES` and one
result per diagnostic.
"""

import json

from repro.lint.diagnostics import CODES, Severity

TOOL_NAME = "repro.lint"
TOOL_VERSION = "1.0.0"

#: SARIF "level" values for our severities.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_text(diagnostics):
    """One line per diagnostic (plus indented notes), sorted by span."""
    lines = []
    for diagnostic in sorted(diagnostics, key=lambda d: d.sort_key):
        lines.append(str(diagnostic))
        for note in diagnostic.notes:
            lines.append(f"    {note}")
    counts = {
        severity: sum(1 for d in diagnostics if d.severity == severity)
        for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO)
    }
    summary = ", ".join(
        f"{count} {severity}(s)" for severity, count in counts.items() if count
    )
    lines.append(summary or "no findings")
    return "\n".join(lines) + "\n"


def render_json(diagnostics):
    payload = {
        "tool": TOOL_NAME,
        "version": TOOL_VERSION,
        "diagnostics": [
            d.as_dict() for d in sorted(diagnostics, key=lambda d: d.sort_key)
        ],
    }
    return json.dumps(payload, indent=2) + "\n"


def render_sarif(diagnostics):
    """A SARIF 2.1.0 log with one run for the whole lint invocation."""
    rules = [
        {
            "id": code,
            "shortDescription": {"text": summary},
            "helpUri": f"https://example.invalid/repro-lint/{code}",
        }
        for code, summary in sorted(CODES.items())
    ]
    results = []
    for diagnostic in sorted(diagnostics, key=lambda d: d.sort_key):
        result = {
            "ruleId": diagnostic.code,
            "level": _SARIF_LEVELS.get(diagnostic.severity, "none"),
            "message": {"text": diagnostic.message},
            "locations": [_sarif_location(diagnostic.span)],
        }
        if diagnostic.notes:
            result["relatedLocations"] = [
                dict(_sarif_location(note.span),
                     message={"text": note.message})
                for note in diagnostic.notes
                if note.span is not None
            ]
        results.append(result)
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2) + "\n"


def _sarif_location(span):
    physical = {"artifactLocation": {"uri": span.file if span else "<unknown>"}}
    if span is not None and span.line:
        region = {"startLine": span.line}
        if span.column:
            region["startColumn"] = span.column
        physical["region"] = region
    return {"physicalLocation": physical}

"""Per-EST-kind variable tables for the template static analyzer.

:mod:`repro.est.builder` defines — implicitly, by construction — which
properties and child lists each EST node kind carries.  The template
analyzer needs that vocabulary *statically*, without an actual EST in
hand, so this module spells it out as data.

For each kind we record:

- ``required``: properties the builder always sets for that kind (a
  ``${var}`` naming one of these is definitely resolvable whenever a
  node of the kind is in scope);
- ``optional``: properties the builder sets only for some inputs
  (``Parent`` only when an interface has bases, ``typeName`` only for
  named types, ...).  Using one of these resolves, but is *not*
  strict-safe: under ``Runtime(strict=True)`` it raises for inputs that
  lack it unless a ``-map`` covers it;
- ``node_lists``: child-list names (``methodList``...) mapped to the
  element kinds they may contain;
- ``plain_lists``: list-valued properties holding strings rather than
  nodes (``members``, ``raises``...), split into always/sometimes.

``KindInfo.available`` and friends answer the questions the analyzer
asks: "inside ``@foreach paramList`` nested in ``@foreach methodList``,
can ``${interfaceName}`` resolve?" — yes, because template variable
lookup walks the node's ancestors (:meth:`repro.est.node.Ast.lookup`).
"""

from repro.est.node import group_key, var_base


class KindInfo:
    """The static vocabulary of one EST node kind."""

    def __init__(self, kind, required=(), optional=(), node_lists=None,
                 plain_lists=(), optional_plain_lists=()):
        self.kind = kind
        base = var_base(kind)
        # Every node exposes <base>Name automatically (node.py).
        self.required = frozenset(required) | ({base + "Name"} if base else set())
        self.optional = frozenset(optional)
        #: list-prop name -> tuple of element kinds
        self.node_lists = dict(node_lists or {})
        self.plain_lists = frozenset(plain_lists)
        self.optional_plain_lists = frozenset(optional_plain_lists)

    @property
    def all_vars(self):
        return self.required | self.optional

    @property
    def all_plain_lists(self):
        return self.plain_lists | self.optional_plain_lists


# Type-vocabulary shorthands shared by every node built through
# builder._add_type_props (role is the kind-specific spelling prop).
_TYPE_REQUIRED = ("type", "IsVariable")
_TYPE_OPTIONAL = ("typeName", "bound", "aliasedCategory", "aliasedTypeName")
# _add_type_props can nest an ElementType child for sequence-valued roles.
_ELEMENT_LIST = {"elementTypeList": ("ElementType",)}


KIND_TABLE = {
    "Root": KindInfo(
        "Root",
        required=("file",),
        node_lists={
            "moduleList": ("Module",),
            "interfaceList": ("Interface",),
            "forwardList": ("Forward",),
            "enumList": ("Enum",),
            "aliasList": ("Alias",),
            "structList": ("Struct",),
            "unionList": ("Union",),
            "exceptionList": ("Exception",),
            "constList": ("Const",),
            "nativeList": ("Native",),
        },
    ),
    "Module": KindInfo(
        "Module",
        required=("repoId", "scopedName"),
        optional=("prefix",),
        node_lists={
            "moduleList": ("Module",),
            "interfaceList": ("Interface",),
            "forwardList": ("Forward",),
            "enumList": ("Enum",),
            "aliasList": ("Alias",),
            "structList": ("Struct",),
            "unionList": ("Union",),
            "exceptionList": ("Exception",),
            "constList": ("Const",),
            "nativeList": ("Native",),
        },
    ),
    "Interface": KindInfo(
        "Interface",
        required=("repoId", "scopedName"),
        optional=("abstract", "Parent"),
        node_lists={
            "inheritedList": ("Inherited",),
            "methodList": ("Operation",),
            "attributeList": ("Attribute",),
            "expandedOpList": ("ExpandedOp",),
            "expandedAttrList": ("ExpandedAttr",),
            "enumList": ("Enum",),
            "aliasList": ("Alias",),
            "structList": ("Struct",),
            "unionList": ("Union",),
            "exceptionList": ("Exception",),
            "constList": ("Const",),
            "nativeList": ("Native",),
        },
    ),
    "Inherited": KindInfo(
        "Inherited",
        required=("typeName",),
        optional=("repoId",),
    ),
    "Operation": KindInfo(
        "Operation",
        required=("repoId", "scopedName", "returnType") + _TYPE_REQUIRED,
        optional=("oneway",) + _TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST, paramList=("Param",)),
        optional_plain_lists=("raises", "context"),
    ),
    "ExpandedOp": KindInfo(
        "ExpandedOp",
        # Built outside _build_scope, so no scopedName.
        required=("repoId", "returnType") + _TYPE_REQUIRED,
        optional=("oneway",) + _TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST, paramList=("Param",)),
        optional_plain_lists=("raises", "context"),
    ),
    "Param": KindInfo(
        "Param",
        required=("paramType", "getType", "direction", "defaultParam")
        + _TYPE_REQUIRED,
        optional=("defaultValue",) + _TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST),
    ),
    "Attribute": KindInfo(
        "Attribute",
        required=("repoId", "scopedName", "attributeType", "attributeQualifier")
        + _TYPE_REQUIRED,
        optional=_TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST),
    ),
    "ExpandedAttr": KindInfo(
        "ExpandedAttr",
        required=("repoId", "attributeType", "attributeQualifier")
        + _TYPE_REQUIRED,
        optional=_TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST),
    ),
    "Enum": KindInfo(
        "Enum",
        required=("repoId", "scopedName"),
        plain_lists=("members",),
    ),
    "Alias": KindInfo(
        "Alias",
        required=("repoId", "scopedName", "type", "aliasedType"),
        node_lists={"sequenceList": ("Sequence",), "arrayList": ("Array",)},
    ),
    "Sequence": KindInfo(
        "Sequence",
        required=("elementType",) + _TYPE_REQUIRED,
        optional=_TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST),
    ),
    "Array": KindInfo(
        "Array",
        required=("elementType",) + _TYPE_REQUIRED,
        optional=_TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST),
        plain_lists=("dimensions",),
    ),
    "Struct": KindInfo(
        "Struct",
        required=("repoId", "scopedName", "IsVariable"),
        node_lists={"memberList": ("Member",)},
    ),
    "Member": KindInfo(
        "Member",
        required=("memberType",) + _TYPE_REQUIRED,
        optional=_TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST),
    ),
    "Union": KindInfo(
        "Union",
        required=("repoId", "scopedName", "switchType") + _TYPE_REQUIRED,
        optional=_TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST, caseList=("Case",)),
    ),
    "Case": KindInfo(
        "Case",
        required=("caseType",) + _TYPE_REQUIRED,
        optional=_TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST),
        plain_lists=("labels", "labelValues"),
    ),
    "Exception": KindInfo(
        "Exception",
        required=("repoId", "scopedName", "IsVariable"),
        node_lists={"memberList": ("Member",)},
    ),
    "Const": KindInfo(
        "Const",
        required=("repoId", "scopedName", "constType", "value") + _TYPE_REQUIRED,
        optional=("evaluated",) + _TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST),
    ),
    "Forward": KindInfo("Forward", required=("repoId",)),
    "Native": KindInfo("Native", required=("repoId", "scopedName")),
    "ElementType": KindInfo(
        "ElementType",
        required=("elementType",) + _TYPE_REQUIRED,
        optional=_TYPE_OPTIONAL,
        node_lists=dict(_ELEMENT_LIST),
    ),
}


#: Loop bindings the Runtime defines inside every @foreach frame.
LOOP_BINDINGS = frozenset({"index", "count", "first", "last", "ifMore"})

#: Globals every MappingPack provides (mappings/base.py variables()).
PACK_GLOBALS = frozenset({"basename", "idlFile", "topoInterfaceList"})

#: Global lists and the element kinds they iterate.
GLOBAL_LISTS = {"topoInterfaceList": ("Interface",)}


def known_kinds():
    return set(KIND_TABLE)


def info(kind):
    return KIND_TABLE.get(kind)


def available_vars(kinds, required_only=False):
    """Variables resolvable on a node of any kind in *kinds*.

    Template lookup walks the node's ancestors, so callers should pass
    the closure over possible ancestors, not just the innermost kind.
    """
    result = set()
    for kind in kinds:
        entry = KIND_TABLE.get(kind)
        if entry is None:
            continue
        result |= entry.required if required_only else entry.all_vars
    return result


def ancestor_closure(kinds):
    """All kinds reachable upward from *kinds* via containment.

    Derived from ``node_lists``: K is a possible ancestor of C when some
    KindInfo for K lists C among its element kinds.
    """
    parents = {}
    for kind, entry in KIND_TABLE.items():
        for element_kinds in entry.node_lists.values():
            for element in element_kinds:
                parents.setdefault(element, set()).add(kind)
    closure = set(kinds)
    frontier = list(kinds)
    while frontier:
        current = frontier.pop()
        for parent in parents.get(current, ()):
            if parent not in closure:
                closure.add(parent)
                frontier.append(parent)
    return closure


def lists_of(kinds):
    """Node lists reachable on a node of any kind in *kinds* (or its
    ancestors, since @foreach resolution also walks upward)."""
    result = {}
    for kind in ancestor_closure(kinds):
        entry = KIND_TABLE.get(kind)
        if entry is None:
            continue
        for name, element_kinds in entry.node_lists.items():
            result.setdefault(name, set()).update(element_kinds)
    return result


def plain_lists_of(kinds):
    result = set()
    for kind in ancestor_closure(kinds):
        entry = KIND_TABLE.get(kind)
        if entry is None:
            continue
        result |= entry.all_plain_lists
    return result

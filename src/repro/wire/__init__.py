"""The sans-I/O protocol core.

Every HeidiRMI wire protocol (``text``, ``text2``, ``giop``) is
implemented here as a *pure state machine* in the style of h11/h2:
bytes go in through :meth:`~repro.wire.machine.WireMachine.feed_bytes`,
typed events (:mod:`repro.wire.events`) come out, and outgoing messages
are produced with ``emit_*`` methods that return ``bytes``.  No module
in this package (except :mod:`repro.wire.aio`) may import ``socket``,
``selectors``, ``asyncio`` or ``repro.heidirmi.transport`` — the
ARCH001 lint enforces that forever.

Layering (see ``docs/ARCHITECTURE.md``)::

    wire state machine   pure bytes <-> events      (this package)
    transport            blocking or asyncio pumps  (heidirmi.transport,
                                                     wire.aio)
    communicator         request demarcation        (heidirmi.communicator)
    ORB                  dispatch, caches, policy   (heidirmi.orb)

The blocking stack (``repro.heidirmi.protocol``/``repro.giop.iiop``)
and the asyncio front-end (:mod:`repro.wire.aio`) are both thin byte
pumps over the identical machines, which is the paper's configurable
protocol/transport seam made literal.
"""

# The wire machines import the shared data model (repro.heidirmi.call,
# .errors, .textwire), and heidirmi's own package init imports back into
# repro.wire.  Fully initializing heidirmi first reduces a wire-first
# import to the well-trodden heidirmi-first order, so ``import
# repro.wire`` is safe whichever package loads first.
import repro.heidirmi  # noqa: F401  (cycle breaker, see above)

from repro.wire.correlation import (  # noqa: F401
    RESERVED_CHANNEL_ERROR_ID,
    CorrelationTable,
    RequestIdAllocator,
    is_channel_level_error,
)
from repro.wire.events import (  # noqa: F401
    NEED_DATA,
    CancelReceived,
    CloseReceived,
    LocateReplied,
    LocateRequested,
    ReplyReceived,
    RequestReceived,
    WireEvent,
    WireViolation,
)
from repro.wire.machine import WireMachine  # noqa: F401


def machine_for(protocol_name, role, **kwargs):
    """Build a wire machine by protocol name (``text``/``text2``/``giop``)."""
    from repro.wire.giop import GiopWire
    from repro.wire.text import Text2Wire, TextWire

    factories = {"text": TextWire, "text2": Text2Wire, "giop": GiopWire}
    factory = factories.get(protocol_name)
    if factory is None:
        raise ValueError(f"no wire machine for protocol {protocol_name!r}")
    return factory(role, **kwargs)

"""Request-id correlation, shared by every protocol and both I/O stacks.

Before this module each protocol (and the blocking communicator)
carried its own id allocator and its own reserved-id folklore.  Now:

- :class:`RequestIdAllocator` hands out the ids every multiplexing
  protocol frames (text2 ``CALL2 <id>``, GIOP's native request_id);
- :data:`RESERVED_CHANNEL_ERROR_ID` (0) is the "no correlation" id a
  server uses when it must reject a request it could not even parse —
  :func:`is_channel_level_error` is the one test for that case;
- :class:`CorrelationTable` is the completion table mapping in-flight
  request ids to waiters, used by the blocking
  :class:`~repro.heidirmi.communicator.ObjectCommunicator` (with real
  threads) and the asyncio client in :mod:`repro.wire.aio` alike.
"""

import itertools
import threading

from repro.heidirmi.call import STATUS_ERROR

#: Request id 0 is reserved: real ids start at 1, and an error reply
#: tagged 0 means "I could not parse the request, so I cannot name the
#: call I am rejecting" — a channel-level failure, not an orphan.
RESERVED_CHANNEL_ERROR_ID = 0


def is_channel_level_error(reply):
    """True when *reply* is the reserved uncorrelatable error reply."""
    return (reply.status == STATUS_ERROR
            and reply.request_id == RESERVED_CHANNEL_ERROR_ID)


class RequestIdAllocator:
    """Monotonic request ids starting at 1 (0 is reserved).

    ``next()`` on the underlying :func:`itertools.count` is atomic
    under the GIL, so allocation needs no lock on the hot path.
    """

    __slots__ = ("_ids",)

    def __init__(self, start=1):
        self._ids = itertools.count(start)

    def next(self):
        return next(self._ids)

    __next__ = next


class CorrelationTable:
    """In-flight request ids → waiters, with one shared lock.

    The table does not know what a waiter *is* — the blocking
    communicator stores ``concurrent.futures.Future`` and bulk
    collectors, the asyncio client stores ``asyncio.Future`` — it only
    owns the id → waiter map and its consistency.  Compound operations
    (register-many-then-send) take :attr:`lock` directly and work on
    :attr:`entries`; the common single steps have methods.

    Entries may also carry an **armed deadline**: an absolute monotonic
    expiry filed in :attr:`deadlines` alongside the waiter.  The table
    stays pure — it never reads a clock; the pump passes ``now`` in —
    so whichever I/O front-end drains it (the blocking demultiplexer's
    select timeout, the asyncio client's loop timers) can enforce
    expiry from its own wait primitive instead of every caller
    re-checking a budget per attempt.
    """

    __slots__ = ("lock", "entries", "deadlines")

    def __init__(self):
        self.lock = threading.Lock()
        self.entries = {}  # guarded-by: self.lock
        #: request id → absolute monotonic expiry, a subset of
        #: :attr:`entries`'s keys.  Compound registration blocks that
        #: hold :attr:`lock` directly write it in place.
        self.deadlines = {}  # guarded-by: self.lock

    def register(self, request_id, waiter, expires_at=None):
        """File a waiter (optionally deadlined); returns the new depth."""
        with self.lock:
            self.entries[request_id] = waiter
            if expires_at is not None:
                self.deadlines[request_id] = expires_at
            return len(self.entries)

    def take(self, request_ids):
        """Pop each id's waiter (None when absent) under one lock.

        Returns ``(waiters, depth)`` with *waiters* in request order —
        the demultiplexer resolves a whole batch of replies this way.
        """
        entries = self.entries
        deadlines = self.deadlines
        with self.lock:
            waiters = [entries.pop(request_id, None)
                       for request_id in request_ids]
            if deadlines:
                for request_id in request_ids:
                    deadlines.pop(request_id, None)
            return waiters, len(entries)

    def discard(self, request_id):
        """Drop one entry (caller stopped waiting).

        Returns ``(waiter_or_None, depth)``.
        """
        with self.lock:
            waiter = self.entries.pop(request_id, None)
            self.deadlines.pop(request_id, None)
            return waiter, len(self.entries)

    def drain(self):
        """Remove and return every entry (channel death)."""
        with self.lock:
            entries, self.entries = self.entries, {}
            self.deadlines.clear()
        return entries

    def next_expiry(self):
        """The earliest armed expiry, or None when nothing is deadlined.

        The unlocked emptiness peek keeps the no-deadline pump loop at
        one dict truthiness test per batch.
        """
        deadlines = self.deadlines
        if not deadlines:
            return None
        with self.lock:
            if not deadlines:
                return None
            return min(deadlines.values())

    def expire(self, now):
        """Pop every entry whose expiry is ``<= now``.

        Returns ``[(request_id, waiter), ...]`` for the pump to fail;
        an entry whose waiter was already taken is skipped.  *now* is
        caller-provided monotonic time — the table owns no clock.
        """
        deadlines = self.deadlines
        if not deadlines:
            return []
        with self.lock:
            due = [request_id for request_id, expires_at in deadlines.items()
                   if expires_at <= now]
            expired = []
            for request_id in due:
                del deadlines[request_id]
                waiter = self.entries.pop(request_id, None)
                if waiter is not None:
                    expired.append((request_id, waiter))
            return expired

    @property
    def depth(self):
        return len(self.entries)  # race-ok: GIL-atomic len, metrics only

    def __len__(self):
        return len(self.entries)  # race-ok: GIL-atomic len, metrics only

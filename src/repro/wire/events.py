"""Typed events produced by the wire state machines.

A machine's :meth:`~repro.wire.machine.WireMachine.next_event` returns
one of these (or :data:`NEED_DATA` when the buffered bytes do not yet
hold a complete message).  Events are plain value objects — they carry
already-parsed :class:`~repro.heidirmi.call.Call`/``Reply`` objects or
raw protocol fields, never channels or sockets.
"""


class _NeedData:
    """Sentinel: the machine needs more bytes before it can emit."""

    __slots__ = ()

    def __repr__(self):
        return "NEED_DATA"


#: Returned by ``next_event`` when no complete message is buffered.
NEED_DATA = _NeedData()


class WireEvent:
    """Base class for everything a wire machine can emit."""

    __slots__ = ()


class RequestReceived(WireEvent):
    """A complete request arrived (server-role machines)."""

    __slots__ = ("call",)

    def __init__(self, call):
        self.call = call

    def __repr__(self):
        return (f"RequestReceived({self.call.operation!r}, "
                f"id={self.call.request_id})")


class ReplyReceived(WireEvent):
    """A complete reply arrived (client-role machines)."""

    __slots__ = ("reply",)

    def __init__(self, reply):
        self.reply = reply

    def __repr__(self):
        return (f"ReplyReceived({self.reply.status!r}, "
                f"id={self.reply.request_id})")


class LocateRequested(WireEvent):
    """GIOP LocateRequest (server role): answer with a LocateReply."""

    __slots__ = ("request_id", "object_key")

    def __init__(self, request_id, object_key):
        self.request_id = request_id
        self.object_key = object_key

    def __repr__(self):
        return f"LocateRequested(id={self.request_id})"


class LocateReplied(WireEvent):
    """GIOP LocateReply (client role)."""

    __slots__ = ("request_id", "status")

    def __init__(self, request_id, status):
        self.request_id = request_id
        self.status = status

    def __repr__(self):
        return f"LocateReplied(id={self.request_id}, status={self.status})"


class CancelReceived(WireEvent):
    """GIOP CancelRequest: nothing to do for synchronous upcalls."""

    __slots__ = ("request_id",)

    def __init__(self, request_id=None):
        self.request_id = request_id

    def __repr__(self):
        return f"CancelReceived(id={self.request_id})"


class CloseReceived(WireEvent):
    """GIOP CloseConnection: the peer is ending the stream."""

    __slots__ = ()

    def __repr__(self):
        return "CloseReceived()"


class WireViolation(WireEvent):
    """The peer sent something the protocol cannot accept.

    ``recoverable`` is True when the bad message was fully consumed and
    the stream position is still trusted (a malformed text line, an
    unexpected-but-framed GIOP message): a server can report it and keep
    serving, which is what keeps the telnet-debugging story alive.
    ``recoverable=False`` means the stream cannot be re-synchronised
    (an over-long unterminated line) and the connection must die.
    """

    __slots__ = ("message", "recoverable")

    def __init__(self, message, recoverable=True):
        self.message = message
        self.recoverable = recoverable

    def __repr__(self):
        flag = "" if self.recoverable else ", recoverable=False"
        return f"WireViolation({self.message!r}{flag})"

"""Sans-I/O state machines for the text and text2 wire protocols.

The parse and emit logic that used to live inline in
``repro.heidirmi.protocol`` — these functions are the single source of
truth now; the blocking protocol classes are thin pumps over them.

Message shapes (one printable-ASCII line each, ``\\n``-terminated)::

    CALL   [ctx=..] [dl=..] <objref> <operation> <token>...
    ONEWAY [ctx=..] [dl=..] <objref> <operation> <token>...
    RET OK <token>...
    RET EXC <repo-id> <token>...
    RET ERR <category> <message-token>

    CALL2 <id> [ctx=..] [dl=..] <objref> <operation> <token>...
    ONEWAY2 [ctx=..] [dl=..] <objref> <operation> <token>...
    RET2 <id> OK <token>...
    RET2 <id> EXC <repo-id> <token>...
    RET2 <id> ERR <category> <message-token>
    BYE

``BYE`` is text2-only (the classic protocol signals close by EOF): an
orderly-shutdown announcement, the text2 spelling of GIOP's
CloseConnection.  A draining server sends it after its last reply so a
multiplexed client can fail still-pending calls as retryable handoffs
(kind ``draining``) instead of a channel death; either side may send
it before closing.
"""

from time import monotonic as _monotonic

from repro.heidirmi.call import (
    STATUS_ERROR,
    STATUS_EXCEPTION,
    STATUS_OK,
    Call,
    Reply,
)
from repro.heidirmi.errors import ProtocolError
from repro.heidirmi.textwire import (
    TextUnmarshaller,
    escape_token,
    unescape_token,
)
from repro.wire import headers
from repro.wire.bufferplan import BufferPlan
from repro.wire.events import (
    NEED_DATA,
    CloseReceived,
    ReplyReceived,
    RequestReceived,
    WireViolation,
)
from repro.wire.machine import CLIENT, WireMachine

#: A line beyond this with no newline is an attack or a bug; the stream
#: cannot be re-synchronised past it.  (Matches the transport channel's
#: own cap, which fires first on the blocking path.)
MAX_LINE = 1 << 20

#: Memo for header tokens (targets, operation names): the same handful
#: of strings heads every request on a connection, so escaping each
#: once beats re-scanning them per call.  Bounded against churn.
_HEADER_ESCAPES = {}


def _escape_header(text):
    token = _HEADER_ESCAPES.get(text)
    if token is None:
        if len(_HEADER_ESCAPES) >= 4096:
            _HEADER_ESCAPES.clear()
        token = escape_token(text)
        _HEADER_ESCAPES[text] = token
    return token


# ---------------------------------------------------------------------------
# Emission: pure Call/Reply -> BufferPlan
# ---------------------------------------------------------------------------


def _request_tail(call):
    """The encoded target/operation/args tail, memoized on the call.

    The tail is the expensive, attempt-invariant part of a request line;
    caching its encoded bytes (terminator included) on the Call means a
    retry re-enqueues the marshalled frame verbatim — only the
    verb/id/header prefix (fresh request id, refreshed ``dl=``
    remaining) is rebuilt per attempt.  Plans borrow the tail, so the
    bytes are shared across attempts without a copy.
    """
    tail = call._wire_tail
    if tail is None:
        tail = (" ".join(
            [_escape_header(call.target), _escape_header(call.operation)]
            + call._m.tokens()
        ) + "\n").encode("ascii")
        call._wire_tail = tail
    return tail


def _deadline_token(call):
    """The ``dl=<ms>`` piece for a deadlined call (deadline-only fast
    path of the resilient hot loop — traced calls go through
    ``headers.header_tokens`` instead).

    A first attempt stamped by the resilient engine carries the plan's
    pre-rendered full-budget token (``call._dl_token``); everything
    else — explicit deadlines, retries, hand-built calls — computes the
    live remaining budget, ``remaining_ms`` inlined (rounded up so a
    positive remainder survives as at least 1 ms).  Duck-typed
    deadlines without ``expires_at`` keep the method call.  The grammar
    stays headers.py's.
    """
    token = call._dl_token
    if token is not None:
        return token
    deadline = call.deadline
    try:
        remaining = deadline.expires_at - _monotonic()
    except AttributeError:
        ms = deadline.remaining_ms()
    else:
        ms = int(remaining * 1000.0) + 1 if remaining > 0.0 else 0
    return headers.DL_PREFIX + str(ms)


def _request_plan(pieces, call):
    """Shared CALL/CALL2 assembly: render the attempt-specific verb /
    id / ``ctx=`` / ``dl=`` prefix into an owned gap segment leased
    from the pool, then borrow the memoized tail.

    Both request grammars differ only in their verb pieces, so this is
    the one place header tokens are chosen (full ``headers`` frame for
    traced calls, engine-stamped or freshly computed ``dl=`` token for
    the deadline-only fast path).
    """
    if call.trace_context is not None:
        pieces += headers.header_tokens(call)
    elif call.deadline is not None:
        # The engine-stamped token avoids even the helper frame here.
        token = call._dl_token
        pieces.append(token if token is not None else _deadline_token(call))
    # Short prefixes: a direct bytearray copy beats a pool round-trip
    # (two lock acquisitions); recycle() still pools it afterwards.
    prefix = bytearray(" ".join(pieces).encode("ascii"))
    prefix += b" "
    plan = BufferPlan()
    plan.append_owned(prefix)
    plan.append_borrowed(_request_tail(call))
    return plan


def _reply_plan(pieces, reply):
    """Shared RET/RET2 assembly: exception identifier, then the
    marshalled result tokens, rendered into one owned segment (replies
    are not retried, so nothing is worth borrowing)."""
    if reply.status in (STATUS_EXCEPTION, STATUS_ERROR):
        pieces.append(escape_token(reply.repo_id))
    pieces += reply._m.tokens()
    line = bytearray(" ".join(pieces).encode("ascii"))
    line += b"\n"
    return BufferPlan().append_owned(line)


def encode_request(call):
    """Classic ``CALL``/``ONEWAY`` plan for *call*."""
    # Build the line in one pass at the token level; going through
    # payload() would encode and re-decode the same bytes.
    return _request_plan(["ONEWAY" if call.oneway else "CALL"], call)


def encode_reply(reply):
    """Classic ``RET`` plan for *reply*."""
    return _reply_plan(["RET", reply.status], reply)


def encode_request2(call):
    """``CALL2 <id>``/``ONEWAY2`` plan for *call*.

    Two-way calls must already carry a request id (the communicator or
    machine allocates one); oneways never do — nothing correlates back.
    """
    if call.oneway:
        pieces = ["ONEWAY2"]
    else:
        if call.request_id is None:
            raise ProtocolError("text2 two-way request needs a request id")
        pieces = ["CALL2", str(call.request_id)]
    return _request_plan(pieces, call)


def encode_reply2(reply):
    """``RET2 <id>`` plan for *reply* (id 0 = reserved channel error)."""
    request_id = (reply.request_id if reply.request_id is not None
                  else 0)
    return _reply_plan(["RET2", str(request_id), reply.status], reply)


# ---------------------------------------------------------------------------
# Parsing: decoded line -> Call/Reply (shared by both machines)
# ---------------------------------------------------------------------------


def parse_request_id(token):
    """A decimal request-id token → int (ids are never negative)."""
    if token is None:
        raise ProtocolError("CALL2 needs a request id")
    try:
        request_id = int(token)
    except ValueError:
        raise ProtocolError(f"bad request id {token!r}") from None
    if request_id < 0:
        raise ProtocolError(f"negative request id {request_id}")
    return request_id


def _parse_request_tail(tokens, head, oneway, request_id):
    """Shared tail of both request grammars: headers, target, args."""
    trace_context, deadline, head = headers.scan_header_tokens(tokens, head)
    if len(tokens) < head + 2:
        raise ProtocolError(
            "request needs an object reference and an operation"
        )
    call = Call(
        unescape_token(tokens[head]),
        unescape_token(tokens[head + 1]),
        unmarshaller=TextUnmarshaller.adopt(tokens, head + 2),
        oneway=oneway,
        request_id=request_id,
    )
    call.trace_context = trace_context
    call.deadline = deadline
    return call


def parse_request_line(line):
    """Classic request line (already decoded) → Call."""
    tokens = line.split()
    if not tokens:
        raise ProtocolError("empty request line")
    verb = tokens[0]
    if verb not in ("CALL", "ONEWAY"):
        raise ProtocolError(
            f"expected CALL or ONEWAY, got {verb!r} "
            "(request shape: CALL <objref> <operation> <args...>)"
        )
    return _parse_request_tail(
        tokens, 1, oneway=(verb == "ONEWAY"), request_id=None
    )


def parse_request2_line(line):
    """text2 request line (already decoded) → Call."""
    tokens = line.split()
    if not tokens:
        raise ProtocolError("empty request line")
    verb = tokens[0]
    if verb == "CALL2":
        try:
            request_id = parse_request_id(tokens[1])
        except IndexError:
            raise ProtocolError("CALL2 needs a request id") from None
        head = 2
        oneway = False
    elif verb == "ONEWAY2":
        request_id = None
        head = 1
        oneway = True
    else:
        raise ProtocolError(
            f"expected CALL2 or ONEWAY2, got {verb!r} "
            "(request shape: CALL2 <id> <objref> <operation> <args...>)"
        )
    return _parse_request_tail(tokens, head, oneway, request_id)


def parse_reply_line(line):
    """Classic reply line (already decoded) → Reply."""
    tokens = line.split()
    if len(tokens) < 2 or tokens[0] != "RET":
        raise ProtocolError(f"malformed reply line {line!r}")
    status = tokens[1]
    if status == STATUS_OK:
        return Reply(
            status=STATUS_OK, unmarshaller=TextUnmarshaller.adopt(tokens, 2)
        )
    if status in (STATUS_EXCEPTION, STATUS_ERROR):
        if len(tokens) < 3:
            raise ProtocolError(f"{status} reply needs an identifier")
        return Reply(
            status=status,
            repo_id=unescape_token(tokens[2]),
            unmarshaller=TextUnmarshaller.adopt(tokens, 3),
        )
    raise ProtocolError(f"unknown reply status {status!r}")


def parse_reply2_line(line):
    """text2 reply line (already decoded) → Reply."""
    tokens = line.split()
    if len(tokens) < 3 or tokens[0] != "RET2":
        raise ProtocolError(f"malformed reply line {line!r}")
    try:
        request_id = int(tokens[1])
    except ValueError:
        raise ProtocolError(f"bad request id {tokens[1]!r}") from None
    if request_id < 0:
        raise ProtocolError(f"negative request id {request_id}")
    status = tokens[2]
    if status == STATUS_OK:
        return Reply(
            status=STATUS_OK,
            unmarshaller=TextUnmarshaller.adopt(tokens, 3),
            request_id=request_id,
        )
    if status in (STATUS_EXCEPTION, STATUS_ERROR):
        if len(tokens) < 4:
            raise ProtocolError(f"{status} reply needs an identifier")
        return Reply(
            status=status,
            repo_id=unescape_token(tokens[3]),
            unmarshaller=TextUnmarshaller.adopt(tokens, 4),
            request_id=request_id,
        )
    raise ProtocolError(f"unknown reply status {status!r}")


# ---------------------------------------------------------------------------
# The machines
# ---------------------------------------------------------------------------


class TextWire(WireMachine):
    """State machine for the classic newline-ASCII protocol."""

    protocol_name = "text"

    _parse_request = staticmethod(parse_request_line)
    _parse_reply = staticmethod(parse_reply_line)
    _encode_request = staticmethod(encode_request)
    _encode_reply = staticmethod(encode_reply)

    def read_hint(self):
        return ("line",)

    def _parse_one(self):
        index = self._buffer.find(b"\n", self._start)
        if index < 0:
            if self._available() > MAX_LINE:
                # Discard the poisoned bytes so the violation is
                # delivered once, not re-parsed forever; the driver
                # must abandon the stream (recoverable=False) anyway.
                self._consume(self._available())
                return WireViolation(
                    "request line too long", recoverable=False
                )
            return NEED_DATA
        raw = self._buffer[self._start:index]
        self._start = index + 1
        while raw and raw[-1] == 0x0D:  # rstrip(b"\r"), no realloc
            del raw[-1]
        return self._event_for_line(raw)

    def feed_line(self, raw):
        """One complete line (terminator already stripped) → event.

        The zero-copy fast path of the blocking pump: the channel's
        ``recv_line`` has already demarcated the line, so when nothing
        is buffered the machine parses it in place instead of paying a
        copy into its own buffer and a second newline scan.  With bytes
        pending (a feed_bytes driver mixing styles) it falls back to
        ordered buffering so no message can overtake another.
        """
        if len(self._buffer) > self._start:
            self._buffer += raw
            self._buffer += b"\n"
            return self.next_event()
        event = self._event_for_line(raw)
        if self.tap is not None:
            # The channel stripped the terminator; restore it so the
            # recorded frame is replayable byte-for-byte.  The caller's
            # line is a fresh buffer it never reuses (the ``recv_line``
            # contract), so a mutable one grows in place — the recorder
            # takes ownership either way.
            if not isinstance(raw, bytearray):
                raw = bytearray(raw)
            raw += b"\n"
            self.tap.record_in(raw, event, self.role)
        return event

    def _event_for_line(self, raw):
        line = raw.decode("ascii", errors="replace")
        try:
            if self.role == CLIENT:
                return ReplyReceived(self._parse_reply(line))
            return RequestReceived(self._parse_request(line))
        except ProtocolError as exc:
            return WireViolation(str(exc))

    # -- emission ----------------------------------------------------------

    def emit_request(self, call):
        return self._encode_request(call)

    def emit_reply(self, reply):
        return self._encode_reply(reply)


#: The text2 orderly-close line (terminator excluded, like recv_line).
BYE_LINE = b"BYE"

#: The encoded close frame (what a draining peer actually sends).
BYE_FRAME = b"BYE\n"


def encode_close2():
    """The text2 ``BYE`` frame (orderly-close announcement)."""
    return BYE_FRAME


class Text2Wire(TextWire):
    """State machine for the id-framed text2 protocol."""

    protocol_name = "text2"

    _parse_request = staticmethod(parse_request2_line)
    _parse_reply = staticmethod(parse_reply2_line)
    _encode_request = staticmethod(encode_request2)
    _encode_reply = staticmethod(encode_reply2)

    def _event_for_line(self, raw):
        # ``BYE`` is accepted in both roles (either side may announce an
        # orderly close); one 3-byte compare on the per-line path.
        if raw == BYE_LINE:
            return CloseReceived()
        return super()._event_for_line(raw)

    def emit_close(self):
        """The orderly-close frame this machine's peer will parse."""
        return BYE_FRAME

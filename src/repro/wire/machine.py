"""The sans-I/O state-machine base class.

A :class:`WireMachine` owns a byte buffer and a parsing state; it never
touches a socket, a thread, or a clock.  Drivers push bytes in and pull
events out:

- an asyncio (or any other) pump calls ``feed_bytes(chunk)`` with
  whatever arrived and handles the returned events;
- the blocking adapters in ``repro.heidirmi.protocol`` instead ask
  :meth:`read_hint` what the machine needs next (a line, or an exact
  byte count), perform that one blocking read, and feed the exact
  frame — so the blocking stack issues the *same reads against the
  same channel methods* as it did before the refactor, which keeps
  fault-injection points and deterministic chaos schedules intact.

Machines are per-direction: a ``role="client"`` machine parses replies,
a ``role="server"`` machine parses requests.  Emission (``emit_*``) is
stateless for the text protocols and nearly so for GIOP, so one machine
can both emit and parse its direction of a full-duplex connection.
"""

from repro.wire.bufferplan import BufferPlan
from repro.wire.events import NEED_DATA

#: Compact the receive buffer once this much consumed prefix accumulates
#: (same policy as the transport channel's buffer).
_COMPACT_THRESHOLD = 1 << 16

CLIENT = "client"
SERVER = "server"


class WireMachine:
    """Pure bytes-in/events-out protocol state machine."""

    #: Protocol name, matching ``repro.heidirmi.protocol`` registry keys.
    protocol_name = "?"

    #: Optional flight-recorder tap (``repro.observe.flight``): when
    #: set, every parsed event is recorded together with the exact
    #: consumed frame bytes.  A class-level None default keeps the
    #: untapped hot path at one ``is None`` test per event — the same
    #: idiom as the transport channel's byte ``meter``.  The tap is an
    #: *observer* only: it never feeds bytes back or mutates state, so
    #: the machine stays sans-I/O.
    tap = None

    def __init__(self, role):
        if role not in (CLIENT, SERVER):
            raise ValueError(f"role must be 'client' or 'server', not {role!r}")
        self.role = role
        self._buffer = bytearray()
        self._start = 0
        # Where the in-progress frame began: bytes consumed since the
        # last emitted event (a GIOP header may be consumed one call
        # before its body completes the event).  Advanced on every
        # event so a tap attached mid-stream starts frame-aligned.
        self._tap_mark = 0

    # -- feeding -----------------------------------------------------------

    def receive_data(self, data):
        """Buffer *data* without parsing (pump-style drivers).

        *data* may be bytes-like or a :class:`BufferPlan` (a loopback
        driver feeding an emitted frame straight back); plan segments
        are buffered in wire order without an intermediate join.
        """
        self._append(data)

    def feed_bytes(self, data):
        """Buffer *data* and return every now-complete event."""
        self._append(data)
        events = []
        while True:
            event = self.next_event()
            if event is NEED_DATA:
                break
            events.append(event)
        return events

    def next_event(self):
        """One parsed event, or :data:`NEED_DATA`."""
        event = self._parse_one()
        if event is not NEED_DATA:
            if self.tap is not None:
                # The slice from the last event's end to here is
                # exactly the bytes behind this event; captured before
                # _compact shifts the offsets.
                self.tap.record_in(
                    self._buffer[self._tap_mark:self._start], event, self.role
                )
            self._compact()
            self._tap_mark = self._start
        return event

    def feed_frame(self, data):
        """One exact frame from a hint-driven pump: buffer, parse once.

        Semantically ``receive_data(data)`` + ``next_event()``.  A
        blocking driver that already performed the exact read a
        :meth:`read_hint` asked for uses this to skip the speculative
        parse of an empty buffer that a feed-then-poll loop would pay
        on every frame.
        """
        self._append(data)
        event = self._parse_one()
        if event is not NEED_DATA:
            if self.tap is not None:
                self.tap.record_in(
                    self._buffer[self._tap_mark:self._start], event, self.role
                )
            self._compact()
            self._tap_mark = self._start
        return event

    def read_hint(self):
        """What one blocking read should fetch next.

        ``("line",)`` — one newline-terminated line;
        ``("exact", n)`` — exactly *n* more bytes.
        Only meaningful while ``next_event()`` returns NEED_DATA.
        """
        raise NotImplementedError

    # -- buffer plumbing ---------------------------------------------------

    @property
    def has_buffered(self):
        """Unparsed bytes sitting in the machine?"""
        return len(self._buffer) > self._start

    @property
    def buffered(self):
        """The unparsed bytes (a copy; diagnostics only)."""
        return bytes(self._buffer[self._start:])

    def _available(self):
        return len(self._buffer) - self._start

    def _append(self, data):
        if type(data) is BufferPlan:
            for segment in data.segments():
                self._append_bytes(segment)
        else:
            self._append_bytes(data)

    def _append_bytes(self, data):
        try:
            self._buffer += data
        except BufferError:
            # A decoder still holds zero-copy views into the buffer (a
            # consumed GIOP body being unmarshalled lazily), so the
            # bytearray cannot resize.  Move the unparsed remainder to
            # a fresh buffer; the old one stays alive behind the
            # outstanding views until they are dropped.
            keep = min(self._tap_mark, self._start)
            fresh = bytearray(memoryview(self._buffer)[keep:])
            fresh += data
            self._start -= keep
            self._tap_mark -= keep
            self._buffer = fresh

    def _consume(self, count):
        """Consume *count* bytes as a read-only view — no copy.

        The view aliases the machine's buffer; appends and compaction
        reallocate rather than resize while such views are alive (see
        :meth:`_append_bytes`), so the bytes behind a view never move
        out from under a decoder.
        """
        data = memoryview(self._buffer).toreadonly()[
            self._start:self._start + count]
        self._start += count
        return data

    def _compact(self):
        if self._start == len(self._buffer):
            try:
                self._buffer.clear()
            except BufferError:
                self._buffer = bytearray()
            self._start = 0
        elif self._start > _COMPACT_THRESHOLD:
            try:
                del self._buffer[:self._start]
            except BufferError:
                self._buffer = bytearray(
                    memoryview(self._buffer)[self._start:])
            self._start = 0

    # -- to be provided by protocol machines -------------------------------

    def _parse_one(self):
        """Parse one event off the buffer, or return NEED_DATA."""
        raise NotImplementedError

    def __repr__(self):
        return (f"<{type(self).__name__} {self.role} "
                f"buffered={self._available()}>")

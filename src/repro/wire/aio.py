"""Asyncio front-end over the sans-I/O wire machines.

This is the module the layering lint (ARCH001) carves out: everything
else under :mod:`repro.wire` is pure bytes-in/events-out, and *only*
this module may touch sockets and event loops.  It provides three
things, all driven by the exact machines the blocking stack pumps:

``AioTransport`` (registered as ``"aio"``)
    A drop-in :class:`~repro.heidirmi.transport.Transport`: blocking
    Channels and Listeners whose I/O runs on a shared background
    asyncio event loop.  An unchanged ORB — threads, communicators,
    connection cache and all — works over it byte for byte, which is
    what the interop matrix asserts.

``AioOrbServer``
    A coroutine server front-end for an existing :class:`Orb`'s object
    table: one task per connection, chunk reads fed straight into a
    server-role wire machine, dispatch through the orb's own
    ``_handle_request`` in an executor.  No ObjectCommunicator, no
    per-connection thread.

``AioClientConnection``
    A coroutine client: ``await conn.invoke(call)`` with futures
    correlated by request id on multiplexing protocols (many awaiters,
    one connection) and by FIFO order on the classic text protocol.
"""

import asyncio
import collections
import concurrent.futures
import queue
import socket
import threading
import time

from repro.heidirmi.call import Reply, STATUS_ERROR
from repro.heidirmi.errors import (
    CommunicationError,
    DeadlineExceeded,
    ProtocolError,
)
from repro.heidirmi.transport import (
    DEFAULT_CONNECT_TIMEOUT,
    Channel,
    Listener,
    Transport,
    register_transport,
)
from repro.wire.bufferplan import BufferPlan
from repro.wire.headers import OVERLOADED_CATEGORY, overload_message
from repro.wire.correlation import is_channel_level_error
from repro.wire.events import (
    NEED_DATA,
    CancelReceived,
    CloseReceived,
    LocateRequested,
    ReplyReceived,
    RequestReceived,
    WireViolation,
)

_READ_CHUNK = 65536


# ---------------------------------------------------------------------------
# The shared background loop
# ---------------------------------------------------------------------------

_LOOP = None  # guarded-by: _LOOP_LOCK
_LOOP_LOCK = threading.Lock()


def get_event_loop():
    """The process-wide event loop backing the blocking ``aio`` facade.

    Started lazily on a daemon thread; shared by every AioChannel,
    AioListener and AioOrbServer so cross-connection work (accepting
    while reading while writing) multiplexes on one loop, which is the
    point of the exercise.
    """
    global _LOOP
    loop = _LOOP
    if loop is None:
        with _LOOP_LOCK:
            loop = _LOOP
            if loop is None:
                loop = asyncio.new_event_loop()
                thread = threading.Thread(
                    target=loop.run_forever,
                    name="repro-aio-loop",
                    daemon=True,
                )
                thread.start()
                _LOOP = loop
    return loop


def _run(coroutine, timeout=None):
    """Run *coroutine* on the shared loop, blocking for its result."""
    return asyncio.run_coroutine_threadsafe(
        coroutine, get_event_loop()
    ).result(timeout)


def _set_nodelay(writer):
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass


def _write_frame(writer, data):
    """Queue one emitted frame — bytes or a BufferPlan — on *writer*.

    Plans go through ``writelines`` so the stream layer sees the
    scatter-gather segments directly; their pooled segments are never
    recycled on aio paths (the transport may hold them past drain).
    """
    if type(data) is BufferPlan:
        writer.writelines(data.segments())
    else:
        writer.write(data)


# ---------------------------------------------------------------------------
# Blocking facade: Channel/Listener/Transport over the loop
# ---------------------------------------------------------------------------


class AioChannel(Channel):
    """A blocking Channel whose bytes move through an asyncio stream.

    Inherits the receive buffer, ``recv_line``/``recv_exact``,
    ``has_buffered`` and deadline bookkeeping from :class:`Channel`;
    only the three primitives that touch the socket (``send``,
    ``_fill``, ``close``) are rerouted onto the event loop.  Blocking
    callers therefore observe byte-identical behaviour — same frames,
    same exception kinds, same deadline semantics.
    """

    def __init__(self, reader, writer, peer="?"):
        super().__init__(None, peer=peer)
        self._reader = reader
        self._writer = writer
        self._loop = get_event_loop()

    def set_deadline(self, expires_at):
        # Plain attribute store: no watchdog here.  There is no kernel
        # socket to shut down (``_sock`` is None) — the rerouted
        # primitives below already bound every operation with the
        # ``future.result(timeout)`` they run on the shared loop.
        self._deadline = expires_at

    async def _send_async(self, data):
        _write_frame(self._writer, data)
        await self._writer.drain()

    async def _fill_async(self):
        return await self._reader.read(_READ_CHUNK)

    def _remaining(self, verb):
        if self._deadline is None:
            return None
        remaining = self._deadline - time.monotonic()
        if remaining <= 0.0:
            self.close()
            raise DeadlineExceeded(
                f"deadline expired before {verb} to {self.peer}"
                if verb == "send"
                else f"deadline expired waiting for {self.peer}"
            )
        return remaining

    def send(self, data):
        if self._closed:
            raise CommunicationError(
                f"channel to {self.peer} is closed", kind="channel-closed"
            )
        timeout = self._remaining("send")
        with self._send_lock:
            future = asyncio.run_coroutine_threadsafe(
                self._send_async(data), self._loop
            )
            try:
                future.result(timeout)
            except concurrent.futures.TimeoutError as exc:
                future.cancel()
                self.close()
                raise DeadlineExceeded(
                    f"deadline expired in send to {self.peer}"
                ) from exc
            except (ConnectionError, OSError) as exc:
                self.close()
                raise CommunicationError(
                    f"send to {self.peer} failed: {exc}", kind="send-failed"
                ) from exc
        if self.meter is not None:
            self.meter.sent(len(data))
        if self.flight is not None:
            # The flight ring stores frames by reference: contiguous
            # immutable bytes, never a plan's pooled segments.
            self.flight.record_out(
                data.to_bytes() if type(data) is BufferPlan else data)
        # No recycle: asyncio's transport may still reference the
        # plan's segments after drain() returns (write buffering), so
        # aio paths let the garbage collector reclaim them instead.

    def _fill(self):
        timeout = self._remaining("recv")
        future = asyncio.run_coroutine_threadsafe(
            self._fill_async(), self._loop
        )
        try:
            chunk = future.result(timeout)
        except concurrent.futures.TimeoutError as exc:
            future.cancel()
            self.close()
            raise DeadlineExceeded(
                f"deadline expired waiting for {self.peer}"
            ) from exc
        except (ConnectionError, OSError) as exc:
            self.close()
            raise CommunicationError(
                f"recv from {self.peer} failed: {exc}", kind="recv-failed"
            ) from exc
        if not chunk:
            raise CommunicationError(
                f"peer {self.peer} closed the connection", kind="peer-closed"
            )
        if self.meter is not None:
            self.meter.received(len(chunk))
        self._buffer += chunk

    def wait_readable(self, timeout):
        """Block until a recv would not block, at most *timeout* seconds.

        The aio mirror of ``Channel.wait_readable``: a read is started
        on the shared loop and awaited for *timeout*.  A chunk that
        lands is buffered (never dropped), EOF and errors report True
        so the next recv surfaces them, and only a clean timeout — the
        coroutine observably cancelled before any data was taken off
        the stream — reports False.
        """
        if len(self._buffer) > self._start:
            return True
        if self._closed:
            return True
        future = asyncio.run_coroutine_threadsafe(
            self._fill_async(), self._loop
        )
        try:
            chunk = future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            # The cancel races the read completing: block until the
            # future settles (the loop settles it on its next pass).
            # StreamReader.read only takes bytes out of its buffer
            # after its last await, so a cancelled read loses nothing.
            try:
                chunk = future.result()
            except concurrent.futures.CancelledError:
                return False
            except Exception:
                return True  # let the recv path raise it properly
        except Exception:
            return True  # ditto: connection errors surface on recv
        if chunk:
            if self.meter is not None:
                self.meter.received(len(chunk))
            self._buffer += chunk
        # An empty chunk is EOF: recv re-reads and raises peer-closed.
        return True

    def close(self):
        if self._closed:
            return
        self._closed = True
        writer = self._writer

        def _shutdown():
            try:
                writer.close()
            except Exception:
                pass

        try:
            self._loop.call_soon_threadsafe(_shutdown)
        except RuntimeError:
            pass  # loop torn down at interpreter exit


#: Queue sentinel: the listener was closed under a blocked acceptor.
_CLOSED = object()


class AioListener(Listener):
    """Accept side of the aio transport: asyncio server, blocking API."""

    def __init__(self, host, port):
        self._accepted = queue.Queue()
        self._closed = False
        try:
            self._server = _run(self._start(host, port))
        except OSError as exc:
            raise CommunicationError(
                f"cannot bind {host}:{port}: {exc}", kind="bind-failed"
            ) from exc
        # Snapshot the bound address: server.sockets empties on close,
        # but callers still ask where the listener *was* (Orb.port).
        self._address = self._server.sockets[0].getsockname()[:2]

    async def _start(self, host, port):
        return await asyncio.start_server(self._on_connect, host, port)

    async def _on_connect(self, reader, writer):
        # Runs on the loop for every inbound connection; hand the
        # streams to whichever thread is blocked in accept().
        _set_nodelay(writer)
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        self._accepted.put(AioChannel(reader, writer, peer=peer))

    def accept(self):
        channel = self._accepted.get()
        if channel is _CLOSED:
            # Re-post for any other blocked acceptor.
            self._accepted.put(_CLOSED)
            raise CommunicationError(
                "listener closed", kind="listener-closed"
            )
        return channel

    def close(self):
        if self._closed:
            return
        self._closed = True
        try:
            _run(self._stop())
        except Exception:
            pass
        self._accepted.put(_CLOSED)

    async def _stop(self):
        self._server.close()
        await self._server.wait_closed()

    @property
    def address(self):
        return self._address


class AioTransport(Transport):
    """TCP through a background asyncio loop, behind the blocking API."""

    name = "aio"

    def listen(self, host, port):
        return AioListener(host, port)

    def connect(self, host, port, timeout=None):
        if timeout is None:
            timeout = DEFAULT_CONNECT_TIMEOUT
        try:
            reader, writer = _run(
                asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout
                )
            )
        # asyncio.TimeoutError is distinct from TimeoutError on 3.10.
        except (asyncio.TimeoutError, TimeoutError) as exc:
            raise CommunicationError(
                f"connect {host}:{port} timed out after {timeout}s",
                kind="connect-timeout",
            ) from exc
        except (ConnectionError, OSError) as exc:
            raise CommunicationError(
                f"cannot connect {host}:{port}: {exc}", kind="connect-refused"
            ) from exc
        _set_nodelay(writer)
        return AioChannel(reader, writer, peer=f"{host}:{port}")


# ---------------------------------------------------------------------------
# Coroutine-native server front-end
# ---------------------------------------------------------------------------


def _error_reply(protocol, category, message, request_id=None):
    marshaller = protocol.new_marshaller()
    reply = Reply(
        status=STATUS_ERROR,
        repo_id=category,
        marshaller=marshaller,
        request_id=request_id,
    )
    reply.put_string(message)
    return reply


def _shed_reply(protocol, hint, message, request_id=None):
    """A typed ``Overloaded`` shed reply with its retry-after hint.

    The hint rides in-band as the leading ``ra=`` message token (what
    the text protocols carry) *and* on the reply's ``retry_after`` slot
    (what the GIOP encoder lifts into the HDRA ServiceContext).
    """
    reply = _error_reply(
        protocol, OVERLOADED_CATEGORY, overload_message(hint, message),
        request_id=request_id,
    )
    reply.retry_after = hint
    return reply


class _AioServerConn:
    """Per-connection drain bookkeeping for :class:`AioOrbServer`.

    Every field is read and written only from coroutines on the shared
    loop, so plain attributes suffice (single-threaded by construction,
    the same ``<serial:event-loop>`` discipline the client uses).
    """

    __slots__ = ("machine", "writer", "write", "inflight", "closing")

    def __init__(self, machine, writer, write):
        self.machine = machine
        self.writer = writer
        #: Frame writer (bytes or BufferPlan): plain scatter-gather
        #: queueing, or the flight-recording wrapper when a recorder
        #: is armed on this connection.
        self.write = write
        self.inflight = 0  # guarded-by: <serial:event-loop>
        self.closing = False  # guarded-by: <serial:event-loop>


class AioOrbServer:
    """Serve an Orb's objects from coroutines instead of threads.

    One asyncio task per connection replaces one thread per connection:
    chunks come off the stream, go into a server-role wire machine
    (the same ``machine_class`` the blocking server pumps), and each
    RequestReceived is dispatched through the orb's own
    ``_handle_request`` in the loop's default executor, so skeletons
    and application code still run on plain threads and never see the
    event loop.  Replies and protocol-level error replies are emitted
    by the machine, byte-identical to the blocking server's.

    Usage (from synchronous test/driver code)::

        server = AioOrbServer(orb)
        host, port = server.start()
        ...
        server.stop()
    """

    def __init__(self, orb, host="127.0.0.1", port=0):
        self.orb = orb
        self._host = host
        self._port = port
        self._server = None
        self._conns = set()  # guarded-by: <serial:event-loop>
        self._draining = False  # guarded-by: <serial:event-loop>

    # -- blocking facade ---------------------------------------------------

    def start(self):
        """Bind and serve on the shared loop; returns (host, port)."""
        self._server = _run(self._start_async())
        return self.address

    def stop(self, drain=None):
        """Stop serving; with *drain* seconds, wind down in order.

        ``drain`` mirrors ``Orb.stop(drain=...)``: stop accepting, shed
        newly arriving requests as retryable ``draining`` handoffs,
        let in-flight dispatches finish (up to the budget), then send
        each connection the protocol's orderly-close frame before
        closing it.  Without *drain* the stop is immediate, as before.
        """
        if self._server is None:
            return
        if drain is not None:
            _run(self._drain_async(float(drain)))
        _run(self._stop_async())
        self._server = None
        self._draining = False

    @property
    def address(self):
        return self._server.sockets[0].getsockname()[:2]

    # -- coroutine side ----------------------------------------------------

    async def _start_async(self):
        try:
            return await asyncio.start_server(
                self._serve_connection, self._host, self._port
            )
        except OSError as exc:
            raise CommunicationError(
                f"cannot bind {self._host}:{self._port}: {exc}",
                kind="bind-failed",
            ) from exc

    async def _stop_async(self):
        self._server.close()
        await self._server.wait_closed()

    async def _drain_async(self, timeout):
        """Orderly wind-down on the loop: quiesce, close, announce."""
        if self._draining:
            return
        self._draining = True
        self._server.close()  # stop accepting; existing conns live on
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            for conn in list(self._conns):
                if conn.inflight == 0:
                    await self._close_orderly(conn)
            if not self._conns:
                return
            if loop.time() >= deadline:
                # Budget spent: close what is left, busy or not.
                for conn in list(self._conns):
                    await self._close_orderly(conn)
                return
            await asyncio.sleep(0.002)

    async def _close_orderly(self, conn):
        """Announce the close (BYE / CloseConnection) and hang up."""
        if conn.closing:
            return
        conn.closing = True
        self._conns.discard(conn)
        emit_close = getattr(conn.machine, "emit_close", None)
        try:
            if emit_close is not None:
                # Classic text has no close frame; EOF is the close.
                conn.writer.write(emit_close())
                await conn.writer.drain()
        except (ConnectionError, OSError):
            pass
        try:
            conn.writer.close()
        except Exception:
            pass

    async def _serve_connection(self, reader, writer):
        _set_nodelay(writer)
        orb = self.orb
        protocol = orb.protocol
        machine = protocol.server_machine()
        control = getattr(
            getattr(orb, "observer", None), "flight", None
        )
        recorder = None
        if control is not None:
            peername = writer.get_extra_info("peername")
            peer = f"{peername[0]}:{peername[1]}" if peername else "?"
            recorder = control.new_recorder(protocol.name, "server", peer)
            machine.tap = recorder

            def write(data):
                # The ring stores frames by reference: record the
                # contiguous immutable form, send the same bytes.
                if type(data) is BufferPlan:
                    data = data.to_bytes()
                recorder.record_out(data)
                writer.write(data)
        else:
            def write(data):
                _write_frame(writer, data)
        conn = _AioServerConn(machine, writer, write)
        self._conns.add(conn)
        loop = asyncio.get_running_loop()
        try:
            while True:
                event = machine.next_event()
                if event is NEED_DATA:
                    chunk = await reader.read(_READ_CHUNK)
                    if not chunk:
                        return  # peer hung up
                    machine.receive_data(chunk)
                    continue
                kind = type(event)
                if kind is RequestReceived:
                    if self._draining:
                        if not await self._shed_draining(conn, event.call):
                            return
                        continue
                    if not await self._serve_request(loop, conn, event.call):
                        return
                elif kind is LocateRequested:
                    from repro.giop.messages import (
                        LOCATE_OBJECT_HERE,
                        LOCATE_UNKNOWN_OBJECT,
                    )

                    status = (
                        LOCATE_OBJECT_HERE
                        if orb._object_key_exists(event.object_key)
                        else LOCATE_UNKNOWN_OBJECT
                    )
                    write(
                        machine.emit_locate_reply(event.request_id, status)
                    )
                    await writer.drain()
                elif kind is CancelReceived:
                    continue  # dispatch here is serial; nothing to cancel
                elif kind is CloseReceived:
                    return
                elif kind is WireViolation:
                    if not event.recoverable:
                        if recorder is not None:
                            recorder.postmortem(ProtocolError(event.message))
                        return
                    # Same telnet-forgiveness as the blocking server:
                    # report the parse failure, keep the connection.
                    write(machine.emit_reply(_error_reply(
                        protocol, "Protocol", event.message
                    )))
                    await writer.drain()
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            # Connection died mid-frame; nothing to report to the peer,
            # but the flight ring (when armed) becomes a postmortem.
            if recorder is not None:
                recorder.postmortem(CommunicationError(
                    f"connection died: {exc}", kind="recv-failed"
                ))
        finally:
            self._conns.discard(conn)
            try:
                writer.close()
            except Exception:
                pass

    async def _shed_draining(self, conn, call):
        """Refuse one request during drain; False ends the connection."""
        if call.oneway:
            return True
        admission = self.orb._admission
        hint = (admission.shed_draining_one() if admission is not None
                else 0.05)
        try:
            conn.write(conn.machine.emit_reply(_shed_reply(
                self.orb.protocol, hint, "server draining",
                request_id=call.request_id,
            )))
            await conn.writer.drain()
        except (ConnectionError, OSError):
            return False
        return True

    async def _serve_request(self, loop, conn, call):
        """Dispatch one request; False ends the connection."""
        orb = self.orb
        protocol = orb.protocol
        machine, writer = conn.machine, conn.writer
        if call.deadline is not None and call.deadline.expired:
            # The wire-propagated budget ran out in transit or in the
            # read queue; the client has stopped waiting.
            if not call.oneway:
                conn.write(machine.emit_reply(_error_reply(
                    protocol,
                    "DeadlineExceeded",
                    f"request {call.operation!r} expired before dispatch",
                    request_id=call.request_id,
                )))
                await writer.drain()
            return True
        admission = orb._admission
        admit_time = None
        if admission is not None:
            hint = admission.admit(call.operation)
            if hint is not None:
                if call.oneway:
                    return True
                try:
                    conn.write(machine.emit_reply(_shed_reply(
                        protocol, hint, "server overloaded",
                        request_id=call.request_id,
                    )))
                    await writer.drain()
                except (ConnectionError, OSError):
                    return False
                return True
            admit_time = admission.policy.clock()
        # Skeleton/application code runs on executor threads — the
        # loop stays free to read other connections meanwhile, but
        # dispatch stays serial per connection (ordering guarantee).
        conn.inflight += 1
        try:
            reply = await loop.run_in_executor(
                None, orb._handle_request, call
            )
        finally:
            conn.inflight -= 1
            if admit_time is not None:
                elapsed = admission.policy.clock() - admit_time
                # Serial dispatch: the sojourn *is* the service time.
                admission.finished(call.operation, elapsed,
                                   service_time=elapsed)
        if call.oneway:
            return True
        try:
            data = machine.emit_reply(reply)
        except Exception as exc:  # the result itself failed to encode
            data = machine.emit_reply(_error_reply(
                protocol, type(exc).__name__, str(exc),
                request_id=call.request_id,
            ))
        try:
            conn.write(data)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True


# ---------------------------------------------------------------------------
# Coroutine-native client
# ---------------------------------------------------------------------------


class AioClientConnection:
    """A coroutine client over one connection: ``await invoke(call)``.

    On multiplexing protocols (text2, GIOP) every awaiter gets a future
    keyed by request id, so many coroutines share the connection and
    replies complete out of order — the asyncio mirror of the blocking
    ObjectCommunicator's demultiplexer.  On the classic text protocol
    replies correlate by FIFO order, exactly like the blocking serial
    path.
    """

    def __init__(self, protocol, reader, writer, flight=None):
        self.protocol = protocol
        self._reader = reader
        self._writer = writer
        self._machine = protocol.client_machine()
        self._multiplexed = bool(
            getattr(protocol, "supports_multiplexing", False)
        )
        self._pending = {}  # guarded-by: <serial:event-loop>
        self._fifo = collections.deque()  # guarded-by: <serial:event-loop>
        self._reader_task = None
        self._closed = False
        self._flight = None
        if flight is not None:
            peername = writer.get_extra_info("peername")
            peer = f"{peername[0]}:{peername[1]}" if peername else "?"
            self._flight = flight.new_recorder(protocol.name, "client", peer)
            self._machine.tap = self._flight

    @classmethod
    async def open(cls, protocol, host, port, flight=None):
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError) as exc:
            raise CommunicationError(
                f"cannot connect {host}:{port}: {exc}", kind="connect-refused"
            ) from exc
        _set_nodelay(writer)
        return cls(protocol, reader, writer, flight=flight)

    async def invoke(self, call):
        """Send *call*; await and return its Reply (None for oneways)."""
        if self._closed:
            raise CommunicationError(
                "connection is closed", kind="channel-closed"
            )
        needs_id = call.request_id is None and self._multiplexed and (
            not call.oneway or self._machine.protocol_name == "giop"
        )
        if needs_id:
            # GIOP frames an id on oneways too; text2 oneways carry none.
            call.request_id = self.protocol.next_request_id()
        future = None
        if not call.oneway:
            future = asyncio.get_running_loop().create_future()
            if self._multiplexed:
                self._pending[call.request_id] = future
            else:
                self._fifo.append(future)
            if call.deadline is not None:
                self._arm_deadline(call, future)
        data = self._machine.emit_request(call)
        if self._flight is not None:
            self._flight.record_out(
                data.to_bytes() if type(data) is BufferPlan else data)
        _write_frame(self._writer, data)
        await self._writer.drain()
        if future is None:
            return None
        self._ensure_reader()
        return await future

    def _arm_deadline(self, call, future):
        """Enforce *call*'s budget from the loop's shared timer wheel.

        One ``call_later`` on the process-wide loop per deadlined call —
        every connection shares the same heap of timers — in place of
        any per-await polling.  Expiry abandons just this call's entry
        (a late reply is dropped as an orphan) and fails the awaiter
        with :class:`DeadlineExceeded`; the timer is cancelled the
        moment the future settles, so completed calls leave no debris.
        """
        request_id = call.request_id
        operation = call.operation

        def _expire():
            if future.done():
                return
            if self._multiplexed:
                self._pending.pop(request_id, None)
            else:
                try:
                    self._fifo.remove(future)
                except ValueError:
                    pass
            future.set_exception(DeadlineExceeded(
                f"deadline expired waiting for reply to {operation!r}"
                + (f" (id {request_id})" if request_id is not None else "")
            ))

        handle = asyncio.get_running_loop().call_later(
            max(0.0, call.deadline.remaining()), _expire
        )
        future.add_done_callback(lambda _future: handle.cancel())

    def _ensure_reader(self):
        if self._reader_task is None:
            self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self):
        try:
            while self._pending or self._fifo:
                event = self._machine.next_event()
                if event is NEED_DATA:
                    chunk = await self._reader.read(_READ_CHUNK)
                    if not chunk:
                        raise CommunicationError(
                            "peer closed the connection", kind="peer-closed"
                        )
                    self._machine.receive_data(chunk)
                    continue
                self._dispatch_event(event)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if self._flight is not None:
                self._flight.postmortem(exc)
            self._fail_pending(exc)
        finally:
            self._reader_task = None

    def _dispatch_event(self, event):
        kind = type(event)
        if kind is ReplyReceived:
            reply = event.reply
            if not self._multiplexed:
                if self._fifo:
                    self._resolve(self._fifo.popleft(), reply)
                return
            if is_channel_level_error(reply):
                # RET2 0 ERR / GIOP id 0: the server could not even
                # correlate — every call in flight is dead.  Same kind
                # as the blocking demultiplexer raises for this case.
                self._fail_pending(CommunicationError(
                    "channel-level protocol error from peer",
                    kind="peer-protocol-error",
                ))
                return
            future = self._pending.pop(reply.request_id, None)
            if future is not None:
                self._resolve(future, reply)
            return  # orphaned reply (abandoned call): drop it
        if kind is CloseReceived:
            # BYE / GIOP CloseConnection: the server announced an
            # orderly drain.  Pending calls fail as retryable handoffs
            # (kind "draining"), and the armed flight ring stays clean.
            raise CommunicationError(
                "peer is draining: sent an orderly close", kind="draining"
            )
        if kind is WireViolation:
            if not self._multiplexed and self._fifo:
                # Serial: the garbled frame *is* the awaited reply.
                future = self._fifo.popleft()
                if not future.done():
                    future.set_exception(ProtocolError(event.message))
                if not event.recoverable:
                    raise ProtocolError(event.message)
                return
            raise ProtocolError(event.message)
        # Anything else (locate traffic initiated elsewhere) is ignored.

    @staticmethod
    def _resolve(future, reply):
        if not future.done():  # awaiter may have been cancelled
            future.set_result(reply)

    def _fail_pending(self, exc):
        pending = list(self._pending.values())
        self._pending.clear()
        pending.extend(self._fifo)
        self._fifo.clear()
        for future in pending:
            if not future.done():
                future.set_exception(exc)

    async def close(self):
        if self._closed:
            return
        self._closed = True
        if self._flight is not None:
            self._flight.disarm()  # orderly close leaves no bundle
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        try:
            self._writer.close()
        except Exception:
            pass
        self._fail_pending(CommunicationError(
            "connection is closed", kind="channel-closed"
        ))


register_transport("aio", AioTransport)

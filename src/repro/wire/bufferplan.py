"""Scatter-gather emission buffers: the BufferPlan and its pools.

Every emission path in the ORB — the three wire machines, the CDR
marshaller, the blocking pumps and the asyncio writer — used to build
each frame by concatenating ``bytes``: list-joins, ``+`` on header and
body, one contiguous allocation per message.  A :class:`BufferPlan` is
the replacement: an ordered sequence of segments that a transport can
flush with ``socket.sendmsg`` / ``StreamWriter.writelines`` without
ever copying them into one buffer.

Ownership rules (the whole point of the abstraction):

- **Owned** segments are mutable ``bytearray`` scratch, usually leased
  from the :class:`BufferPool`.  The plan is their only holder; once
  the frame has been fully flushed (and every observer hook has taken
  its own copy) the flusher calls :meth:`BufferPlan.recycle` and they
  go back to the pool.  Nothing else may retain a reference.
- **Borrowed** segments are immutable ``bytes`` (or read-only
  ``memoryview`` fragments of them) shared with a longer-lived owner —
  an interned frame in the :class:`FrameInternCache`, a memoized
  request tail on a :class:`~repro.heidirmi.call.Call`.  The plan may
  read them but never mutates or recycles them; the owner's cache
  eviction is the only invalidation.

A plan also quacks like ``bytes`` (length, slicing, comparison,
``bytes()`` conversion) so the sans-I/O conformance suite — and any
sink that predates plans — sees exactly the frame the segments spell.
``to_bytes()`` joins lazily and caches; ``copied_bytes`` reports how
many of the frame's bytes were freshly rendered this emission (owned)
versus borrowed zero-copy, which is what the ``--wire-cost`` benchmark
charts.
"""

import threading


class BufferPlan:
    """An ordered sequence of owned and borrowed frame segments."""

    __slots__ = ("_segments", "_owned", "_length", "_joined")

    def __init__(self):
        self._segments = []
        self._owned = []
        self._length = 0
        self._joined = None

    # -- assembly ----------------------------------------------------------

    def append_owned(self, segment):
        """Append a mutable segment the plan owns (recycled after flush)."""
        self._segments.append(segment)
        self._owned.append(segment)
        self._length += len(segment)
        self._joined = None
        return self

    def append_borrowed(self, segment):
        """Append an immutable shared segment (never recycled here)."""
        self._segments.append(segment)
        self._length += len(segment)
        self._joined = None
        return self

    # -- flushing ----------------------------------------------------------

    def segments(self):
        """The segment list, in wire order, for sendmsg/writelines."""
        return self._segments

    @property
    def copied_bytes(self):
        """Bytes rendered fresh for this emission (owned segments)."""
        return sum(len(segment) for segment in self._owned)

    def recycle(self, pool=None):
        """Return owned segments to *pool* once the frame is flushed.

        Only the flusher may call this, and only after every hook that
        saw the plan has taken its own copy; afterwards the plan keeps
        answering length/equality questions from its cached join but no
        longer holds any segment.
        """
        if pool is None:
            pool = SEND_POOL
        owned, self._owned = self._owned, []
        self._segments = []
        for segment in owned:
            pool.release(segment)

    # -- bytes-likeness ----------------------------------------------------

    def to_bytes(self):
        """The contiguous frame (joined lazily, cached)."""
        joined = self._joined
        if joined is None:
            joined = b"".join(bytes(s) if type(s) is not bytes else s
                              for s in self._segments)
            self._joined = joined
        return joined

    def __bytes__(self):
        return self.to_bytes()

    def __len__(self):
        return self._length

    def __iter__(self):
        return iter(self.to_bytes())

    def __getitem__(self, index):
        return self.to_bytes()[index]

    def __add__(self, other):
        return self.to_bytes() + other

    def __radd__(self, other):
        return other + self.to_bytes()

    def __eq__(self, other):
        if isinstance(other, BufferPlan):
            return self.to_bytes() == other.to_bytes()
        if isinstance(other, (bytes, bytearray, memoryview)):
            return self.to_bytes() == other
        return NotImplemented

    def __hash__(self):
        return hash(self.to_bytes())

    def __repr__(self):
        return (f"BufferPlan(segments={len(self._segments)}, "
                f"length={self._length})")


class BufferPool:
    """A bounded free list of reusable ``bytearray`` send segments.

    Emitters lease scratch with :meth:`acquire`, hand it to a plan as
    an owned segment, and the flusher's :meth:`BufferPlan.recycle`
    brings it back.  Buffers keep their grown capacity across reuses,
    so steady-state emission allocates nothing.
    """

    def __init__(self, max_buffers=64):
        self._lock = threading.Lock()
        self._free = []  # guarded-by: self._lock
        self._max_buffers = max_buffers
        self._acquired = 0  # guarded-by: self._lock
        self._reused = 0  # guarded-by: self._lock
        self._evicted = 0  # guarded-by: self._lock

    def acquire(self):
        """Lease an empty ``bytearray`` (recycled capacity if any)."""
        with self._lock:
            self._acquired += 1
            if self._free:
                self._reused += 1
                buffer = self._free.pop()
                del buffer[:]
                return buffer
        return bytearray()

    def release(self, buffer):
        """Return a leased buffer; beyond the cap it is dropped."""
        with self._lock:
            if len(self._free) >= self._max_buffers:
                self._evicted += 1
                return
            self._free.append(buffer)

    def stats(self):
        """Pool counters for the monitor object and Prometheus."""
        with self._lock:
            return {
                "size": len(self._free),
                "hits": self._reused,
                "misses": self._acquired - self._reused,
                "evictions": self._evicted,
            }


class FrameInternCache:
    """Interned fully-marshalled frames for repeated call shapes.

    The GIOP emitter pays CDR encoding once per distinct
    ``(target, operation, oneway, marshalled-args, byte-order)`` key;
    repeats borrow the cached immutable frame and patch only the
    request id into a fresh owned prefix.  Insertion past the capacity
    evicts the oldest entry (insertion order), which is the only
    invalidation interned frames need — they are pure functions of
    their key.
    """

    def __init__(self, max_entries=256):
        self._lock = threading.Lock()
        self._frames = {}  # guarded-by: self._lock
        self._max_entries = max_entries
        self._hits = 0  # guarded-by: self._lock
        self._misses = 0  # guarded-by: self._lock
        self._evicted = 0  # guarded-by: self._lock

    def get(self, key):
        """The interned frame for *key*, or ``None`` on a miss."""
        with self._lock:
            frame = self._frames.get(key)
            if frame is None:
                self._misses += 1
            else:
                self._hits += 1
            return frame

    def put(self, key, frame):
        """Intern *frame* (immutable ``bytes``) under *key*."""
        with self._lock:
            if key not in self._frames and \
                    len(self._frames) >= self._max_entries:
                self._frames.pop(next(iter(self._frames)))
                self._evicted += 1
            self._frames[key] = frame

    def clear(self):
        with self._lock:
            self._frames.clear()

    def stats(self):
        """Cache counters for the monitor object and Prometheus."""
        with self._lock:
            return {
                "size": len(self._frames),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evicted,
            }


#: The process-wide send-segment pool every emitter leases from.
SEND_POOL = BufferPool()

#: The process-wide interned-frame cache the GIOP emitter consults.
FRAME_CACHE = FrameInternCache()


def wire_buffer_stats():
    """Pool + intern-cache counters, as surfaced by ``ORBMonitor.health``."""
    return {
        "send_pool": SEND_POOL.stats(),
        "frame_cache": FRAME_CACHE.stats(),
    }

"""Shared wire-header tokens: trace context and deadline.

Before the sans-I/O refactor the ``ctx=``/``dl=`` parse and emit code
was duplicated between the text and text2 protocols (and the same
millisecond-budget validation re-implemented a third time for GIOP's
deadline ServiceContext), and the copies had started to drift.  This
module is now the only place that knows the token grammar:

- ``ctx=<trace_id-span_id>`` — the propagated trace context (see
  ``repro.observe.context``); pure hex-and-dash ASCII, needs no
  escaping.
- ``dl=<ms>`` — the call's *remaining budget* in whole milliseconds, a
  relative quantity needing no clock synchronisation; the receiver
  re-anchors it on its own monotonic clock at parse time.

Both tokens sit between the verb (and request id) and the ``@``-target;
a stringified object reference always starts with ``@``, so the scan is
unambiguous and the tokens compose in either order.  GIOP carries the
same two values as ServiceContext entries ("HDTC"/"HDDL") whose bodies
reuse the validation here.

The overload-shed reply adds a third token, ``ra=<ms>``: the server's
*retry-after* hint, whole milliseconds, leading the message of a typed
``Overloaded`` error reply (``RET ERR Overloaded`` / ``RET2 <id> ERR
Overloaded``).  The hint rides *inside* the message string — one
escaped token on the wire — so the reply grammar of all three
protocols is untouched; GIOP carries the same value as a ServiceContext
entry ("HDRA") on its TRANSIENT system-exception reply.  Peers that
don't recognise the prefix see a human-readable message.
"""

from time import monotonic

from repro.heidirmi.errors import ProtocolError
from repro.resilience.deadline import Deadline

#: Prefix of the optional trace-context header token.
CTX_PREFIX = "ctx="

#: Prefix of the optional deadline header token.
DL_PREFIX = "dl="

_CTX_LEN = len(CTX_PREFIX)
_DL_LEN = len(DL_PREFIX)

# Single-entry parse memo for the deadline token.  A server under a
# default-deadline client sees the same full-budget token (e.g.
# ``dl=30000``) on every first attempt, so remembering the last
# (token, seconds) pair skips the slice/int/validate work on the read
# loop's hot path.  Benign under races: worst case a thread re-parses.
_DL_MEMO = ("", 0.0)


def deadline_from_ms(ms):
    """A received whole-millisecond budget → re-anchored Deadline."""
    if ms < 0:
        raise ProtocolError(f"negative deadline {ms}ms")
    return Deadline.after(ms / 1000.0)


def parse_deadline_token(token):
    """``dl=<ms>`` → a receiver-side re-anchored Deadline."""
    try:
        ms = int(token[len(DL_PREFIX):])
    except ValueError:
        raise ProtocolError(f"bad deadline token {token!r}") from None
    return deadline_from_ms(ms)


def parse_deadline_context(data):
    """A GIOP deadline ServiceContext body (ASCII ms) → Deadline."""
    try:
        ms = int(data.decode("ascii"))
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(
            f"bad deadline service context {data!r}"
        ) from None
    return deadline_from_ms(ms)


def scan_header_tokens(tokens, head):
    """Consume optional ``ctx=``/``dl=`` tokens starting at *head*.

    Returns ``(trace_context, deadline, head)`` with *head* advanced
    past every header token (they are accepted in either order).
    Raises :class:`ProtocolError` on a malformed deadline token.
    """
    trace_context = None
    deadline = None
    while len(tokens) > head:
        token = tokens[head]
        if token[0] == "@":
            # A stringified object reference always starts with ``@``
            # and always terminates the (maybe empty) header run: one
            # char compare ends the scan instead of two prefix tests.
            break
        if token.startswith(DL_PREFIX):
            # Inlined parse_deadline_token/deadline_from_ms: this runs
            # once per deadlined request on the server's read loop.
            global _DL_MEMO
            memo_token, seconds = _DL_MEMO
            if token != memo_token:
                try:
                    ms = int(token[_DL_LEN:])
                except ValueError:
                    raise ProtocolError(
                        f"bad deadline token {token!r}"
                    ) from None
                if ms < 0:
                    raise ProtocolError(f"negative deadline {ms}ms")
                seconds = ms / 1000.0
                _DL_MEMO = (token, seconds)
            deadline = Deadline(monotonic() + seconds, seconds)
        elif token.startswith(CTX_PREFIX):
            trace_context = token[_CTX_LEN:]
        else:
            break
        head += 1
    return trace_context, deadline, head


def header_tokens(call):
    """The ``ctx=``/``dl=`` emission pieces for *call* (maybe empty)."""
    pieces = []
    if call.trace_context is not None:
        pieces.append(CTX_PREFIX + call.trace_context)
    deadline = call.deadline
    if deadline is not None:
        pieces.append(DL_PREFIX + str(deadline.remaining_ms()))
    return pieces


def trace_context_data(trace_context):
    """The GIOP trace ServiceContext body for a context token."""
    return trace_context.encode("ascii", errors="replace")


def deadline_context_data(deadline):
    """The GIOP deadline ServiceContext body for a Deadline."""
    return str(deadline.remaining_ms()).encode("ascii")


# -- retry-after (overloaded-reply) grammar ---------------------------------

#: Prefix of the retry-after hint leading an ``Overloaded`` error
#: reply's message (``ra=<ms>``, whole milliseconds).
RA_PREFIX = "ra="

#: The ERR category of a typed overload-shed reply, shared by all
#: three protocols' reply decode paths (GIOP translates its TRANSIENT
#: system exception back to this category).
OVERLOADED_CATEGORY = "Overloaded"

_RA_LEN = len(RA_PREFIX)


def overload_message(retry_after, text):
    """Render an overloaded-reply message, hint first.

    *retry_after* is seconds (None omits the hint); the wire carries
    whole milliseconds, floored to at least 1ms so a sub-millisecond
    hint survives the round trip as a nonzero backoff floor.
    """
    if retry_after is None:
        return text
    ms = max(1, int(retry_after * 1000.0))
    return f"{RA_PREFIX}{ms} {text}"


def parse_overload_message(message):
    """``"ra=<ms> <text>"`` → ``(retry_after_seconds, text)``.

    Returns ``(None, message)`` when no well-formed hint leads the
    message — a hintless shed is legal, and a mangled hint degrades to
    prose rather than a protocol error (the reply already parsed).
    """
    if not message.startswith(RA_PREFIX):
        return None, message
    head, _, rest = message.partition(" ")
    try:
        ms = int(head[_RA_LEN:])
    except ValueError:
        return None, message
    if ms < 0:
        return None, message
    return ms / 1000.0, rest


def retry_after_context_data(retry_after):
    """The GIOP retry-after ServiceContext body (ASCII whole ms)."""
    return str(max(1, int(retry_after * 1000.0))).encode("ascii")


def parse_retry_after_context(data):
    """A GIOP retry-after ServiceContext body → seconds (None if bad)."""
    try:
        ms = int(data.decode("ascii"))
    except (UnicodeDecodeError, ValueError):
        return None
    return ms / 1000.0 if ms >= 0 else None

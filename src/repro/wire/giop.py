"""Sans-I/O state machine for GIOP 1.0.

Framing (the 12-byte header + exact-size body), message parsing, and
message emission for the GIOP/IIOP path — pure bytes in, events out.
The blocking :class:`repro.giop.iiop.GiopProtocol` and the asyncio
front-end both pump this machine; neither re-implements any framing.

Role rules (what counts as a violation mirrors the pre-refactor
blocking code exactly, message text included):

==================  =======================  =======================
message type        client-role machine      server-role machine
==================  =======================  =======================
Request (0)         violation                RequestReceived
Reply (1)           ReplyReceived            violation
CancelRequest (2)   violation                CancelReceived
LocateRequest (3)   violation                LocateRequested
LocateReply (4)     LocateReplied            violation
CloseConnection(5)  CloseReceived            CloseReceived
MessageError (6)    violation                violation
==================  =======================  =======================
"""

import struct

from repro.giop.cdrmarshal import CdrMarshallerView, CdrUnmarshaller
from repro.giop.cdr import CdrDecoder, CdrEncoder
from repro.giop.messages import (
    GIOP_HEADER_SIZE,
    fill_giop_header,
    MSG_CANCEL_REQUEST,
    MSG_CLOSE_CONNECTION,
    MSG_LOCATE_REPLY,
    MSG_LOCATE_REQUEST,
    MSG_REPLY,
    MSG_REQUEST,
    REPLY_NO_EXCEPTION,
    REPLY_SYSTEM_EXCEPTION,
    REPLY_USER_EXCEPTION,
    SERVICE_CONTEXT_DEADLINE,
    SERVICE_CONTEXT_RETRY_AFTER,
    SERVICE_CONTEXT_TRACE,
    LocateReplyHeader,
    LocateRequestHeader,
    MessageHeader,
    ReplyHeader,
    RequestHeader,
    ServiceContext,
    frame_message,
)
from repro.heidirmi.call import (
    STATUS_ERROR,
    STATUS_EXCEPTION,
    STATUS_OK,
    Call,
    Reply,
)
from repro.heidirmi.errors import MarshalError, ProtocolError
from repro.wire import headers
from repro.wire.bufferplan import FRAME_CACHE, SEND_POOL, BufferPlan
from repro.wire.events import (
    NEED_DATA,
    CancelReceived,
    CloseReceived,
    LocateReplied,
    LocateRequested,
    ReplyReceived,
    RequestReceived,
    WireViolation,
)
from repro.wire.machine import CLIENT, WireMachine

#: A body beyond this is an attack or a bug (same cap as read_message).
MAX_MESSAGE_SIZE = 1 << 24

_STATUS_TO_GIOP = {
    STATUS_OK: REPLY_NO_EXCEPTION,
    STATUS_EXCEPTION: REPLY_USER_EXCEPTION,
    STATUS_ERROR: REPLY_SYSTEM_EXCEPTION,
}
_GIOP_TO_STATUS = {value: key for key, value in _STATUS_TO_GIOP.items()}

#: The CORBA spelling of an admission shed: a TRANSIENT system
#: exception ("the request was not delivered, retrying may succeed").
#: GIOP emission translates the cross-protocol ``Overloaded`` error
#: category to this repository id (plus an HDRA retry-after
#: ServiceContext); decode translates it back, so stubs and the
#: resilient engine see one category on every protocol.
TRANSIENT_REPO_ID = "IDL:omg.org/CORBA/TRANSIENT:1.0"


# ---------------------------------------------------------------------------
# Emission: pure Call/Reply -> framed BufferPlan
# ---------------------------------------------------------------------------

#: The reserved gap a pooled frame starts with; the real header is
#: patched in place once the body length is known.
_HEADER_GAP = bytes(GIOP_HEADER_SIZE)

#: Byte offset of the Request/Reply header's request id when the
#: service-context sequence is empty: 12-byte GIOP header, then the
#: ulong context count.  Interned frames are split just past the id so
#: repeats patch a fresh 20-byte prefix and borrow the immutable rest.
_REQUEST_ID_OFFSET = GIOP_HEADER_SIZE + 4
_INTERN_SPLIT = _REQUEST_ID_OFFSET + 4


def _framed_plan(message_type, build_body):
    """One pooled owned segment: header gap, CDR body, patched header."""
    frame = SEND_POOL.acquire()
    frame += _HEADER_GAP
    build_body(CdrEncoder(buffer=frame))
    fill_giop_header(frame, message_type)
    return BufferPlan().append_owned(frame)


def _interned_plan(key, message_type, request_id, build_body):
    """A plan over the interned frame for *key*, request id patched.

    The cache stores each frame split at :data:`_INTERN_SPLIT`: repeats
    copy only the 20-byte prefix into a pooled segment, overwrite the
    request id in place, and borrow the cached immutable tail — the
    body is never re-encoded or re-copied.  Only valid for frames with
    no service contexts (the id offset is fixed) emitted in the
    encoder's native little-endian order.
    """
    entry = FRAME_CACHE.get(key)
    if entry is None:
        frame = SEND_POOL.acquire()
        frame += _HEADER_GAP
        build_body(CdrEncoder(buffer=frame))
        fill_giop_header(frame, message_type)
        entry = (bytes(memoryview(frame)[:_INTERN_SPLIT]),
                 bytes(memoryview(frame)[_INTERN_SPLIT:]))
        SEND_POOL.release(frame)
        FRAME_CACHE.put(key, entry)
    head, tail = entry
    # The prefix is 20 bytes: a direct bytearray copy beats a pool
    # round-trip (two lock acquisitions) at this size.  It is still an
    # owned segment — recycle() feeds it back to the pool as scratch.
    prefix = bytearray(head)
    struct.pack_into("<I", prefix, _REQUEST_ID_OFFSET, request_id)
    return BufferPlan().append_owned(prefix).append_borrowed(tail)


def _intern_key(kind, marshalled, *shape):
    """An intern key, or ``None`` when the call shape is uncacheable.

    *marshalled* must be a recording marshaller whose operations are
    all hashable — a mutable argument (e.g. a ``bytearray`` payload)
    makes the shape unhashable and the frame uninternable, which is
    also what keeps later caller mutations from reaching a cached
    frame.
    """
    operations = getattr(marshalled, "_operations", None)
    if operations is None:
        return None
    key = (kind, *shape, tuple(operations))
    try:
        hash(key)
    except TypeError:
        return None
    return key


def _encode_request_body(encoder, call, service_context):
    RequestHeader(
        request_id=call.request_id,
        object_key=call.target.encode("utf-8"),
        operation=call.operation,
        response_expected=not call.oneway,
        service_context=service_context,
    ).encode(encoder)
    call.replay_into(CdrMarshallerView(encoder))


def _encode_reply_body(encoder, reply, repo_id, request_id, service_context):
    ReplyHeader(
        request_id=request_id,
        reply_status=_STATUS_TO_GIOP[reply.status],
        service_context=service_context,
    ).encode(encoder)
    if reply.status in (STATUS_EXCEPTION, STATUS_ERROR):
        # CORBA: the exception body leads with its repository ID.
        encoder.string(repo_id)
    reply.replay_into(CdrMarshallerView(encoder))


def encode_request(call):
    """A framed GIOP Request plan for *call* (request_id must be set
    for two-ways; GIOP frames an id on oneways too, so any id works
    there)."""
    request_id = call.request_id
    if request_id is None:
        raise ProtocolError("GIOP request needs a request id")
    if call.trace_context is None and call.deadline is None:
        # No service contexts → fixed id offset → internable.
        key = _intern_key("request", call._m, call.target, call.operation,
                          call.oneway)
        if key is not None:
            return _interned_plan(
                key, MSG_REQUEST, request_id,
                lambda encoder: _encode_request_body(encoder, call, []),
            )
    service_context = []
    if call.trace_context is not None:
        # GIOP's native extension point: the trace context travels
        # as a ServiceContext entry, which unaware peers skip.
        service_context.append(ServiceContext(
            SERVICE_CONTEXT_TRACE,
            headers.trace_context_data(call.trace_context),
        ))
    if call.deadline is not None:
        # Remaining budget in ms, same relative quantity as the
        # text protocols' dl= token (see SERVICE_CONTEXT_DEADLINE).
        service_context.append(ServiceContext(
            SERVICE_CONTEXT_DEADLINE,
            headers.deadline_context_data(call.deadline),
        ))
    return _framed_plan(
        MSG_REQUEST,
        lambda encoder: _encode_request_body(encoder, call, service_context),
    )


def encode_reply(reply, request_id=None):
    """A framed GIOP Reply plan echoing *request_id* (default: the
    reply's)."""
    if request_id is None:
        request_id = reply.request_id
    if request_id is None:
        request_id = 0
    repo_id = reply.repo_id
    service_context = []
    if repo_id == headers.OVERLOADED_CATEGORY and reply.status == STATUS_ERROR:
        repo_id = TRANSIENT_REPO_ID
        retry_after = getattr(reply, "retry_after", None)
        if retry_after is not None:
            service_context.append(ServiceContext(
                SERVICE_CONTEXT_RETRY_AFTER,
                headers.retry_after_context_data(retry_after),
            ))
    if not service_context:
        key = _intern_key("reply", reply._m, reply.status, repo_id)
        if key is not None:
            return _interned_plan(
                key, MSG_REPLY, request_id,
                lambda encoder: _encode_reply_body(
                    encoder, reply, repo_id, request_id, []),
            )
    return _framed_plan(
        MSG_REPLY,
        lambda encoder: _encode_reply_body(
            encoder, reply, repo_id, request_id, service_context),
    )


def encode_locate_request(request_id, object_key):
    encoder = CdrEncoder(start_align=GIOP_HEADER_SIZE)
    LocateRequestHeader(
        request_id=request_id, object_key=object_key
    ).encode(encoder)
    return frame_message(MSG_LOCATE_REQUEST, encoder.data())


def encode_locate_reply(request_id, locate_status):
    encoder = CdrEncoder(start_align=GIOP_HEADER_SIZE)
    LocateReplyHeader(
        request_id=request_id, locate_status=locate_status
    ).encode(encoder)
    return frame_message(MSG_LOCATE_REPLY, encoder.data())


#: CloseConnection has no body, so the frame is a 12-byte constant.
_CLOSE_FRAME = frame_message(MSG_CLOSE_CONNECTION, b"")


def encode_close():
    return _CLOSE_FRAME


# ---------------------------------------------------------------------------
# The machine
# ---------------------------------------------------------------------------


class GiopWire(WireMachine):
    """GIOP 1.0 framing and message parsing as a pure state machine.

    ``multiplexed=False`` arms the serial-reply check: after an
    ``emit_request`` the next Reply must echo that id (the classic
    one-call-in-flight client).  Multiplexed users correlate by
    ``reply.request_id`` themselves, so the check relaxes.  The
    blocking adapter keeps its own per-channel check for compatibility
    and builds machines with ``multiplexed=True``.
    """

    protocol_name = "giop"

    def __init__(self, role, multiplexed=True):
        super().__init__(role)
        self.multiplexed = multiplexed
        #: Serial clients: the id the next Reply must echo.
        self.expected_reply_id = None
        #: Server role: the id of the last parsed Request — the id an
        #: id-less emit_reply echoes (serial servers only; pipelined
        #: servers set reply.request_id explicitly).
        self.pending_reply_id = 0
        self._header = None  # parsed MessageHeader awaiting its body

    def read_hint(self):
        if self._header is None:
            return ("exact", GIOP_HEADER_SIZE - self._available())
        return ("exact", self._header.message_size - self._available())

    def _parse_one(self):
        if self._header is None:
            if self._available() < GIOP_HEADER_SIZE:
                return NEED_DATA
            header_bytes = self._consume(GIOP_HEADER_SIZE)
            try:
                header = MessageHeader.decode(header_bytes)
            except ProtocolError as exc:
                # The 12 bad bytes are consumed; whatever follows is
                # re-read as a fresh header (mirrors the blocking
                # reader, whose ProtocolError left the next bytes
                # unread in the channel).
                return WireViolation(str(exc))
            if header.message_size > MAX_MESSAGE_SIZE:
                return WireViolation(
                    f"implausible GIOP message size {header.message_size}"
                )
            self._header = header
        if self._available() < self._header.message_size:
            return NEED_DATA
        header, self._header = self._header, None
        body = self._consume(header.message_size)
        try:
            return self._parse_message(header, body)
        except (ProtocolError, MarshalError) as exc:
            # The whole message was consumed, so the stream stays
            # aligned; the driver may report and continue.
            return WireViolation(str(exc))

    def feed_message(self, header, body, raw_header=None):
        """One already-framed message → event (exact-read fast path).

        A blocking pump that performed the header and body reads
        itself hands the parts straight to the parser, skipping the
        buffer round-trip :meth:`feed_frame` would pay.  All state
        rules (role table, serial checks, pending ids) still apply.
        Only valid while nothing is buffered in the machine.

        *raw_header* is the 12 header bytes as read off the wire; a
        pump driving a tapped machine passes them so the flight record
        holds the replayable full frame (header + body).
        """
        try:
            event = self._parse_message(header, body)
        except (ProtocolError, MarshalError) as exc:
            event = WireViolation(str(exc))
        if self.tap is not None and raw_header is not None:
            record = bytearray(raw_header)
            record += body
            self.tap.record_in(record, event, self.role)
        return event

    def _unexpected(self, message_type):
        expected = "GIOP Reply" if self.role == CLIENT else "GIOP Request"
        return WireViolation(
            f"expected {expected}, got message type {message_type}"
        )

    def _parse_message(self, header, body):
        message_type = header.message_type
        if message_type == MSG_CLOSE_CONNECTION:
            return CloseReceived()
        if self.role == CLIENT:
            if message_type == MSG_REPLY:
                return self._parse_reply(header, body)
            if message_type == MSG_LOCATE_REPLY:
                decoder = self._body_decoder(header, body)
                locate = LocateReplyHeader.decode(decoder)
                return LocateReplied(locate.request_id, locate.locate_status)
            return self._unexpected(message_type)
        if message_type == MSG_REQUEST:
            return self._parse_request(header, body)
        if message_type == MSG_LOCATE_REQUEST:
            decoder = self._body_decoder(header, body)
            locate = LocateRequestHeader.decode(decoder)
            return LocateRequested(locate.request_id, locate.object_key)
        if message_type == MSG_CANCEL_REQUEST:
            # Body ignored: upcalls here are synchronous, there is
            # nothing in flight to cancel.
            return CancelReceived()
        return self._unexpected(message_type)

    @staticmethod
    def _body_decoder(header, body):
        return CdrDecoder(
            body, little_endian=header.little_endian,
            start_align=GIOP_HEADER_SIZE,
        )

    def _parse_request(self, header, body):
        decoder = self._body_decoder(header, body)
        request = RequestHeader.decode(decoder)
        call = Call(
            request.object_key.decode("utf-8"),
            request.operation,
            unmarshaller=CdrUnmarshaller(decoder),
            oneway=not request.response_expected,
            request_id=request.request_id,
        )
        call._giop_request_id = request.request_id
        for context in request.service_context:
            if context.context_id == SERVICE_CONTEXT_TRACE:
                call.trace_context = context.context_data.decode(
                    "ascii", errors="replace"
                )
            elif context.context_id == SERVICE_CONTEXT_DEADLINE:
                call.deadline = headers.parse_deadline_context(
                    context.context_data
                )
        # The reply to this request must echo its id; serial drivers
        # reply without call context, so remember it here.
        self.pending_reply_id = request.request_id
        return RequestReceived(call)

    def _parse_reply(self, header, body):
        decoder = self._body_decoder(header, body)
        reply_header = ReplyHeader.decode(decoder)
        if not self.multiplexed:
            expected = self.expected_reply_id
            if expected is not None and reply_header.request_id != expected:
                raise ProtocolError(
                    f"reply for request {reply_header.request_id}, "
                    f"expected {expected}"
                )
        status = _GIOP_TO_STATUS.get(reply_header.reply_status)
        if status is None:
            raise ProtocolError(
                f"unsupported reply status {reply_header.reply_status}"
            )
        repo_id = ""
        if status in (STATUS_EXCEPTION, STATUS_ERROR):
            repo_id = decoder.string()
        reply = Reply(
            status=status,
            repo_id=repo_id,
            unmarshaller=CdrUnmarshaller(decoder),
            request_id=reply_header.request_id,
        )
        if repo_id == TRANSIENT_REPO_ID:
            # Translate the CORBA shed spelling back to the shared
            # category; the retry-after hint rides the HDRA context.
            reply.repo_id = headers.OVERLOADED_CATEGORY
            for context in reply_header.service_context:
                if context.context_id == SERVICE_CONTEXT_RETRY_AFTER:
                    reply.retry_after = headers.parse_retry_after_context(
                        context.context_data
                    )
        return ReplyReceived(reply)

    # -- emission ----------------------------------------------------------

    def emit_request(self, call):
        data = encode_request(call)
        if not self.multiplexed:
            # Serial (one-call-in-flight) clients verify the next reply
            # against this; a demultiplexing driver correlates by
            # reply.request_id instead, and many ids are in flight.
            self.expected_reply_id = call.request_id
        return data

    def emit_reply(self, reply, request_id=None):
        if request_id is None:
            request_id = reply.request_id
        if request_id is None:
            request_id = self.pending_reply_id
        return encode_reply(reply, request_id=request_id)

    def emit_locate_request(self, request_id, object_key):
        return encode_locate_request(request_id, object_key)

    def emit_locate_reply(self, request_id, locate_status):
        return encode_locate_reply(request_id, locate_status)

    def emit_close(self):
        return encode_close()

"""GIOP 1.0 message formats.

Every GIOP message starts with the 12-byte message header::

    char[4] magic = "GIOP"
    octet   version_major, version_minor   (1, 0)
    octet   byte_order                     (1 = little endian)
    octet   message_type
    ulong   message_size                   (bytes following the header)

Request and Reply headers follow the OMG 1.0 layout, including the
service-context sequence and (for requests) the requesting principal.
"""

import struct
from dataclasses import dataclass, field

from repro.giop.cdr import CdrDecoder, CdrEncoder
from repro.heidirmi.errors import ProtocolError

GIOP_MAGIC = b"GIOP"
GIOP_HEADER_SIZE = 12

#: ServiceContext id carrying the HeidiRMI trace context ("HDTC"):
#: context_data is the ASCII ``trace_id-span_id`` token used by the
#: text protocols' ``ctx=`` header field.  Peers that don't recognise
#: the id skip the entry, as the CORBA spec requires, so traced and
#: untraced ORBs interoperate.
SERVICE_CONTEXT_TRACE = 0x48445443

#: ServiceContext id carrying the HeidiRMI call deadline ("HDDL"):
#: context_data is the *remaining budget* in whole milliseconds as an
#: ASCII decimal string — the same relative quantity as the text
#: protocols' ``dl=`` header token, needing no clock synchronisation.
#: The server re-anchors it on its own monotonic clock at decode time;
#: unaware peers skip the entry.
SERVICE_CONTEXT_DEADLINE = 0x4844444C

#: ServiceContext id carrying the overload retry-after hint ("HDRA"):
#: context_data is the hint in whole milliseconds as an ASCII decimal
#: string, riding a TRANSIENT system-exception reply — the same value
#: the text protocols lead the ``Overloaded`` error message with
#: (``ra=`` token).  Unaware peers skip the entry and still see a
#: standard TRANSIENT.
SERVICE_CONTEXT_RETRY_AFTER = 0x48445241

MSG_REQUEST = 0
MSG_REPLY = 1
MSG_CANCEL_REQUEST = 2
MSG_LOCATE_REQUEST = 3
MSG_LOCATE_REPLY = 4
MSG_CLOSE_CONNECTION = 5
MSG_MESSAGE_ERROR = 6

# ReplyHeader.reply_status values.
REPLY_NO_EXCEPTION = 0
REPLY_USER_EXCEPTION = 1
REPLY_SYSTEM_EXCEPTION = 2
REPLY_LOCATION_FORWARD = 3

# LocateReplyHeader.locate_status values.
LOCATE_UNKNOWN_OBJECT = 0
LOCATE_OBJECT_HERE = 1
LOCATE_OBJECT_FORWARD = 2


@dataclass
class MessageHeader:
    message_type: int
    message_size: int
    little_endian: bool = True
    version: tuple = (1, 0)

    def encode(self):
        encoder = CdrEncoder(little_endian=self.little_endian)
        encoder.raw(GIOP_MAGIC)
        encoder.octet(self.version[0])
        encoder.octet(self.version[1])
        encoder.octet(1 if self.little_endian else 0)
        encoder.octet(self.message_type)
        encoder.ulong(self.message_size)
        return encoder.data()

    @classmethod
    def decode(cls, data):
        if len(data) < GIOP_HEADER_SIZE:
            raise ProtocolError("short GIOP header")
        if bytes(data[:4]) != GIOP_MAGIC:
            raise ProtocolError(f"bad GIOP magic {bytes(data[:4])!r}")
        major, minor = data[4], data[5]
        if (major, minor) != (1, 0):
            raise ProtocolError(f"unsupported GIOP version {major}.{minor}")
        little_endian = data[6] == 1
        message_type = data[7]
        if message_type > MSG_MESSAGE_ERROR:
            raise ProtocolError(f"unknown GIOP message type {message_type}")
        decoder = CdrDecoder(data[8:12], little_endian=little_endian)
        message_size = decoder.ulong()
        return cls(
            message_type=message_type,
            message_size=message_size,
            little_endian=little_endian,
            version=(major, minor),
        )


@dataclass
class ServiceContext:
    context_id: int
    context_data: bytes = b""


def _encode_service_contexts(encoder, contexts):
    encoder.ulong(len(contexts))
    for context in contexts:
        encoder.ulong(context.context_id)
        encoder.octets(context.context_data)


def _decode_service_contexts(decoder):
    count = decoder.ulong()
    if count > 1024:
        raise ProtocolError(f"implausible service-context count {count}")
    return [
        ServiceContext(context_id=decoder.ulong(), context_data=decoder.octets())
        for _ in range(count)
    ]


@dataclass
class RequestHeader:
    """GIOP 1.0 RequestHeader."""

    request_id: int
    object_key: bytes
    operation: str
    response_expected: bool = True
    service_context: list = field(default_factory=list)
    requesting_principal: bytes = b""

    def encode(self, encoder):
        _encode_service_contexts(encoder, self.service_context)
        encoder.ulong(self.request_id)
        encoder.boolean(self.response_expected)
        encoder.octets(self.object_key)
        encoder.string(self.operation)
        encoder.octets(self.requesting_principal)

    @classmethod
    def decode(cls, decoder):
        service_context = _decode_service_contexts(decoder)
        return cls(
            service_context=service_context,
            request_id=decoder.ulong(),
            response_expected=decoder.boolean(),
            object_key=decoder.octets(),
            operation=decoder.string(),
            requesting_principal=decoder.octets(),
        )


@dataclass
class ReplyHeader:
    """GIOP 1.0 ReplyHeader."""

    request_id: int
    reply_status: int
    service_context: list = field(default_factory=list)

    def encode(self, encoder):
        _encode_service_contexts(encoder, self.service_context)
        encoder.ulong(self.request_id)
        encoder.ulong(self.reply_status)

    @classmethod
    def decode(cls, decoder):
        service_context = _decode_service_contexts(decoder)
        request_id = decoder.ulong()
        reply_status = decoder.ulong()
        if reply_status > REPLY_LOCATION_FORWARD:
            raise ProtocolError(f"unknown reply status {reply_status}")
        return cls(
            service_context=service_context,
            request_id=request_id,
            reply_status=reply_status,
        )


@dataclass
class LocateRequestHeader:
    request_id: int
    object_key: bytes

    def encode(self, encoder):
        encoder.ulong(self.request_id)
        encoder.octets(self.object_key)

    @classmethod
    def decode(cls, decoder):
        return cls(request_id=decoder.ulong(), object_key=decoder.octets())


@dataclass
class LocateReplyHeader:
    request_id: int
    locate_status: int

    def encode(self, encoder):
        encoder.ulong(self.request_id)
        encoder.ulong(self.locate_status)

    @classmethod
    def decode(cls, decoder):
        header = cls(request_id=decoder.ulong(), locate_status=decoder.ulong())
        if header.locate_status > LOCATE_OBJECT_FORWARD:
            raise ProtocolError(f"unknown locate status {header.locate_status}")
        return header


def frame_message(message_type, body, little_endian=True):
    """A complete GIOP message as contiguous bytes.

    Convenience for tests and cold paths; the hot emitters reserve a
    header gap in a pooled buffer and :func:`fill_giop_header` it in
    place instead of paying this join.
    """
    framed = bytearray(GIOP_HEADER_SIZE)
    framed += body
    fill_giop_header(framed, message_type, little_endian=little_endian)
    return bytes(framed)


def fill_giop_header(buffer, message_type, little_endian=True):
    """Patch the 12-byte GIOP header into *buffer*'s reserved gap.

    *buffer* is a mutable frame whose first :data:`GIOP_HEADER_SIZE`
    bytes were left as a gap while the body was marshalled behind
    them; the message size is whatever follows the gap.
    """
    struct.pack_into(
        "<4sBBBBI" if little_endian else ">4sBBBBI", buffer, 0,
        GIOP_MAGIC, 1, 0, 1 if little_endian else 0, message_type,
        len(buffer) - GIOP_HEADER_SIZE,
    )


def read_message(channel):
    """Read one framed GIOP message from a channel.

    Returns (MessageHeader, body bytes).
    """
    header_bytes = channel.recv_exact(GIOP_HEADER_SIZE)
    header = MessageHeader.decode(header_bytes)
    if header.message_size > (1 << 24):
        raise ProtocolError(f"implausible GIOP message size {header.message_size}")
    body = channel.recv_exact(header.message_size) if header.message_size else b""
    return header, body

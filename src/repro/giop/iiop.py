"""GIOP as a HeidiRMI protocol.

``GiopProtocol`` plugs CDR marshalling and GIOP 1.0 framing in under the
same ``Call``/``Reply``/``ObjectCommunicator`` machinery the text
protocol uses, demonstrating the paper's claim that the ORB protocol is
a configuration choice invisible to generated stubs and skeletons.

Mapping choices:

- the GIOP object key carries the full stringified HeidiRMI reference,
  so the server-side dispatch path (object id + type id) is identical;
- ``Reply`` status maps onto GIOP reply_status: OK → NO_EXCEPTION,
  EXC → USER_EXCEPTION (repo id leads the body, as CORBA specifies),
  ERR → SYSTEM_EXCEPTION (category string then message string);
- enums travel as CDR unsigned longs (their index), object references
  as strings, and begin/end are no-ops (CDR composites are unframed).
"""

import itertools
import threading

from repro.giop.cdr import CdrDecoder, CdrEncoder
from repro.giop.messages import (
    GIOP_HEADER_SIZE,
    LOCATE_OBJECT_HERE,
    LOCATE_UNKNOWN_OBJECT,
    MSG_CANCEL_REQUEST,
    MSG_CLOSE_CONNECTION,
    MSG_LOCATE_REPLY,
    MSG_LOCATE_REQUEST,
    MSG_REPLY,
    MSG_REQUEST,
    REPLY_NO_EXCEPTION,
    REPLY_SYSTEM_EXCEPTION,
    REPLY_USER_EXCEPTION,
    SERVICE_CONTEXT_DEADLINE,
    SERVICE_CONTEXT_TRACE,
    LocateReplyHeader,
    LocateRequestHeader,
    ReplyHeader,
    RequestHeader,
    ServiceContext,
    frame_message,
    read_message,
)
from repro.heidirmi.call import (
    STATUS_ERROR,
    STATUS_EXCEPTION,
    STATUS_OK,
    Call,
    Reply,
)
from repro.heidirmi.errors import CommunicationError, MarshalError, ProtocolError
from repro.heidirmi.marshal import Marshaller, Unmarshaller
from repro.heidirmi.protocol import Protocol
from repro.resilience.deadline import Deadline


class CdrMarshaller(Marshaller):
    """Typed put-surface over a CdrEncoder."""

    def __init__(self, start_align=0):
        self._encoder = CdrEncoder(start_align=start_align)

    def put_boolean(self, value):
        self._encoder.boolean(value)

    def put_octet(self, value):
        self._encoder.octet(value)

    def put_char(self, value):
        self._encoder.char(value)

    def put_short(self, value):
        self._encoder.short(value)

    def put_ushort(self, value):
        self._encoder.ushort(value)

    def put_long(self, value):
        self._encoder.long(value)

    def put_ulong(self, value):
        self._encoder.ulong(value)

    def put_longlong(self, value):
        self._encoder.longlong(value)

    def put_ulonglong(self, value):
        self._encoder.ulonglong(value)

    def put_float(self, value):
        self._encoder.float(value)

    def put_double(self, value):
        self._encoder.double(value)

    def put_string(self, value):
        self._encoder.string(value)

    def put_enum(self, name, index):
        # CDR enums are unsigned longs holding the member index.
        self._encoder.ulong(index)

    def put_objref(self, stringified):
        # Nil is the empty string; CORBA strings are never empty on the
        # wire (they carry at least the NUL), so this is unambiguous.
        self._encoder.string(stringified or "")

    def begin(self, name=""):
        pass  # CDR composites have no framing

    def end(self):
        pass

    def payload(self):
        return self._encoder.data()


class CdrUnmarshaller(Unmarshaller):
    """Typed get-surface over a CdrDecoder."""

    def __init__(self, decoder):
        self._decoder = decoder

    def get_boolean(self):
        return self._decoder.boolean()

    def get_octet(self):
        return self._decoder.octet()

    def get_char(self):
        return self._decoder.char()

    def get_short(self):
        return self._decoder.short()

    def get_ushort(self):
        return self._decoder.ushort()

    def get_long(self):
        return self._decoder.long()

    def get_ulong(self):
        return self._decoder.ulong()

    def get_longlong(self):
        return self._decoder.longlong()

    def get_ulonglong(self):
        return self._decoder.ulonglong()

    def get_float(self):
        return self._decoder.float()

    def get_double(self):
        return self._decoder.double()

    def get_string(self):
        return self._decoder.string()

    def get_enum(self, members):
        index = self._decoder.ulong()
        if not 0 <= index < len(members):
            raise MarshalError(f"enum index {index} out of range for {tuple(members)}")
        return index

    def get_objref(self):
        value = self._decoder.string()
        return value or None

    def begin(self, name=""):
        pass

    def end(self):
        pass

    def at_end(self):
        return self._decoder.at_end()


class GiopProtocol(Protocol):
    """GIOP 1.0 framing + CDR payloads behind the Protocol interface."""

    name = "giop"

    #: GIOP's native request_id gives it out-of-order replies for free.
    supports_multiplexing = True

    def __init__(self):
        self._request_ids = itertools.count(1)
        self._id_lock = threading.Lock()

    def next_request_id(self):
        with self._id_lock:
            return next(self._request_ids)

    # Kept for callers of the old private spelling.
    _next_request_id = next_request_id

    def new_marshaller(self):
        # Parameter payloads are encoded standalone and spliced after the
        # request/reply header; alignment is fixed up at splice time by
        # re-encoding the header first (headers are variable-length, so
        # the body is encoded into the same stream below).
        return _BufferedCdrMarshaller()

    # -- requests ------------------------------------------------------------

    def send_request(self, channel, call):
        request_id = call.request_id
        if request_id is None:
            request_id = self.next_request_id()
            call.request_id = request_id
        service_context = []
        if call.trace_context is not None:
            # GIOP's native extension point: the trace context travels
            # as a ServiceContext entry, which unaware peers skip.
            service_context.append(ServiceContext(
                SERVICE_CONTEXT_TRACE,
                call.trace_context.encode("ascii", errors="replace"),
            ))
        if call.deadline is not None:
            # Remaining budget in ms, same relative quantity as the
            # text protocols' dl= token (see SERVICE_CONTEXT_DEADLINE).
            service_context.append(ServiceContext(
                SERVICE_CONTEXT_DEADLINE,
                str(call.deadline.remaining_ms()).encode("ascii"),
            ))
        header = RequestHeader(
            request_id=request_id,
            object_key=call.target.encode("utf-8"),
            operation=call.operation,
            response_expected=not call.oneway,
            service_context=service_context,
        )
        encoder = CdrEncoder(start_align=GIOP_HEADER_SIZE)
        header.encode(encoder)
        call.replay_into(CdrMarshallerView(encoder))
        channel.send(frame_message(MSG_REQUEST, encoder.data()))
        if not getattr(channel, "_multiplexed", False):
            # Serial (one-call-in-flight) clients verify the next reply
            # against this; a demultiplexing communicator correlates by
            # reply.request_id instead, and many ids are in flight.
            channel._giop_last_request_id = request_id

    def recv_request(self, channel, object_exists=None):
        """Read the next Request, transparently serving control messages.

        LocateRequest is answered in place (OBJECT_HERE/UNKNOWN_OBJECT,
        consulting *object_exists* over the object key when provided),
        CancelRequest is acknowledged by ignoring it (calls here are
        synchronous), and CloseConnection ends the stream.
        """
        while True:
            header, body = read_message(channel)
            if header.message_type == MSG_REQUEST:
                break
            if header.message_type == MSG_LOCATE_REQUEST:
                self._answer_locate(channel, header, body, object_exists)
                continue
            if header.message_type == MSG_CANCEL_REQUEST:
                continue  # nothing in flight to cancel: requests are serial
            if header.message_type == MSG_CLOSE_CONNECTION:
                raise CommunicationError(
                    "peer sent GIOP CloseConnection", kind="peer-closed"
                )
            raise ProtocolError(
                f"expected GIOP Request, got message type {header.message_type}"
            )
        decoder = CdrDecoder(
            body, little_endian=header.little_endian, start_align=GIOP_HEADER_SIZE
        )
        request = RequestHeader.decode(decoder)
        call = Call(
            request.object_key.decode("utf-8"),
            request.operation,
            unmarshaller=CdrUnmarshaller(decoder),
            oneway=not request.response_expected,
            request_id=request.request_id,
        )
        call._giop_request_id = request.request_id
        for context in request.service_context:
            if context.context_id == SERVICE_CONTEXT_TRACE:
                call.trace_context = context.context_data.decode(
                    "ascii", errors="replace"
                )
            elif context.context_id == SERVICE_CONTEXT_DEADLINE:
                try:
                    ms = int(context.context_data.decode("ascii"))
                except (UnicodeDecodeError, ValueError):
                    raise ProtocolError(
                        f"bad deadline service context "
                        f"{context.context_data!r}"
                    ) from None
                if ms < 0:
                    raise ProtocolError(f"negative deadline {ms}ms")
                call.deadline = Deadline.after(ms / 1000.0)
        # The reply to this request must echo its id; the communicator
        # replies through the channel without call context, so stash it.
        channel._giop_pending_reply_id = request.request_id
        return call

    def _answer_locate(self, channel, header, body, object_exists):
        decoder = CdrDecoder(
            body, little_endian=header.little_endian,
            start_align=GIOP_HEADER_SIZE,
        )
        locate = LocateRequestHeader.decode(decoder)
        if object_exists is None or object_exists(locate.object_key):
            status = LOCATE_OBJECT_HERE
        else:
            status = LOCATE_UNKNOWN_OBJECT
        encoder = CdrEncoder(start_align=GIOP_HEADER_SIZE)
        LocateReplyHeader(
            request_id=locate.request_id, locate_status=status
        ).encode(encoder)
        channel.send(frame_message(MSG_LOCATE_REPLY, encoder.data()))

    def locate(self, channel, object_key):
        """Client side: send a LocateRequest and return the status."""
        request_id = self._next_request_id()
        encoder = CdrEncoder(start_align=GIOP_HEADER_SIZE)
        LocateRequestHeader(
            request_id=request_id, object_key=object_key
        ).encode(encoder)
        channel.send(frame_message(MSG_LOCATE_REQUEST, encoder.data()))
        header, body = read_message(channel)
        if header.message_type != MSG_LOCATE_REPLY:
            raise ProtocolError(
                f"expected LocateReply, got message type {header.message_type}"
            )
        decoder = CdrDecoder(
            body, little_endian=header.little_endian,
            start_align=GIOP_HEADER_SIZE,
        )
        reply = LocateReplyHeader.decode(decoder)
        if reply.request_id != request_id:
            raise ProtocolError(
                f"LocateReply for request {reply.request_id}, "
                f"expected {request_id}"
            )
        return reply.locate_status

    def close_connection(self, channel):
        """Send the GIOP CloseConnection notification."""
        channel.send(frame_message(MSG_CLOSE_CONNECTION, b""))

    # -- replies ----------------------------------------------------------------

    _STATUS_TO_GIOP = {
        STATUS_OK: REPLY_NO_EXCEPTION,
        STATUS_EXCEPTION: REPLY_USER_EXCEPTION,
        STATUS_ERROR: REPLY_SYSTEM_EXCEPTION,
    }
    _GIOP_TO_STATUS = {value: key for key, value in _STATUS_TO_GIOP.items()}

    def send_reply(self, channel, reply, request_id=None):
        if request_id is None:
            request_id = reply.request_id
        if request_id is None:
            # Serial servers stash the id of the one request in flight;
            # pipelined servers always set reply.request_id (replies may
            # leave out of order, so a per-channel stash would cross-wire).
            request_id = getattr(channel, "_giop_pending_reply_id", 0)
        header = ReplyHeader(
            request_id=request_id,
            reply_status=self._STATUS_TO_GIOP[reply.status],
        )
        encoder = CdrEncoder(start_align=GIOP_HEADER_SIZE)
        header.encode(encoder)
        if reply.status in (STATUS_EXCEPTION, STATUS_ERROR):
            # CORBA: the exception body leads with its repository ID.
            encoder.string(reply.repo_id)
        reply.replay_into(CdrMarshallerView(encoder))
        channel.send(frame_message(MSG_REPLY, encoder.data()))

    def recv_reply(self, channel):
        header, body = read_message(channel)
        if header.message_type != MSG_REPLY:
            raise ProtocolError(
                f"expected GIOP Reply, got message type {header.message_type}"
            )
        decoder = CdrDecoder(
            body, little_endian=header.little_endian, start_align=GIOP_HEADER_SIZE
        )
        reply_header = ReplyHeader.decode(decoder)
        if not getattr(channel, "_multiplexed", False):
            expected = getattr(channel, "_giop_last_request_id", None)
            if expected is not None and reply_header.request_id != expected:
                raise ProtocolError(
                    f"reply for request {reply_header.request_id}, "
                    f"expected {expected}"
                )
        status = self._GIOP_TO_STATUS.get(reply_header.reply_status)
        if status is None:
            raise ProtocolError(
                f"unsupported reply status {reply_header.reply_status}"
            )
        repo_id = ""
        if status in (STATUS_EXCEPTION, STATUS_ERROR):
            repo_id = decoder.string()
        return Reply(
            status=status,
            repo_id=repo_id,
            unmarshaller=CdrUnmarshaller(decoder),
            request_id=reply_header.request_id,
        )


class CdrMarshallerView(CdrMarshaller):
    """A CdrMarshaller writing into an existing encoder (post-header)."""

    def __init__(self, encoder):
        self._encoder = encoder


class _BufferedCdrMarshaller(Marshaller):
    """Records typed puts so they can be replayed after the GIOP header.

    GIOP alignment is measured from the start of the message, and the
    request/reply header length varies (operation name, object key), so
    the parameter bytes cannot be encoded at a known alignment until the
    header is written.  Stubs marshal into this recorder; the protocol
    replays the operations into the real encoder right after the header.
    """

    def __init__(self):
        self._operations = []

    def _record(self, method, *args):
        self._operations.append((method, args))

    def put_boolean(self, value):
        self._record("put_boolean", value)

    def put_octet(self, value):
        self._record("put_octet", value)

    def put_char(self, value):
        self._record("put_char", value)

    def put_short(self, value):
        self._record("put_short", value)

    def put_ushort(self, value):
        self._record("put_ushort", value)

    def put_long(self, value):
        self._record("put_long", value)

    def put_ulong(self, value):
        self._record("put_ulong", value)

    def put_longlong(self, value):
        self._record("put_longlong", value)

    def put_ulonglong(self, value):
        self._record("put_ulonglong", value)

    def put_float(self, value):
        self._record("put_float", value)

    def put_double(self, value):
        self._record("put_double", value)

    def put_string(self, value):
        self._record("put_string", value)

    def put_enum(self, name, index):
        self._record("put_enum", name, index)

    def put_objref(self, stringified):
        self._record("put_objref", stringified)

    def begin(self, name=""):
        self._record("begin", name)

    def end(self):
        self._record("end")

    def payload(self):
        # Used only for size-estimation/debug paths; encode standalone.
        target = CdrMarshaller()
        self.replay(target)
        return target.payload()

    def replay(self, marshaller):
        for method, args in self._operations:
            getattr(marshaller, method)(*args)

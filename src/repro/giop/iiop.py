"""GIOP as a HeidiRMI protocol — a thin pump over ``repro.wire.giop``.

``GiopProtocol`` plugs CDR marshalling and GIOP 1.0 framing in under the
same ``Call``/``Reply``/``ObjectCommunicator`` machinery the text
protocol uses, demonstrating the paper's claim that the ORB protocol is
a configuration choice invisible to generated stubs and skeletons.

All framing, message parsing, and message emission live in the sans-I/O
state machine :class:`repro.wire.giop.GiopWire`; this module only
performs blocking reads — the two exact reads of the fixed GIOP frame
(:func:`pump_giop_event`), falling back to the generic ``read_hint``
pump when the machine holds buffered bytes — and translates events
into the blocking API's exceptions.

Mapping choices:

- the GIOP object key carries the full stringified HeidiRMI reference,
  so the server-side dispatch path (object id + type id) is identical;
- ``Reply`` status maps onto GIOP reply_status: OK → NO_EXCEPTION,
  EXC → USER_EXCEPTION (repo id leads the body, as CORBA specifies),
  ERR → SYSTEM_EXCEPTION (category string then message string);
- enums travel as CDR unsigned longs (their index), object references
  as strings, and begin/end are no-ops (CDR composites are unframed).
"""

from repro.giop.cdrmarshal import (  # noqa: F401 (historic re-exports)
    BufferedCdrMarshaller as _BufferedCdrMarshaller,
    CdrMarshaller,
    CdrMarshallerView,
    CdrUnmarshaller,
)
from repro.giop.messages import (  # noqa: F401 (re-exported for callers)
    LOCATE_OBJECT_HERE,
    LOCATE_UNKNOWN_OBJECT,
    MSG_CANCEL_REQUEST,
    MSG_CLOSE_CONNECTION,
    MSG_LOCATE_REPLY,
    MSG_LOCATE_REQUEST,
    MSG_REPLY,
    MSG_REQUEST,
    read_message,
)
from repro.heidirmi.errors import CommunicationError, ProtocolError
from repro.heidirmi.protocol import (
    Protocol,
    channel_machine,
    pump_event,
    send_frame,
)
from repro.wire.correlation import RequestIdAllocator
from repro.wire.events import (
    CancelReceived,
    CloseReceived,
    LocateReplied,
    LocateRequested,
    ReplyReceived,
    RequestReceived,
    WireViolation,
)
from repro.giop.messages import GIOP_HEADER_SIZE, MessageHeader
from repro.wire.giop import (
    MAX_MESSAGE_SIZE,
    GiopWire,
    encode_close,
    encode_locate_reply,
    encode_locate_request,
    encode_request,
)
from repro.wire.giop import encode_reply as _encode_reply

#: GIOP message type behind each non-violation event, for error texts
#: that name the unexpected type ("expected LocateReply, got message
#: type 1") exactly as the pre-refactor reader did.
_EVENT_MESSAGE_TYPE = {
    RequestReceived: MSG_REQUEST,
    ReplyReceived: MSG_REPLY,
    CancelReceived: MSG_CANCEL_REQUEST,
    LocateRequested: MSG_LOCATE_REQUEST,
    LocateReplied: MSG_LOCATE_REPLY,
    CloseReceived: MSG_CLOSE_CONNECTION,
}


def pump_giop_event(channel, machine):
    """:func:`pump_event` specialised for the framed GIOP machine.

    The frame structure is fixed (12-byte header, exact-size body), so
    the blocking path performs the two exact reads directly and hands
    the parts to :meth:`GiopWire.feed_message`, skipping the buffer
    round-trip of the generic hint loop.  Bytes already buffered in the
    machine (a driver that mixed in ``feed_bytes``) drain first.
    """
    if machine.has_buffered:
        return pump_event(channel, machine)
    header_bytes = channel.recv_exact(GIOP_HEADER_SIZE)
    try:
        header = MessageHeader.decode(header_bytes)
    except ProtocolError as exc:
        event = WireViolation(str(exc))
        if machine.tap is not None:
            machine.tap.record_in(bytes(header_bytes), event, machine.role)
        return event
    if header.message_size > MAX_MESSAGE_SIZE:
        event = WireViolation(
            f"implausible GIOP message size {header.message_size}"
        )
        if machine.tap is not None:
            machine.tap.record_in(bytes(header_bytes), event, machine.role)
        return event
    return machine.feed_message(
        header, channel.recv_exact(header.message_size),
        raw_header=header_bytes if machine.tap is not None else None,
    )


class GiopProtocol(Protocol):
    """GIOP 1.0 framing + CDR payloads behind the Protocol interface."""

    name = "giop"

    #: GIOP's native request_id gives it out-of-order replies for free.
    supports_multiplexing = True

    machine_class = GiopWire

    def __init__(self):
        self._request_ids = RequestIdAllocator()

    def next_request_id(self):
        return self._request_ids.next()

    # Kept for callers of the old private spelling.
    _next_request_id = next_request_id

    def new_marshaller(self):
        # Parameter payloads are encoded standalone and spliced after the
        # request/reply header; alignment is fixed up at splice time by
        # re-encoding the header first (headers are variable-length, so
        # the body is encoded into the same stream below).
        return _BufferedCdrMarshaller()

    # -- requests ------------------------------------------------------------

    def send_request(self, channel, call):
        if call.request_id is None:
            call.request_id = self.next_request_id()
        send_frame(channel, encode_request(call))
        if not getattr(channel, "_multiplexed", False):
            # Serial (one-call-in-flight) clients verify the next reply
            # against this; a demultiplexing communicator correlates by
            # reply.request_id instead, and many ids are in flight.
            channel._giop_last_request_id = call.request_id

    def recv_request(self, channel, object_exists=None):
        """Read the next Request, transparently serving control messages.

        LocateRequest is answered in place (OBJECT_HERE/UNKNOWN_OBJECT,
        consulting *object_exists* over the object key when provided),
        CancelRequest is acknowledged by ignoring it (calls here are
        synchronous), and CloseConnection ends the stream.
        """
        machine = channel_machine(channel, "server", self.machine_class)
        while True:
            event = pump_giop_event(channel, machine)
            kind = type(event)
            if kind is RequestReceived:
                # The reply must echo this id; the communicator replies
                # through the channel without call context, so stash it.
                channel._giop_pending_reply_id = event.call.request_id
                return event.call
            if kind is LocateRequested:
                self._answer_locate(channel, event, object_exists)
                continue
            if kind is CancelReceived:
                continue  # nothing in flight to cancel: requests are serial
            if kind is CloseReceived:
                raise CommunicationError(
                    "peer sent GIOP CloseConnection", kind="peer-closed"
                )
            raise ProtocolError(event.message)  # WireViolation

    def _answer_locate(self, channel, event, object_exists):
        if object_exists is None or object_exists(event.object_key):
            status = LOCATE_OBJECT_HERE
        else:
            status = LOCATE_UNKNOWN_OBJECT
        channel.send(encode_locate_reply(event.request_id, status))

    def locate(self, channel, object_key):
        """Client side: send a LocateRequest and return the status."""
        request_id = self.next_request_id()
        channel.send(encode_locate_request(request_id, object_key))
        machine = channel_machine(channel, "client", self.machine_class)
        event = pump_giop_event(channel, machine)
        kind = type(event)
        if kind is LocateReplied:
            if event.request_id != request_id:
                raise ProtocolError(
                    f"LocateReply for request {event.request_id}, "
                    f"expected {request_id}"
                )
            return event.status
        if kind is WireViolation:
            raise ProtocolError(event.message)
        raise ProtocolError(
            f"expected LocateReply, got message type "
            f"{_EVENT_MESSAGE_TYPE[kind]}"
        )

    def close_connection(self, channel):
        """Send the GIOP CloseConnection notification."""
        channel.send(encode_close())

    #: Protocol.send_close — GIOP's orderly-close frame already exists.
    send_close = close_connection

    # -- replies ----------------------------------------------------------------

    def send_reply(self, channel, reply, request_id=None):
        if request_id is None:
            request_id = reply.request_id
        if request_id is None:
            # Serial servers stash the id of the one request in flight;
            # pipelined servers always set reply.request_id (replies may
            # leave out of order, so a per-channel stash would cross-wire).
            request_id = getattr(channel, "_giop_pending_reply_id", 0)
        send_frame(channel, _encode_reply(reply, request_id=request_id))

    def recv_reply(self, channel):
        machine = channel_machine(channel, "client", self.machine_class)
        event = pump_giop_event(channel, machine)
        kind = type(event)
        if kind is ReplyReceived:
            reply = event.reply
            if not getattr(channel, "_multiplexed", False):
                expected = getattr(channel, "_giop_last_request_id", None)
                if expected is not None and reply.request_id != expected:
                    raise ProtocolError(
                        f"reply for request {reply.request_id}, "
                        f"expected {expected}"
                    )
            return reply
        if kind is WireViolation:
            raise ProtocolError(event.message)
        if kind is CloseReceived:
            # The server is draining: it finished what it owed us and is
            # handing any still-pending calls back as retryable work.
            raise CommunicationError(
                "peer sent GIOP CloseConnection (draining)",
                kind="draining",
            )
        raise ProtocolError(
            f"expected GIOP Reply, got message type "
            f"{_EVENT_MESSAGE_TYPE[kind]}"
        )

"""Common Data Representation (CDR) encoding.

CDR is CORBA's on-the-wire data format: primitive types are aligned to
their natural boundary *measured from the start of the enclosing
message*, and either byte order is legal (the sender's is flagged in the
message header; the receiver swaps if needed).

``start_align`` exists because GIOP alignment is relative to the start
of the whole message: a body encoder that begins 12 bytes in (after the
GIOP message header) is created with ``start_align=12`` so an 8-byte
double still lands on a true 8-byte boundary.

Encapsulations (used by IORs and tagged profiles) are byte sequences
whose first octet is their own byte-order flag and whose alignment
restarts at zero — see :meth:`CdrEncoder.encapsulation` and
:meth:`CdrDecoder.from_encapsulation`.
"""

import struct

from repro.heidirmi.errors import MarshalError

LITTLE_ENDIAN = 1
BIG_ENDIAN = 0


class CdrEncoder:
    """Appends CDR-encoded values to a growing buffer.

    *buffer* lets an emitter lease the backing ``bytearray`` from a
    send pool (and reserve a frame-header gap in it before the first
    CDR write) instead of allocating per message; alignment counts the
    pre-filled bytes, so a 12-byte gap with ``start_align=0`` aligns
    exactly like an empty buffer with ``start_align=12``.
    """

    def __init__(self, little_endian=True, start_align=0, buffer=None):
        self.little_endian = little_endian
        self._prefix = "<" if little_endian else ">"
        self._start = start_align
        self._data = bytearray() if buffer is None else buffer

    def _align(self, boundary):
        position = self._start + len(self._data)
        padding = (-position) % boundary
        self._data.extend(b"\x00" * padding)

    def _pack(self, fmt, value, boundary):
        self._align(boundary)
        try:
            self._data.extend(struct.pack(self._prefix + fmt, value))
        except struct.error as exc:
            raise MarshalError(f"cannot CDR-encode {value!r}: {exc}") from exc

    # -- primitives ------------------------------------------------------

    def octet(self, value):
        self._pack("B", value, 1)

    def boolean(self, value):
        self._pack("B", 1 if value else 0, 1)

    def char(self, value):
        if not isinstance(value, str) or len(value) != 1:
            raise MarshalError(f"char must be one character, got {value!r}")
        encoded = value.encode("latin-1", errors="strict")
        self._pack("B", encoded[0], 1)

    def short(self, value):
        self._pack("h", value, 2)

    def ushort(self, value):
        self._pack("H", value, 2)

    def long(self, value):
        self._pack("i", value, 4)

    def ulong(self, value):
        self._pack("I", value, 4)

    def longlong(self, value):
        self._pack("q", value, 8)

    def ulonglong(self, value):
        self._pack("Q", value, 8)

    def float(self, value):
        self._pack("f", value, 4)

    def double(self, value):
        self._pack("d", value, 8)

    def string(self, value):
        """CORBA string: ulong length including NUL, bytes, NUL."""
        if not isinstance(value, str):
            raise MarshalError(f"expected a string, got {value!r}")
        encoded = value.encode("utf-8")
        self.ulong(len(encoded) + 1)
        self._data.extend(encoded)
        self._data.append(0)

    def octets(self, value):
        """sequence<octet>: ulong count then raw bytes."""
        self.ulong(len(value))
        self._data.extend(value)

    def raw(self, value):
        """Raw bytes with no length prefix (pre-encoded material)."""
        self._data.extend(value)

    # -- output -------------------------------------------------------------

    def data(self):
        return bytes(self._data)

    def __len__(self):
        return len(self._data)

    def encapsulation(self):
        """This buffer as an encapsulation body (with byte-order octet).

        Call on a *fresh* encoder whose first write was made after
        construction with ``start_align=1`` — use
        :meth:`new_encapsulation` which arranges this.
        """
        flag = bytes([LITTLE_ENDIAN if self.little_endian else BIG_ENDIAN])
        return flag + bytes(self._data)

    @classmethod
    def new_encapsulation(cls, little_endian=True):
        """An encoder whose alignment accounts for the byte-order octet."""
        return cls(little_endian=little_endian, start_align=1)


class CdrDecoder:
    """Pulls CDR-encoded values off a byte buffer."""

    def __init__(self, data, little_endian=True, start_align=0):
        # Zero-copy: decode straight out of whatever buffer the caller
        # holds (a wire machine's consume view, a recv buffer slice).
        # The caller guarantees the bytes behind the view are stable
        # for the decoder's lifetime — receive buffers reallocate
        # instead of resizing while views are outstanding.
        self._data = (data if isinstance(data, memoryview)
                      else memoryview(data))
        self.little_endian = little_endian
        self._prefix = "<" if little_endian else ">"
        self._start = start_align
        self._pos = 0

    @classmethod
    def from_encapsulation(cls, data):
        """Decode an encapsulation: first octet is the byte-order flag."""
        if not data:
            raise MarshalError("empty encapsulation")
        return cls(data[1:], little_endian=(data[0] == LITTLE_ENDIAN),
                   start_align=1)

    def _align(self, boundary):
        position = self._start + self._pos
        self._pos += (-position) % boundary

    def _unpack(self, fmt, size, boundary, what):
        self._align(boundary)
        if self._pos + size > len(self._data):
            raise MarshalError(f"CDR buffer exhausted while reading {what}")
        value = struct.unpack_from(self._prefix + fmt, self._data, self._pos)[0]
        self._pos += size
        return value

    # -- primitives -------------------------------------------------------------

    def octet(self):
        return self._unpack("B", 1, 1, "octet")

    def boolean(self):
        return self._unpack("B", 1, 1, "boolean") != 0

    def char(self):
        return chr(self._unpack("B", 1, 1, "char"))

    def short(self):
        return self._unpack("h", 2, 2, "short")

    def ushort(self):
        return self._unpack("H", 2, 2, "unsigned short")

    def long(self):
        return self._unpack("i", 4, 4, "long")

    def ulong(self):
        return self._unpack("I", 4, 4, "unsigned long")

    def longlong(self):
        return self._unpack("q", 8, 8, "long long")

    def ulonglong(self):
        return self._unpack("Q", 8, 8, "unsigned long long")

    def float(self):
        return self._unpack("f", 4, 4, "float")

    def double(self):
        return self._unpack("d", 8, 8, "double")

    def string(self):
        length = self.ulong()
        if length == 0:
            raise MarshalError("CORBA string length must include the NUL")
        if self._pos + length > len(self._data):
            raise MarshalError("CDR buffer exhausted while reading string")
        raw = bytes(self._data[self._pos : self._pos + length - 1])
        terminator = self._data[self._pos + length - 1]
        if terminator != 0:
            raise MarshalError("CORBA string is not NUL-terminated")
        self._pos += length
        return raw.decode("utf-8")

    def octets(self):
        count = self.ulong()
        if self._pos + count > len(self._data):
            raise MarshalError("CDR buffer exhausted while reading octets")
        value = bytes(self._data[self._pos : self._pos + count])
        self._pos += count
        return value

    # -- position -------------------------------------------------------------------

    @property
    def position(self):
        return self._pos

    def at_end(self):
        return self._pos >= len(self._data)

    def remaining(self):
        return len(self._data) - self._pos

"""GIOP/IIOP substrate: CDR marshalling, GIOP 1.0 messages, IORs.

The paper reports building an IIOP-compatible ORB from the same template
machinery ("it took us about two weeks and 700 lines of tcl code to
build an IIOP compatible tcl ORB") and names minimal IIOP-based ORBs as
the next step.  This package supplies that protocol substrate in Python:

- :mod:`repro.giop.cdr` — Common Data Representation encoder/decoder
  with proper alignment and both byte orders;
- :mod:`repro.giop.messages` — GIOP 1.0 message headers
  (Request/Reply/LocateRequest/LocateReply/CloseConnection...);
- :mod:`repro.giop.ior` — Interoperable Object References with IIOP
  profiles and ``IOR:`` stringification;
- :mod:`repro.giop.iiop` — a :class:`repro.heidirmi.protocol.Protocol`
  implementation, so the very same generated stubs run over GIOP by
  flipping the ORB's ``protocol`` knob.
"""

from repro.giop.cdr import CdrDecoder, CdrEncoder
from repro.giop.ior import IOR, IIOPProfile, ior_from_reference, reference_from_ior
from repro.giop.messages import (
    GIOP_MAGIC,
    MSG_CANCEL_REQUEST,
    MSG_CLOSE_CONNECTION,
    MSG_LOCATE_REPLY,
    MSG_LOCATE_REQUEST,
    MSG_MESSAGE_ERROR,
    MSG_REPLY,
    MSG_REQUEST,
    MessageHeader,
    ReplyHeader,
    RequestHeader,
)

__all__ = [
    "CdrEncoder",
    "CdrDecoder",
    "MessageHeader",
    "RequestHeader",
    "ReplyHeader",
    "GIOP_MAGIC",
    "MSG_REQUEST",
    "MSG_REPLY",
    "MSG_CANCEL_REQUEST",
    "MSG_LOCATE_REQUEST",
    "MSG_LOCATE_REPLY",
    "MSG_CLOSE_CONNECTION",
    "MSG_MESSAGE_ERROR",
    "IOR",
    "IIOPProfile",
    "ior_from_reference",
    "reference_from_ior",
]

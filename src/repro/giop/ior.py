"""Interoperable Object References (IORs) with IIOP profiles.

An IOR is CORBA's equivalent of the HeidiRMI stringified reference: a
repository ID plus tagged profiles telling the client how to reach the
object.  The IIOP profile (tag 0) carries version, host, port and the
opaque object key.  ``IOR:`` stringification is the CDR encapsulation of
the struct, hex-encoded — byte-for-byte what a classic ORB prints.

:func:`ior_from_reference` / :func:`reference_from_ior` convert between
IORs and :class:`repro.heidirmi.objref.ObjectReference`, with the
HeidiRMI object id travelling in the object key.
"""

import binascii
from dataclasses import dataclass, field

from repro.giop.cdr import CdrDecoder, CdrEncoder
from repro.heidirmi.errors import ProtocolError
from repro.heidirmi.objref import ObjectReference

TAG_INTERNET_IOP = 0
TAG_MULTIPLE_COMPONENTS = 1


@dataclass
class TaggedProfile:
    tag: int
    profile_data: bytes


@dataclass
class IIOPProfile:
    """The TAG_INTERNET_IOP profile body."""

    host: str
    port: int
    object_key: bytes
    version: tuple = (1, 0)

    def encode(self):
        encoder = CdrEncoder.new_encapsulation()
        encoder.octet(self.version[0])
        encoder.octet(self.version[1])
        encoder.string(self.host)
        encoder.ushort(self.port)
        encoder.octets(self.object_key)
        return encoder.encapsulation()

    @classmethod
    def decode(cls, data):
        decoder = CdrDecoder.from_encapsulation(data)
        major = decoder.octet()
        minor = decoder.octet()
        if major != 1:
            raise ProtocolError(f"unsupported IIOP profile version {major}.{minor}")
        return cls(
            version=(major, minor),
            host=decoder.string(),
            port=decoder.ushort(),
            object_key=decoder.octets(),
        )


@dataclass
class IOR:
    type_id: str
    profiles: list = field(default_factory=list)

    def encode(self):
        """CDR encapsulation of the IOR struct."""
        encoder = CdrEncoder.new_encapsulation()
        encoder.string(self.type_id)
        encoder.ulong(len(self.profiles))
        for profile in self.profiles:
            encoder.ulong(profile.tag)
            encoder.octets(profile.profile_data)
        return encoder.encapsulation()

    @classmethod
    def decode(cls, data):
        decoder = CdrDecoder.from_encapsulation(data)
        type_id = decoder.string()
        count = decoder.ulong()
        if count > 64:
            raise ProtocolError(f"implausible profile count {count}")
        profiles = [
            TaggedProfile(tag=decoder.ulong(), profile_data=decoder.octets())
            for _ in range(count)
        ]
        return cls(type_id=type_id, profiles=profiles)

    def stringify(self):
        return "IOR:" + binascii.hexlify(self.encode()).decode("ascii")

    @classmethod
    def parse(cls, text):
        if not text.startswith("IOR:"):
            raise ProtocolError(f"not an IOR string: {text[:16]!r}...")
        try:
            data = binascii.unhexlify(text[4:])
        except (binascii.Error, ValueError) as exc:
            raise ProtocolError(f"bad IOR hex: {exc}") from exc
        return cls.decode(data)

    def iiop_profile(self):
        """The first decoded IIOP profile, or None."""
        for profile in self.profiles:
            if profile.tag == TAG_INTERNET_IOP:
                return IIOPProfile.decode(profile.profile_data)
        return None


def ior_from_reference(reference):
    """Build an IOR whose IIOP profile encodes a HeidiRMI reference."""
    profile = IIOPProfile(
        host=reference.host,
        port=reference.port,
        object_key=reference.object_id.encode("utf-8"),
    )
    return IOR(
        type_id=reference.type_id,
        profiles=[TaggedProfile(tag=TAG_INTERNET_IOP, profile_data=profile.encode())],
    )


def reference_from_ior(ior, transport="tcp"):
    """Recover a HeidiRMI ObjectReference from an IOR's IIOP profile."""
    profile = ior.iiop_profile()
    if profile is None:
        raise ProtocolError("IOR has no IIOP profile")
    return ObjectReference(
        protocol=transport,
        host=profile.host,
        port=profile.port,
        object_id=profile.object_key.decode("utf-8"),
        type_id=ior.type_id,
    )

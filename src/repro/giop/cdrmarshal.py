"""CDR-backed Marshaller/Unmarshaller surfaces.

These used to live in :mod:`repro.giop.iiop` (which still re-exports
them); they sit in their own module now so the sans-I/O GIOP state
machine (:mod:`repro.wire.giop`) and the blocking protocol adapter can
share them without a circular import.
"""

from repro.giop.cdr import CdrDecoder, CdrEncoder  # noqa: F401 (re-export)
from repro.heidirmi.errors import MarshalError
from repro.heidirmi.marshal import Marshaller, Unmarshaller


class CdrMarshaller(Marshaller):
    """Typed put-surface over a CdrEncoder."""

    def __init__(self, start_align=0):
        self._encoder = CdrEncoder(start_align=start_align)

    def put_boolean(self, value):
        self._encoder.boolean(value)

    def put_octet(self, value):
        self._encoder.octet(value)

    def put_char(self, value):
        self._encoder.char(value)

    def put_short(self, value):
        self._encoder.short(value)

    def put_ushort(self, value):
        self._encoder.ushort(value)

    def put_long(self, value):
        self._encoder.long(value)

    def put_ulong(self, value):
        self._encoder.ulong(value)

    def put_longlong(self, value):
        self._encoder.longlong(value)

    def put_ulonglong(self, value):
        self._encoder.ulonglong(value)

    def put_float(self, value):
        self._encoder.float(value)

    def put_double(self, value):
        self._encoder.double(value)

    def put_string(self, value):
        self._encoder.string(value)

    def put_enum(self, name, index):
        # CDR enums are unsigned longs holding the member index.
        self._encoder.ulong(index)

    def put_objref(self, stringified):
        # Nil is the empty string; CORBA strings are never empty on the
        # wire (they carry at least the NUL), so this is unambiguous.
        self._encoder.string(stringified or "")

    def begin(self, name=""):
        pass  # CDR composites have no framing

    def end(self):
        pass

    def payload(self):
        return self._encoder.data()


class CdrUnmarshaller(Unmarshaller):
    """Typed get-surface over a CdrDecoder."""

    def __init__(self, decoder):
        self._decoder = decoder

    def get_boolean(self):
        return self._decoder.boolean()

    def get_octet(self):
        return self._decoder.octet()

    def get_char(self):
        return self._decoder.char()

    def get_short(self):
        return self._decoder.short()

    def get_ushort(self):
        return self._decoder.ushort()

    def get_long(self):
        return self._decoder.long()

    def get_ulong(self):
        return self._decoder.ulong()

    def get_longlong(self):
        return self._decoder.longlong()

    def get_ulonglong(self):
        return self._decoder.ulonglong()

    def get_float(self):
        return self._decoder.float()

    def get_double(self):
        return self._decoder.double()

    def get_string(self):
        return self._decoder.string()

    def get_enum(self, members):
        index = self._decoder.ulong()
        if not 0 <= index < len(members):
            raise MarshalError(f"enum index {index} out of range for {tuple(members)}")
        return index

    def get_objref(self):
        value = self._decoder.string()
        return value or None

    def begin(self, name=""):
        pass

    def end(self):
        pass

    def at_end(self):
        return self._decoder.at_end()


class CdrMarshallerView(CdrMarshaller):
    """A CdrMarshaller writing into an existing encoder (post-header)."""

    def __init__(self, encoder):
        self._encoder = encoder


class BufferedCdrMarshaller(Marshaller):
    """Records typed puts so they can be replayed after the GIOP header.

    GIOP alignment is measured from the start of the message, and the
    request/reply header length varies (operation name, object key), so
    the parameter bytes cannot be encoded at a known alignment until the
    header is written.  Stubs marshal into this recorder; the protocol
    replays the operations into the real encoder right after the header.
    """

    def __init__(self):
        self._operations = []

    def _record(self, method, *args):
        self._operations.append((method, args))

    def put_boolean(self, value):
        self._record("put_boolean", value)

    def put_octet(self, value):
        self._record("put_octet", value)

    def put_char(self, value):
        self._record("put_char", value)

    def put_short(self, value):
        self._record("put_short", value)

    def put_ushort(self, value):
        self._record("put_ushort", value)

    def put_long(self, value):
        self._record("put_long", value)

    def put_ulong(self, value):
        self._record("put_ulong", value)

    def put_longlong(self, value):
        self._record("put_longlong", value)

    def put_ulonglong(self, value):
        self._record("put_ulonglong", value)

    def put_float(self, value):
        self._record("put_float", value)

    def put_double(self, value):
        self._record("put_double", value)

    def put_string(self, value):
        self._record("put_string", value)

    def put_enum(self, name, index):
        self._record("put_enum", name, index)

    def put_objref(self, stringified):
        self._record("put_objref", stringified)

    def begin(self, name=""):
        self._record("begin", name)

    def end(self):
        self._record("end")

    def payload(self):
        # Used only for size-estimation/debug paths; encode standalone.
        target = CdrMarshaller()
        self.replay(target)
        return target.payload()

    def replay(self, marshaller):
        for method, args in self._operations:
            getattr(marshaller, method)(*args)

"""Overload control: bounded admission, AIMD limits, retry budgets.

The resilience features shipped so far (deadlines, retries, breakers)
assume the server keeps up.  Under sustained overload they make things
*worse*: the dispatch queue grows without bound, every queued call
blows its deadline doing dead work, and the jittered retries amplify
the offered load.  This module closes that loop from both ends —

**Server side** (:class:`AdmissionController`, built from an
:class:`AdmissionPolicy` and wired in with ``Orb(admission=...)``):

- *bounded admission* — a hard cap on concurrently admitted requests
  (``max_queue_depth``) plus a max queue age: a request that waited
  longer than ``max_queue_age`` before dispatch is shed instead of
  dispatched (its caller has likely given up; doing the work anyway is
  the classic overload death spiral);
- *adaptive concurrency limit* — AIMD on the observed sojourn latency
  (admit → completion, which includes every queue the request sat in):
  each completion under ``latency_target`` nudges the limit up
  additively, a completion over it halves the limit (multiplicative
  decrease, rate-limited by ``decrease_cooldown``), so the accepted-work
  p99 stays bounded while *goodput* degrades gracefully instead of
  collapsing;
- *cost-aware shedding* — between the adaptive limit and the hard cap,
  operations whose EWMA cost is above the running average are shed
  first and cheap ones still admitted, so one expensive method cannot
  starve the cheap traffic behind it;
- every shed is answered with a typed ``Overloaded`` error reply
  carrying a ``retry-after`` hint (:func:`shed_retry_after` estimates
  it from the live queue state), so well-behaved clients back off for
  roughly as long as the backlog needs to clear.

**Client side** (:class:`RetryBudget`, built per endpoint from a
:class:`RetryBudgetPolicy` on the :class:`ResiliencePolicy`): a token
bucket **refilled by successes** — every retry spends one token, every
success credits ``refill_rate`` of one.  The sustained retry rate is
therefore structurally bounded to a fraction of the success rate:
when an endpoint stops succeeding, the bucket drains and retries stop
entirely, which is exactly the storm a fleet of deadline-driven
retriers would otherwise feed.

Everything here is plain state + arithmetic: no threads, no I/O, an
injectable clock, so tests are deterministic.
"""

import threading
from time import monotonic

from repro.heidirmi.errors import OverloadedError

__all__ = [
    "AdmissionPolicy",
    "AdmissionController",
    "RetryBudgetPolicy",
    "RetryBudget",
    "overload_error_from_reply",
]


class AdmissionPolicy:
    """Configuration for a server-side :class:`AdmissionController`."""

    def __init__(self, max_queue_depth=64, max_queue_age=None,
                 latency_target=0.1, initial_limit=None, min_limit=1,
                 increase=1.0, decrease=0.5, decrease_cooldown=0.05,
                 cost_aware=True, retry_after_min=0.01,
                 retry_after_max=5.0, clock=monotonic):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if min_limit < 1:
            raise ValueError("min_limit must be >= 1")
        if not (0.0 < decrease < 1.0):
            raise ValueError("decrease must be in (0, 1)")
        #: Hard cap on concurrently admitted (queued + executing)
        #: requests; nothing is admitted past it, cheap or not.
        self.max_queue_depth = max_queue_depth
        #: Seconds a request may wait between admission and dispatch
        #: before it is shed instead of executed (None disables).
        self.max_queue_age = max_queue_age
        #: The AIMD setpoint: observed admit→completion latency the
        #: adaptive limit steers under.
        self.latency_target = latency_target
        #: Starting value of the adaptive limit (None = the hard cap).
        #: Clamped to the cap: the controller's admit fast path relies
        #: on ``limit <= max_queue_depth`` so one compare covers both.
        self.initial_limit = (max_queue_depth if initial_limit is None
                              else min(max_queue_depth, initial_limit))
        self.min_limit = min(min_limit, max_queue_depth)
        #: Additive increase per under-target completion (spread over
        #: the current limit, classic AIMD: ``limit += increase/limit``).
        self.increase = increase
        #: Multiplicative decrease factor on an over-target completion.
        self.decrease = decrease
        #: Minimum seconds between two multiplicative decreases, so one
        #: burst of queued stragglers does not crater the limit.
        self.decrease_cooldown = decrease_cooldown
        #: Shed expensive operations first between the adaptive limit
        #: and the hard cap (EWMA cost above the running average).
        self.cost_aware = cost_aware
        #: Clamp for the retry-after hint sent with a shed reply.
        self.retry_after_min = retry_after_min
        self.retry_after_max = retry_after_max
        self.clock = clock

    def __repr__(self):
        return (
            f"<AdmissionPolicy depth<={self.max_queue_depth} "
            f"age<={self.max_queue_age} target={self.latency_target}s>"
        )


#: EWMA smoothing for per-operation cost and sojourn latency: ~20
#: samples of memory, enough to track load shifts without flapping.
_EWMA_ALPHA = 0.1


class AdmissionController:
    """Live admission state for one Orb's dispatch path.

    One controller guards *all* connections of an Orb: depth is the
    orb-wide count of admitted-but-unfinished requests, so a fleet of
    serial connections and a pipelined one share the same limit.  All
    mutable state is guarded by one small lock; the per-request cost is
    two short critical sections (admit, finish) on a path that already
    crossed a socket.
    """

    def __init__(self, policy):
        self.policy = policy
        self._clock = policy.clock
        self._lock = threading.Lock()
        self._depth = 0  # guarded-by: self._lock
        self._limit = float(policy.initial_limit)  # guarded-by: self._lock
        self._last_decrease = 0.0  # guarded-by: self._lock
        #: EWMA of admit→completion sojourn seconds (the AIMD signal).
        self._sojourn_ewma = None  # guarded-by: self._lock
        #: Per-operation EWMA cost (seconds) and the running mean of
        #: those EWMAs, for cost-aware shedding.
        self._op_cost = {}  # guarded-by: self._lock
        self._mean_cost = 0.0  # guarded-by: self._lock
        # Counters (monitor/metrics surface; all guarded by the lock).
        self.accepted = 0  # guarded-by: self._lock
        self.shed_depth = 0  # guarded-by: self._lock
        self.shed_limit = 0  # guarded-by: self._lock
        self.shed_age = 0  # guarded-by: self._lock
        self.shed_draining = 0  # guarded-by: self._lock
        self.completed = 0  # guarded-by: self._lock

    # -- admission ---------------------------------------------------------

    def admit(self, operation):
        """Admit or shed one request; returns None or a retry-after.

        None means admitted (the caller MUST pair it with one
        :meth:`finished` call); a float is the retry-after hint, in
        seconds, to send with the ``Overloaded`` shed reply.
        """
        with self._lock:
            depth = self._depth
            if depth < self._limit:
                # Fast path: under the adaptive limit (which finished()
                # keeps clamped to the hard cap, so one compare covers
                # both).  Everything else is the overloaded slow path.
                self._depth = depth + 1
                self.accepted += 1
                return None
            policy = self.policy
            if depth >= policy.max_queue_depth:
                self.shed_depth += 1
                return self._retry_after_locked(depth)
            # Between the adaptive limit and the hard cap: shed
            # expensive operations, let cheap ones through.  An
            # unknown operation is optimistically cheap — its first
            # completion prices it.
            if policy.cost_aware and self._mean_cost > 0.0:
                cost = self._op_cost.get(operation)
                if cost is None or cost <= self._mean_cost:
                    self._depth = depth + 1
                    self.accepted += 1
                    return None
            self.shed_limit += 1
            return self._retry_after_locked(depth)

    def shed_aged(self):
        """Count one max-queue-age shed; returns its retry-after hint.

        The caller detected (at dispatch time) that the request waited
        longer than ``max_queue_age``; the admitted slot must still be
        released through :meth:`finished` — this only prices the hint.
        """
        with self._lock:
            self.shed_age += 1
            return self._retry_after_locked(self._depth)

    def shed_draining_one(self):
        """Count one shed-because-draining; returns a retry-after hint."""
        with self._lock:
            self.shed_draining += 1
            return self._retry_after_locked(self._depth)

    def over_age(self, queue_age):
        """Did this request out-wait the policy's max queue age?"""
        max_age = self.policy.max_queue_age
        return max_age is not None and queue_age > max_age

    # -- completion / AIMD -------------------------------------------------

    def finished(self, operation, sojourn, service_time=None):
        """One admitted request completed (or was aged out).

        *sojourn* is admit→now seconds (the AIMD signal);
        *service_time* prices the operation for cost-aware shedding
        (None for requests that never dispatched).
        """
        policy = self.policy
        with self._lock:
            if self._depth > 0:
                self._depth -= 1
            self.completed += 1
            ewma = self._sojourn_ewma
            self._sojourn_ewma = (
                sojourn if ewma is None
                else ewma + _EWMA_ALPHA * (sojourn - ewma)
            )
            if service_time is not None and policy.cost_aware:
                # Cost-blind controllers never read these, so the
                # zero-overload fast path skips the pricing entirely.
                cost = self._op_cost.get(operation)
                cost = (service_time if cost is None
                        else cost + _EWMA_ALPHA * (service_time - cost))
                self._op_cost[operation] = cost
                costs = self._op_cost
                self._mean_cost = sum(costs.values()) / len(costs)
            limit = self._limit
            if sojourn > policy.latency_target:
                # The clock read lives here, not at function top: only
                # the decrease path needs a timestamp (cooldown), and
                # under-target completions are the common case.
                now = self._clock()
                if now - self._last_decrease >= policy.decrease_cooldown:
                    self._limit = max(float(policy.min_limit),
                                      limit * policy.decrease)
                    self._last_decrease = now
            elif limit < policy.max_queue_depth:
                self._limit = min(float(policy.max_queue_depth),
                                  limit + policy.increase / limit)

    def _retry_after_locked(self, depth):
        # holds-lock: self._lock
        # Rough backlog-clearing time: the backlog ahead of a returning
        # caller, priced at the smoothed sojourn over the current limit
        # (≈ parallelism), clamped to the policy window.
        policy = self.policy
        sojourn = self._sojourn_ewma
        if sojourn is None or sojourn <= 0.0:
            return policy.retry_after_min
        estimate = sojourn * (depth + 1) / max(self._limit, 1.0)
        return min(policy.retry_after_max,
                   max(policy.retry_after_min, estimate))

    # -- introspection -----------------------------------------------------

    @property
    def depth(self):
        return self._depth  # race-ok: monitoring read of a GIL-atomic int

    @property
    def limit(self):
        return self._limit  # race-ok: monitoring read of a GIL-atomic float

    def shed_total(self):
        with self._lock:
            return (self.shed_depth + self.shed_limit + self.shed_age
                    + self.shed_draining)

    def snapshot(self):
        """Plain-data state for the ORBMonitor / metrics exposition."""
        with self._lock:
            sojourn = self._sojourn_ewma
            return {
                "depth": self._depth,
                "limit": round(self._limit, 2),
                "max_queue_depth": self.policy.max_queue_depth,
                "accepted": self.accepted,
                "completed": self.completed,
                "shed": {
                    "depth": self.shed_depth,
                    "limit": self.shed_limit,
                    "age": self.shed_age,
                    "draining": self.shed_draining,
                },
                "sojourn_ewma_ms": (None if sojourn is None
                                    else round(sojourn * 1000.0, 3)),
                "overloaded": self._depth >= self._limit,
            }


class RetryBudgetPolicy:
    """Configuration for per-endpoint :class:`RetryBudget` buckets.

    ``capacity`` bounds the burst of retries an endpoint can absorb;
    ``refill_rate`` is the fraction of a token each *success* credits,
    so the sustained retry rate can never exceed ``refill_rate`` times
    the success rate — the structural guarantee that makes retry
    storms impossible no matter how the backoff jitter lands.
    """

    def __init__(self, capacity=10.0, refill_rate=0.1, initial=None):
        if capacity <= 0.0:
            raise ValueError("capacity must be > 0")
        if refill_rate < 0.0:
            raise ValueError("refill_rate must be >= 0")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self.initial = capacity if initial is None else float(initial)

    def build(self):
        return RetryBudget(self)

    def __repr__(self):
        return (f"<RetryBudgetPolicy capacity={self.capacity} "
                f"refill={self.refill_rate}/success>")


class RetryBudget:
    """One endpoint's success-refilled retry token bucket.

    ``record_success`` runs on the zero-fault hot path, so it is
    lock-free: a float read-modify-write under the GIL.  Two racing
    successes can lose one refill fraction — strictly conservative
    (the budget only under-fills), so the storm bound still holds.
    ``take`` sits on the (rare) retry path and uses the lock so two
    racing retries cannot both spend the last token.
    """

    __slots__ = ("policy", "_lock", "_tokens", "denied", "spent")

    def __init__(self, policy):
        self.policy = policy
        self._lock = threading.Lock()
        self._tokens = policy.initial  # race-ok: success refill is a benign lossy float add
        self.denied = 0  # guarded-by: self._lock
        self.spent = 0  # guarded-by: self._lock

    def record_success(self):
        """Credit one success (lock-free, called per successful call)."""
        tokens = self._tokens + self.policy.refill_rate  # race-ok: lossy refill under-fills only
        capacity = self.policy.capacity
        self._tokens = tokens if tokens < capacity else capacity  # race-ok: lossy refill under-fills only

    def take(self):
        """Spend one token for a retry; False when the budget is dry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    @property
    def tokens(self):
        return self._tokens  # race-ok: monitoring read

    def snapshot(self):
        with self._lock:
            return {
                "tokens": round(self._tokens, 3),
                "capacity": self.policy.capacity,
                "spent": self.spent,
                "denied": self.denied,
            }


def overload_error_from_reply(reply):
    """The typed client-side exception for an ``Overloaded`` ERR reply.

    The retry-after hint is taken from the reply's decoded slot when
    the protocol carried it out-of-band (GIOP's HDRA ServiceContext)
    and parsed out of the leading ``ra=<ms>`` message token otherwise
    (the text protocols).
    """
    # Imported here, not at module top: ``repro.wire.headers`` imports
    # this package (for Deadline) while initializing.
    from repro.wire.headers import parse_overload_message

    try:
        message = reply.get_string()
    except Exception:  # noqa: BLE001 - a shed reply with no body
        message = "server overloaded"
    retry_after = getattr(reply, "retry_after", None)
    # The server embeds the hint in the message unconditionally (it is
    # protocol-agnostic); strip the token either way, and prefer the
    # out-of-band slot when the protocol decoded one.
    parsed_after, message = parse_overload_message(message)
    if retry_after is None:
        retry_after = parsed_after
    return OverloadedError(message or "server overloaded",
                           retry_after=retry_after)

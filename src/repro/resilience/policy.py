"""Declarative retry and resilience policies.

A :class:`RetryPolicy` never decides *whether* a call is safe to retry —
that is structural: oneways (fire-and-forget by contract) and operations
explicitly marked idempotent (``idempotent=True`` on stubs/DII, or a
mapping pack's ``idempotent_operations``) qualify; everything else fails
fast on the first error exactly as before.  The policy only decides
*how*: how many attempts, which ``CommunicationError.kind`` values are
worth another try, and how long to back off (exponential with **full
jitter** — each delay is drawn uniformly from ``[0, min(cap, base *
multiplier**attempt)]``, which de-synchronises retry storms far better
than equal or half jitter).

Both the RNG and the sleep function are injectable so tests are seeded
and instantaneous.
"""

import random
import time

#: Kinds that indicate the *request may not have executed* (or executed
#: at most once on a peer that is now unreachable) and a fresh
#: connection could succeed.  Deliberately excludes "deadline-exceeded"
#: (the budget is gone), "circuit-open" (retrying defeats the breaker),
#: "frame-overflow" and "peer-protocol-error" (deterministic failures a
#: retry would only repeat).  "overloaded" (the server shed the call at
#: admission — it never executed) and "draining" (the peer handed the
#: pending call back before an orderly close) are retryable by design:
#: both are the server explicitly saying "elsewhere or later", and the
#: per-endpoint retry budget bounds how hard "later" can be hammered.
DEFAULT_RETRYABLE_KINDS = frozenset(
    {
        "connect-refused",
        "connect-timeout",
        "send-failed",
        "recv-failed",
        "peer-closed",
        "channel-closed",
        "reader-died",
        "overloaded",
        "draining",
    }
)


class RetryPolicy:
    """How to retry calls that are structurally safe to retry."""

    def __init__(
        self,
        max_attempts=3,
        base_delay=0.05,
        max_delay=2.0,
        multiplier=2.0,
        retryable_kinds=DEFAULT_RETRYABLE_KINDS,
        rng=None,
        sleep=time.sleep,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.retryable_kinds = frozenset(retryable_kinds)
        self.rng = rng if rng is not None else random.Random()
        self.sleep = sleep

    def retryable(self, kind):
        return kind in self.retryable_kinds

    def delay(self, attempt):
        """Backoff before retry number *attempt* (1-based): full jitter."""
        cap = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        return self.rng.uniform(0.0, cap)


class ResiliencePolicy:
    """The bundle an Orb is configured with: ``Orb(resilience=...)``.

    Every part is optional; omitted parts simply do nothing.  An Orb
    without a ResiliencePolicy (and without ``default_deadline=``) runs
    the pre-resilience hot path untouched.
    """

    def __init__(self, retry=None, breaker=None, default_deadline=None,
                 retry_budget=None):
        #: :class:`RetryPolicy` applied to oneway/idempotent calls.
        self.retry = retry
        #: :class:`~repro.resilience.breaker.BreakerPolicy` — one
        #: :class:`CircuitBreaker` is built per endpoint from it.
        self.breaker = breaker
        #: Default deadline (seconds or :class:`Deadline` budget) for
        #: calls that do not carry one explicitly.
        self.default_deadline = default_deadline
        #: :class:`~repro.resilience.overload.RetryBudgetPolicy` — one
        #: success-refilled token bucket is built per endpoint from it
        #: and consulted before *every* retry, so a dead or overloaded
        #: endpoint structurally cannot be stormed.
        self.retry_budget = retry_budget

    def __repr__(self):
        return (
            f"<ResiliencePolicy retry={self.retry is not None} "
            f"breaker={self.breaker is not None} "
            f"default_deadline={self.default_deadline} "
            f"retry_budget={self.retry_budget is not None}>"
        )

"""Monotonic call deadlines.

A :class:`Deadline` is an absolute point on the *monotonic* clock plus
the budget it started from.  It is created client-side (``Orb.invoke``'s
``deadline=`` argument, a per-Orb default, or a policy default) and
travels with the :class:`~repro.heidirmi.call.Call`.

On the wire only the *remaining budget* is transmitted (``dl=<ms>`` on
the text protocols, an ASCII-decimal ServiceContext entry on GIOP):
a relative budget needs no clock synchronisation between peers.  The
server re-anchors it against its own monotonic clock at parse time, so
queued requests whose budget ran out while waiting can be dropped
without dispatching them.
"""

import time


class Deadline:
    """An absolute expiry on ``time.monotonic()`` plus its original budget."""

    __slots__ = ("expires_at", "budget")

    def __init__(self, expires_at, budget=None):
        self.expires_at = expires_at
        self.budget = budget

    @classmethod
    def after(cls, seconds):
        """A deadline *seconds* from now."""
        seconds = float(seconds)
        return cls(time.monotonic() + seconds, budget=seconds)

    @classmethod
    def coerce(cls, value):
        """Accept ``None``, a Deadline, or a number of seconds."""
        if value is None or isinstance(value, cls):
            return value
        return cls.after(value)

    def remaining(self):
        """Seconds left; negative once expired."""
        return self.expires_at - time.monotonic()

    def remaining_ms(self):
        """Whole milliseconds left, rounded *up* so any positive
        remainder survives the trip to the server as at least 1 ms."""
        remaining = self.expires_at - time.monotonic()
        if remaining <= 0.0:
            return 0
        return int(remaining * 1000.0) + 1

    @property
    def expired(self):
        return time.monotonic() >= self.expires_at

    def __repr__(self):
        return f"<Deadline remaining={self.remaining():.3f}s budget={self.budget}>"

"""Per-endpoint circuit breaker.

State machine (see docs/RESILIENCE.md for the full diagram)::

    closed --[failure rate >= threshold over >= min_calls]--> open
    open   --[reset_timeout elapsed, next allow()]----------> half-open
    half-open --[probe succeeds]--> closed
    half-open --[probe fails]-----> open   (fresh reset_timeout)

While *open*, ``allow()`` returns False immediately — callers shed load
without a connection attempt.  While *half-open*, at most
``half_open_probes`` concurrent callers are admitted to test the
endpoint; the rest are shed as if open.

The clock is injectable so the open→half-open timer is testable without
sleeping.  Transition callbacks fire *outside* the lock (they reach
back into Orb metrics and the connection cache, which take their own
locks).
"""

import collections
import threading
import time

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class BreakerPolicy:
    """Configuration for the per-endpoint breakers an Orb builds."""

    def __init__(
        self,
        window=16,
        failure_threshold=0.5,
        min_calls=4,
        reset_timeout=1.0,
        half_open_probes=1,
        clock=None,
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_calls = min_calls
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self.clock = clock if clock is not None else time.monotonic


class CircuitBreaker:
    """Rolling-window failure-rate breaker for one endpoint."""

    def __init__(self, policy=None, on_transition=None):
        self.policy = policy if policy is not None else BreakerPolicy()
        # ``state`` and ``_outcomes`` have documented lock-free fast
        # paths (closed-state reads/appends); everything else holds the
        # lock, and all state *transitions* do.
        self.state = BREAKER_CLOSED  # guarded-by: self._lock
        self._outcomes = collections.deque(
            maxlen=self.policy.window)  # guarded-by: self._lock
        self._opened_at = None  # guarded-by: self._lock
        self._probes = 0  # guarded-by: self._lock
        #: Calls the endpoint answered with a typed ``Overloaded``
        #: shed — counted apart from hard failures (the peer is alive).
        self.overloaded_count = 0  # race-ok: monitoring counter, lossy increment is benign
        self._lock = threading.Lock()
        #: Called as ``on_transition(old_state, new_state)`` after each
        #: state change, outside the breaker lock.
        self.on_transition = on_transition

    # -- admission ---------------------------------------------------------

    def allow(self):
        """May a call proceed right now?  Drives open → half-open.

        The closed state — the steady state every zero-fault call sees —
        is answered with one GIL-atomic attribute read, no lock.  State
        *transitions* all happen under the lock (in the slow paths here
        and in the recorders below), so a stale read can only admit a
        call that raced the open transition — indistinguishable from the
        call having won the race outright.
        """
        if self.state == BREAKER_CLOSED:
            return True
        transition = None
        with self._lock:
            if self.state == BREAKER_CLOSED:
                return True
            if self.state == BREAKER_OPEN:
                if self.policy.clock() - self._opened_at < self.policy.reset_timeout:
                    return False
                transition = (self.state, BREAKER_HALF_OPEN)
                self.state = BREAKER_HALF_OPEN
                self._probes = 1
            else:  # half-open: admit a bounded number of probes
                if self._probes >= self.policy.half_open_probes:
                    return False
                self._probes += 1
        if transition is not None:
            self._notify(*transition)
        return True

    # -- outcome recording -------------------------------------------------

    def record_success(self):
        # Closed-state successes (every zero-fault call) are a bare
        # bounded-deque append — GIL-atomic, no lock, no transition
        # possible.  A success racing the closed→open transition can at
        # worst leave one stray True in the freshly-cleared window; the
        # open/half-open machine never reads the window, and the next
        # transition clears it again under the lock.
        if self.state == BREAKER_CLOSED:
            # race-ok: GIL-atomic bounded-deque append; see above.
            self._outcomes.append(True)
            return
        transition = None
        with self._lock:
            self._outcomes.append(True)
            if self.state == BREAKER_HALF_OPEN:
                transition = (self.state, BREAKER_CLOSED)
                self.state = BREAKER_CLOSED
                self._outcomes.clear()
                self._probes = 0
        if transition is not None:
            self._notify(*transition)

    def record_overloaded(self):
        """The endpoint shed a call with a typed ``Overloaded`` reply.

        Counted distinctly from hard failures: the server *answered* —
        it is alive and applying back-pressure, and opening the circuit
        on back-pressure would turn graceful degradation into a local
        outage.  The count is visible to the monitor
        (``overloaded_count``); the failure window is untouched.  A
        half-open probe that comes back overloaded does re-open the
        circuit, though — the endpoint asked for time, so the breaker
        grants it a full reset_timeout instead of burning probes.
        """
        self.overloaded_count += 1  # race-ok: monitoring counter, lossy increment is benign
        if self.state == BREAKER_CLOSED:
            return
        transition = None
        with self._lock:
            if self.state == BREAKER_HALF_OPEN:
                transition = (self.state, BREAKER_OPEN)
                self.state = BREAKER_OPEN
                self._opened_at = self.policy.clock()
                self._outcomes.clear()
                self._probes = 0
        if transition is not None:
            self._notify(*transition)

    def record_failure(self):
        transition = None
        with self._lock:
            self._outcomes.append(False)
            if self.state == BREAKER_HALF_OPEN:
                transition = (self.state, BREAKER_OPEN)
            elif self.state == BREAKER_CLOSED and len(self._outcomes) >= self.policy.min_calls:
                failures = sum(1 for ok in self._outcomes if not ok)
                if failures / len(self._outcomes) >= self.policy.failure_threshold:
                    transition = (self.state, BREAKER_OPEN)
            if transition is not None:
                self.state = BREAKER_OPEN
                self._opened_at = self.policy.clock()
                self._outcomes.clear()
                self._probes = 0
        if transition is not None:
            self._notify(*transition)

    # -- introspection -----------------------------------------------------

    @property
    def failure_rate(self):
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def _notify(self, old, new):
        callback = self.on_transition
        if callback is not None:
            callback(old, new)

    def __repr__(self):
        return f"<CircuitBreaker {self.state} rate={self.failure_rate:.2f}>"

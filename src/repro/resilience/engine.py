"""The resilient invoke path.

``Orb.invoke`` is a two-line fast-path check: calls with no deadline, on
an Orb with no resilience policy, never reach this module.  Everything
else funnels through :func:`resilient_invoke`, which layers — in order —

1. **circuit breaking**: the per-endpoint breaker is consulted before
   every attempt; an open circuit sheds the call with
   ``kind="circuit-open"`` without touching the network;
2. **deadline enforcement**: the budget is checked before each attempt
   and armed on the channel / completion-table wait inside
   ``Orb._invoke_once``; expiry raises :class:`DeadlineExceeded`
   (``kind="deadline-exceeded"``, a :class:`TimeoutError`);
3. **retry**: oneways and idempotent calls whose failure kind is on the
   policy's whitelist are retried with full-jitter backoff, clamped so
   the backoff sleep never outlives the deadline.

Every decision feeds the ``repro.observe`` metrics registry when the
Orb has an observer: ``resilience.retries{kind}``,
``resilience.breaker_transitions{to}`` (emitted by the Orb's breaker
callback) and ``resilience.deadline_expired{side}``.
"""

from repro.heidirmi.errors import (
    CircuitOpenError,
    CommunicationError,
    DeadlineExceeded,
)
from repro.resilience.deadline import Deadline


def resolve_deadline(orb, deadline, call=None):
    """Effective deadline: explicit arg > call's own > policy > Orb default."""
    if deadline is None and call is not None:
        deadline = call.deadline
    if deadline is None:
        policy = orb.resilience
        if policy is not None and policy.default_deadline is not None:
            deadline = policy.default_deadline
        else:
            deadline = orb.default_deadline
    return Deadline.coerce(deadline)


def resilient_invoke(orb, reference, call, deadline=None):
    """Invoke *call* under the Orb's deadline/retry/breaker policies.

    Mirrors the contract of the fast path: returns the Reply (or None
    for oneways), raises CommunicationError subclasses on transport
    failure, and finishes the client span exactly once.
    """
    orb._count("calls")
    span = call.trace_span
    if span is not None:
        span.stage("marshal")
    call.deadline = resolve_deadline(orb, deadline, call)
    policy = orb.resilience
    retry = policy.retry if policy is not None else None
    retryable_call = retry is not None and (call.oneway or call.idempotent)
    breaker = orb._breaker_for(reference.bootstrap)
    observer = orb.observer
    attempt = 1
    while True:
        if breaker is not None and not breaker.allow():
            exc = CircuitOpenError(
                f"circuit open for {reference.bootstrap[1]}:{reference.bootstrap[2]}; "
                f"shed {call.operation!r} without a connection attempt"
            )
            orb._finish_client_span(call, error=exc)
            raise exc
        active = call.deadline
        if active is not None and active.expired:
            exc = DeadlineExceeded(
                f"deadline expired before attempt {attempt} of {call.operation!r} "
                f"(budget {active.budget}s)"
            )
            if observer is not None:
                observer.metrics.counter(
                    "resilience.deadline_expired", side="client"
                ).inc()
            orb._finish_client_span(call, error=exc)
            raise exc
        try:
            reply = orb._invoke_once(reference, call)
        except CommunicationError as exc:
            if breaker is not None:
                breaker.record_failure()
            kind = getattr(exc, "kind", "communication")
            if isinstance(exc, DeadlineExceeded) and observer is not None:
                observer.metrics.counter(
                    "resilience.deadline_expired", side="client"
                ).inc()
            if (
                not retryable_call
                or attempt >= retry.max_attempts
                or not retry.retryable(kind)
            ):
                orb._finish_client_span(call, error=exc)
                raise
            delay = retry.delay(attempt)
            if active is not None:
                remaining = active.remaining()
                if remaining <= 0.0:
                    orb._finish_client_span(call, error=exc)
                    raise
                delay = min(delay, remaining)
            if observer is not None:
                observer.metrics.counter("resilience.retries", kind=kind).inc()
            orb._event(
                "resilience:retry",
                operation=call.operation,
                attempt=attempt,
                kind=kind,
            )
            if delay > 0.0:
                retry.sleep(delay)
            attempt += 1
            continue
        if breaker is not None:
            breaker.record_success()
        orb._finish_client_span(call, reply=reply)
        return reply

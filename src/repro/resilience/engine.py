"""The resilient invoke path, fused into the wire pump.

``Orb.invoke`` is a two-line fast-path check: calls with no deadline, on
an Orb with no resilience policy, never reach this module.  Everything
else funnels through :func:`resilient_invoke`, which since the fusion
pays (near-)nothing on the zero-fault hot path:

- **policy resolution is precomputed**: the effective (deadline budget,
  retry policy, breaker) tuple is resolved once per reference into a
  :class:`PolicyPlan` cached on the reference itself
  (``Orb._plan_for``), so the per-call work is one dict probe and an
  epoch check instead of policy/default/dict churn;
- **deadlines are wakeups, not per-attempt checks**: the budget is
  stamped on the call once and enforced where the I/O already waits —
  a process-wide watchdog tick that shuts down an exclusive channel's
  socket at expiry (the socket itself stays in plain blocking mode, so
  the zero-fault path pays no timeout bookkeeping), the multiplexed
  completion table's armed expiry drained by the demultiplexer's
  select timeout, and the asyncio client's loop timers.  There is no
  ``expired`` poll before an attempt; an expired budget surfaces from
  the blocking point as :class:`DeadlineExceeded`;
- **breaker accounting is lock-free when closed**: admission is one
  attribute compare (``state == closed``) and a success is a bare
  bounded-deque append; only open/half-open circuits and failures take
  the breaker lock;
- **retry is frame re-enqueue**: a retryable failure re-sends the
  already-marshalled token tail (cached on the call by the text
  encoders) under a fresh request id — no re-marshal, no second span.

Every decision still feeds the ``repro.observe`` metrics registry when
the Orb has an observer: ``resilience.retries{kind}``,
``resilience.breaker_transitions{to}`` (emitted by the Orb's breaker
callback) and ``resilience.deadline_expired{side}``.
"""

from time import monotonic as _monotonic

from repro.heidirmi.call import STATUS_ERROR
from repro.heidirmi.errors import (
    CircuitOpenError,
    CommunicationError,
    DeadlineExceeded,
)
from repro.resilience.breaker import BREAKER_CLOSED
from repro.resilience.deadline import Deadline
from repro.resilience.overload import overload_error_from_reply
from repro.wire.headers import DL_PREFIX, OVERLOADED_CATEGORY

_new_deadline = object.__new__


class PolicyPlan:
    """The per-reference (deadline, retry, breaker) tuple, prebuilt.

    Built once by ``Orb._plan_for`` and cached on the ObjectReference;
    ``epoch`` invalidates cached plans when the Orb's breaker table is
    reaped (so a plan can never keep feeding a breaker the Orb dropped)
    and ``orb`` guards references shared between Orbs.  The effective
    default deadline is pre-split so the hot path never type-checks:
    ``budget`` is a pre-floated number of seconds (the common case) and
    ``fixed_deadline`` a caller-provided absolute Deadline; at most one
    is non-None.
    """

    __slots__ = ("orb", "epoch", "budget", "fixed_deadline", "dl_token",
                 "retry", "breaker", "retry_budget")

    def __init__(self, orb, epoch, budget, retry, breaker,
                 retry_budget=None):
        self.orb = orb
        self.epoch = epoch
        if isinstance(budget, Deadline):
            self.budget = None
            self.fixed_deadline = budget
            self.dl_token = None
        else:
            self.budget = budget
            self.fixed_deadline = None
            if budget is None:
                self.dl_token = None
            else:
                # The wire token for a freshly-stamped full budget,
                # rendered once: ceil(budget * 1000), matching what
                # ``Deadline.remaining_ms`` (round-up) yields for any
                # sub-millisecond stamp-to-encode gap.
                ms = int(budget * 1000.0)
                if ms < budget * 1000.0:
                    ms += 1
                self.dl_token = DL_PREFIX + str(ms)
        self.retry = retry
        self.breaker = breaker
        #: Per-endpoint success-refilled :class:`RetryBudget` (shared by
        #: every reference to the endpoint, like the breaker).
        self.retry_budget = retry_budget


def resolve_deadline(orb, deadline, call=None):
    """Effective deadline: explicit arg > call's own > policy > Orb default.

    The all-``None`` path allocates nothing and returns None — callers
    on the no-deadline hot path must not pay for a Deadline they do not
    have.  (``invoke_bulk`` still resolves per window; per-call
    resolution goes through the cached PolicyPlan instead.)
    """
    if deadline is None and call is not None:
        deadline = call.deadline
    if deadline is None:
        policy = orb.resilience
        if policy is not None and policy.default_deadline is not None:
            deadline = policy.default_deadline
        else:
            deadline = orb.default_deadline
        if deadline is None:
            return None
    return Deadline.coerce(deadline)


def resilient_invoke(orb, reference, call, deadline=None):
    """Invoke *call* under the Orb's deadline/retry/breaker policies.

    Mirrors the contract of the fast path: returns the Reply (or None
    for oneways), raises CommunicationError subclasses on transport
    failure, and finishes the client span exactly once.
    """
    orb._count("calls")
    span = call.trace_span
    if span is not None:
        span.stage("marshal")
    # Inlined fresh-plan probe (the body of Orb._plan_for): on the hot
    # path the cached plan is one dict get and two compares away.
    plan = reference.__dict__.get("_hd_plan")
    if (plan is None or plan.orb is not orb
            or plan.epoch != orb._plan_epoch):
        plan = orb._plan_for(reference)
    if deadline is not None:
        call.deadline = Deadline.coerce(deadline)
    elif call.deadline is None:
        budget = plan.budget
        if budget is not None:
            # Allocation without the __init__ frame: two slot stores on
            # a bare instance (this is the per-call stamp of the zero-
            # fault hot path, measurably hotter than Deadline(...)).
            stamped = _new_deadline(Deadline)
            stamped.expires_at = _monotonic() + budget
            stamped.budget = budget
            call.deadline = stamped
            # First-attempt wire token, pre-rendered on the plan.  The
            # encoders fall back to live remaining-ms arithmetic when
            # this is None (explicit deadlines, retries).
            call._dl_token = plan.dl_token
        elif plan.fixed_deadline is not None:
            call.deadline = plan.fixed_deadline
    breaker = plan.breaker
    attempt = 1
    while True:
        # Lock-free admission: the closed state (every zero-fault call)
        # is one attribute compare; only open/half-open circuits reach
        # allow(), which drives the open → half-open probe machinery.
        if (breaker is not None and breaker.state != BREAKER_CLOSED
                and not breaker.allow()):
            exc = CircuitOpenError(
                f"circuit open for {reference.bootstrap[1]}:{reference.bootstrap[2]}; "
                f"shed {call.operation!r} without a connection attempt"
            )
            orb._finish_client_span(call, error=exc)
            raise exc
        try:
            reply = orb._invoke_once(reference, call)
            if (
                reply is not None
                and reply.status == STATUS_ERROR
                and reply.repo_id == OVERLOADED_CATEGORY
            ):
                # The server answered — but with a typed shed.  Surface
                # it as an OverloadedError (carrying the retry-after
                # hint) so it flows through the same retry machinery as
                # a transport failure.
                raise overload_error_from_reply(reply)
        except CommunicationError as exc:
            kind = getattr(exc, "kind", "communication")
            if breaker is not None:
                if kind == "overloaded":
                    # Back-pressure is not an outage: counted apart so
                    # shedding cannot flip the breaker (except to
                    # re-open a half-open probe — see the breaker).
                    breaker.record_overloaded()
                elif kind != "draining":
                    # An orderly drain handed the call back before a
                    # clean close; the endpoint is healthy, just going
                    # away.  Not a breaker-visible failure either.
                    breaker.record_failure()
            retry = plan.retry  # loaded only on the failure path
            observer = orb.observer
            if isinstance(exc, DeadlineExceeded) and observer is not None:
                observer.metrics.counter(
                    "resilience.deadline_expired", side="client"
                ).inc()
            if (
                retry is None
                or not (call.oneway or call.idempotent)
                or attempt >= retry.max_attempts
                or not retry.retryable(kind)
            ):
                orb._finish_client_span(call, error=exc)
                raise
            retry_budget = plan.retry_budget
            if retry_budget is not None and not retry_budget.take():
                # The per-endpoint budget is spent: every retry from
                # here on would be part of a storm, not a recovery.
                if observer is not None:
                    observer.metrics.counter(
                        "resilience.budget_denied", kind=kind
                    ).inc()
                orb._finish_client_span(call, error=exc)
                raise
            delay = retry.delay(attempt)
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None and retry_after > delay:
                # The server's hint is a floor on the backoff — it knows
                # its queue better than our jitter does.
                delay = retry_after
            active = call.deadline
            if active is not None:
                remaining = active.remaining()
                if remaining <= 0.0:
                    orb._finish_client_span(call, error=exc)
                    raise
                delay = min(delay, remaining)
            if observer is not None:
                observer.metrics.counter("resilience.retries", kind=kind).inc()
            orb._event(
                "resilience:retry",
                operation=call.operation,
                attempt=attempt,
                kind=kind,
            )
            if delay > 0.0:
                retry.sleep(delay)
            # Retry as re-enqueue: the encoders re-send the cached
            # marshalled tail under a FRESH request id, so a straggling
            # reply to the failed attempt can never alias this one.
            # The pre-rendered dl= token is dropped too — a retry must
            # carry the *refreshed* remaining budget, not the original.
            call.request_id = None
            call._dl_token = None
            attempt += 1
            continue
        if breaker is not None:
            if breaker.state == BREAKER_CLOSED:
                # Inlined closed-state record_success: a bare GIL-atomic
                # bounded-deque append (see CircuitBreaker's own fast
                # path for why no lock is needed).
                breaker._outcomes.append(True)
            else:
                breaker.record_success()
        retry_budget = plan.retry_budget
        if retry_budget is not None:
            retry_budget.record_success()
        if call.trace_span is not None:
            orb._finish_client_span(call, reply=reply)
        return reply

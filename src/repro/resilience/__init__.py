"""Policy-driven fault tolerance for the HeidiRMI RPC path.

The paper's ORB assumes a cooperative LAN: a call blocks forever on a
stalled peer and a failed call simply raises.  This package makes
failure a first-class, *configurable* input — in the spirit of Walker
et al.'s separation of transmission policy from implementation, none of
it lives in stubs or skeletons:

- :class:`Deadline` — a monotonic-clock budget enforced client-side on
  connect/send/wait and propagated on the wire (``dl=`` token on the
  text protocols, a ServiceContext entry on GIOP) so servers can drop
  already-expired queued requests instead of doing dead work;
- :class:`RetryPolicy` — declarative retry (max attempts, exponential
  backoff with full jitter, a retryable ``CommunicationError.kind``
  whitelist) applied automatically to oneways and operations marked
  idempotent;
- :class:`CircuitBreaker` / :class:`BreakerPolicy` — a per-endpoint
  closed/open/half-open breaker that sheds load fast and lets the
  connection cache evict and re-probe broken endpoints;
- :class:`AdmissionPolicy` / :class:`AdmissionController` — server-side
  overload control: bounded admission (max depth + max queue age), an
  AIMD-adaptive concurrency limit, cost-aware shedding answered with
  typed ``Overloaded`` replies carrying retry-after hints;
- :class:`RetryBudgetPolicy` / :class:`RetryBudget` — per-endpoint
  success-refilled token buckets consulted before every retry, so
  retry storms are structurally impossible;
- :class:`FaultPlan` / :class:`ChaosTransport` — a deterministic,
  seeded fault-injection harness that wraps any transport and injects
  connect refusals, mid-frame disconnects, partial writes, delays,
  latency (``slow``) and garbage frames underneath any protocol.

Everything is off by default: an ``Orb`` constructed without a
``resilience=`` policy (and without ``default_deadline=``) runs the
exact pre-resilience hot path.  See ``docs/RESILIENCE.md``.
"""

from repro.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.resilience.chaos import (
    ChaosChannel,
    ChaosTransport,
    FaultPlan,
    install_chaos,
)
from repro.resilience.deadline import Deadline
from repro.resilience.overload import (
    AdmissionController,
    AdmissionPolicy,
    RetryBudget,
    RetryBudgetPolicy,
)
from repro.resilience.policy import (
    DEFAULT_RETRYABLE_KINDS,
    ResiliencePolicy,
    RetryPolicy,
)

__all__ = [
    "Deadline",
    "RetryPolicy",
    "ResiliencePolicy",
    "DEFAULT_RETRYABLE_KINDS",
    "BreakerPolicy",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "AdmissionPolicy",
    "AdmissionController",
    "RetryBudgetPolicy",
    "RetryBudget",
    "FaultPlan",
    "ChaosTransport",
    "ChaosChannel",
    "install_chaos",
]

"""Deterministic fault injection underneath any transport.

A :class:`FaultPlan` is a *seeded schedule*: every injection decision is
a pure function of ``(seed, category, channel_id, event_index)`` — no
wall-clock randomness, no shared mutable RNG — so a test that replays
the same call sequence replays the same faults, run after run, process
after process (the draw hashes with :func:`zlib.crc32`, not Python's
per-process-salted ``hash``).

:class:`ChaosTransport` wraps a real transport (tcp, inproc, anything
registered) and injects at three points:

- **connect**: refusals (``kind="connect-refused"``) and timeouts
  (``kind="connect-timeout"``) before the inner transport is touched;
- **send**: mid-frame disconnects and partial writes (both surface as
  ``kind="send-failed"`` with the channel closed, exactly like a real
  RST mid-write) and fixed delays;
- **recv**: garbage frames — the reader gets bytes that never came from
  the peer, desynchronising the stream the way a corrupt or truncated
  frame would — and ``slow`` reads, which stall the reader for
  ``slow_s`` before delivering the real bytes: the latency injection
  that makes overload and deadline behaviour testable (queued work
  aging out, AIMD limits clamping down) without a slow server.

Because injection sits *below* the protocol, the same plan exercises
text, text2 and GIOP alike, exclusive and multiplexed connections
alike.  :func:`install_chaos` registers a wrapped transport under a new
name; build the server Orb with ``transport=<that name>`` and every
reference it hands out routes client connections through the chaos
layer automatically.
"""

import itertools
import random
import threading
import time
import zlib

from repro.heidirmi.errors import CommunicationError
from repro.heidirmi.transport import Transport, get_transport, register_transport

#: Faults drawn per category, in cumulative-probability order.
_CONNECT_FAULTS = ("refuse", "timeout")
_SEND_FAULTS = ("disconnect", "partial", "delay")
_RECV_FAULTS = ("garbage", "slow")


class FaultPlan:
    """A seeded, deterministic schedule of faults.

    Rates are independent probabilities per event (a connect attempt, a
    frame sent, a read issued).  ``script`` pins specific events
    instead: a mapping ``{(category, index): fault}`` consulted before
    any probability draw — e.g. ``{("send", 2): "disconnect"}`` kills
    exactly the third frame sent on every channel.
    """

    def __init__(
        self,
        seed=0,
        connect_refuse=0.0,
        connect_timeout=0.0,
        disconnect=0.0,
        partial_write=0.0,
        garbage=0.0,
        slow=0.0,
        delay=0.0,
        delay_s=0.001,
        slow_s=0.02,
        script=None,
    ):
        self.seed = seed
        self.rates = {
            "connect": ((_CONNECT_FAULTS[0], connect_refuse),
                        (_CONNECT_FAULTS[1], connect_timeout)),
            "send": ((_SEND_FAULTS[0], disconnect),
                     (_SEND_FAULTS[1], partial_write),
                     (_SEND_FAULTS[2], delay)),
            "recv": ((_RECV_FAULTS[0], garbage),
                     (_RECV_FAULTS[1], slow)),
        }
        self.delay_s = delay_s
        self.slow_s = slow_s
        self.script = dict(script) if script else {}
        self._lock = threading.Lock()
        #: Injection counts by "category:fault", plus "category:events".
        self.stats = {}
        self._connect_seq = itertools.count()
        self._channel_ids = itertools.count(1)

    # -- the deterministic draw -------------------------------------------

    def _uniform(self, category, channel_id, index):
        """A [0,1) draw that is a pure function of the event identity."""
        key = f"{self.seed}:{category}:{channel_id}:{index}".encode("ascii")
        return random.Random(zlib.crc32(key)).random()

    def decide(self, category, channel_id, index):
        """The fault (or None) for event *index* of *category*."""
        fault = self.script.get((category, index))
        if fault is None:
            cumulative = 0.0
            draw = self._uniform(category, channel_id, index)
            for name, rate in self.rates[category]:
                cumulative += rate
                if draw < cumulative:
                    fault = name
                    break
        self._record(category, fault)
        return fault

    def _record(self, category, fault):
        with self._lock:
            events = f"{category}:events"
            self.stats[events] = self.stats.get(events, 0) + 1
            if fault is not None:
                key = f"{category}:{fault}"
                self.stats[key] = self.stats.get(key, 0) + 1

    # -- allocation helpers used by the transport wrapper ------------------

    def next_connect_fault(self):
        return self.decide("connect", 0, next(self._connect_seq))

    def next_channel_id(self):
        return next(self._channel_ids)

    def injected(self, category=None):
        """Total faults injected (optionally for one category)."""
        with self._lock:
            total = 0
            for key, count in self.stats.items():
                cat, _, tail = key.partition(":")
                if tail == "events":
                    continue
                if category is None or cat == category:
                    total += count
            return total


class ChaosChannel:
    """Delegating channel wrapper that injects send/recv faults.

    Unknown attributes fall through to the inner channel, so protocol
    scratch attributes (``_multiplexed``, ``_giop_last_request_id``...)
    land on the wrapper and behave exactly as on a bare Channel.
    """

    def __init__(self, inner, plan, channel_id):
        self._inner = inner
        self._plan = plan
        self._chaos_id = channel_id
        self._send_seq = 0
        self._recv_seq = 0
        self._seq_lock = threading.Lock()

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _next(self, category):
        with self._seq_lock:
            if category == "send":
                index = self._send_seq
                self._send_seq += 1
            else:
                index = self._recv_seq
                self._recv_seq += 1
        return self._plan.decide(category, self._chaos_id, index)

    # -- faulted I/O -------------------------------------------------------

    def send(self, data):
        fault = self._next("send")
        if fault == "disconnect":
            self._inner.close()
            raise CommunicationError(
                f"chaos: connection to {self._inner.peer} dropped mid-frame",
                kind="send-failed",
            )
        if fault == "partial":
            try:
                self._inner.send(bytes(data[: max(1, len(data) // 2)]))
            except CommunicationError:
                pass
            self._inner.close()
            raise CommunicationError(
                f"chaos: partial write to {self._inner.peer}, then disconnect",
                kind="send-failed",
            )
        if fault == "delay":
            time.sleep(self._plan.delay_s)
        self._inner.send(data)

    def recv_line(self):
        fault = self._next("recv")
        if fault == "garbage":
            # Bytes the peer never sent; whatever really arrives next
            # stays buffered, so the stream is poisoned either way.
            return bytearray(b"\x7fchaos!garbage!frame")
        if fault == "slow":
            time.sleep(self._plan.slow_s)
        return self._inner.recv_line()

    def recv_exact(self, count):
        fault = self._next("recv")
        if fault == "garbage":
            return b"\xff" * count
        if fault == "slow":
            time.sleep(self._plan.slow_s)
        return self._inner.recv_exact(count)

    def close(self):
        self._inner.close()

    def __repr__(self):
        return f"<ChaosChannel #{self._chaos_id} over {self._inner!r}>"


class _ChaosListener:
    """Wraps accepted server channels too (off by default)."""

    def __init__(self, inner, plan):
        self._inner = inner
        self._plan = plan

    def accept(self):
        channel = self._inner.accept()
        if channel is None:
            return None
        return ChaosChannel(channel, self._plan, self._plan.next_channel_id())

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ChaosTransport(Transport):
    """A transport that wraps another and injects the plan's faults."""

    def __init__(self, inner, plan, wrap_accept=False):
        self._inner = inner
        self.plan = plan
        self._wrap_accept = wrap_accept
        self.name = f"chaos+{getattr(inner, 'name', '?')}"

    def listen(self, host, port):
        listener = self._inner.listen(host, port)
        if self._wrap_accept:
            return _ChaosListener(listener, self.plan)
        return listener

    def connect(self, host, port, timeout=None):
        fault = self.plan.next_connect_fault()
        if fault == "refuse":
            raise CommunicationError(
                f"chaos: connect to {host}:{port} refused",
                kind="connect-refused",
            )
        if fault == "timeout":
            raise CommunicationError(
                f"chaos: connect to {host}:{port} timed out after "
                f"{timeout if timeout is not None else '?'}s",
                kind="connect-timeout",
            )
        try:
            channel = self._inner.connect(host, port, timeout=timeout)
        except TypeError:
            channel = self._inner.connect(host, port)
        return ChaosChannel(channel, self.plan, self.plan.next_channel_id())


_install_seq = itertools.count(1)


def install_chaos(inner_name, plan, name=None, wrap_accept=False):
    """Register a chaos-wrapped copy of transport *inner_name*.

    Returns the registered name.  Build the *server* Orb with
    ``transport=<name>``: references it exports then carry that name in
    their bootstrap, so client connection caches resolve the chaos
    transport automatically — no client-side configuration at all.
    """
    if name is None:
        name = f"chaos{next(_install_seq)}-{inner_name}"
    register_transport(
        name,
        lambda: ChaosTransport(get_transport(inner_name), plan, wrap_accept),
    )
    return name

"""Comment-aware line counting for several languages."""

import os
from dataclasses import dataclass

#: Language → (line-comment prefixes, block-comment (open, close) or None)
_LANGUAGES = {
    "python": (("#",), ('"""', '"""')),
    "tcl": (("#",), None),
    "cpp": (("//",), ("/*", "*/")),
    "java": (("//",), ("/*", "*/")),
    "idl": (("//",), ("/*", "*/")),
    "text": ((), None),
}

_EXTENSIONS = {
    ".py": "python",
    ".tcl": "tcl",
    ".cc": "cpp",
    ".cpp": "cpp",
    ".hh": "cpp",
    ".h": "cpp",
    ".java": "java",
    ".idl": "idl",
    ".tmpl": "text",
}


@dataclass
class LineCounts:
    """Totals for one text or file."""

    total: int = 0
    blank: int = 0
    comment: int = 0

    @property
    def code(self):
        return self.total - self.blank - self.comment

    def __add__(self, other):
        return LineCounts(
            total=self.total + other.total,
            blank=self.blank + other.blank,
            comment=self.comment + other.comment,
        )


def language_for(path):
    """Guess the counting language from a file extension."""
    _, ext = os.path.splitext(path)
    return _EXTENSIONS.get(ext, "text")


def count_lines(text, language="text"):
    """Count total/blank/comment lines of *text* for *language*.

    Block comments are handled with a simple state machine; a Python
    triple-quoted string at statement level is treated as a docstring
    (comment), which matches how footprint numbers are usually quoted.
    """
    try:
        line_prefixes, block = _LANGUAGES[language]
    except KeyError:
        raise ValueError(
            f"unknown language {language!r}; choose from {sorted(_LANGUAGES)}"
        ) from None
    counts = LineCounts()
    in_block = False
    for raw_line in text.splitlines():
        counts.total += 1
        line = raw_line.strip()
        if in_block:
            counts.comment += 1
            if block and block[1] in line:
                in_block = False
            continue
        if not line:
            counts.blank += 1
            continue
        if any(line.startswith(prefix) for prefix in line_prefixes):
            counts.comment += 1
            continue
        if block and line.startswith(block[0]):
            counts.comment += 1
            opener, closer = block
            remainder = line[len(opener):]
            if closer not in remainder:
                in_block = True
            continue
    return counts


def count_file_lines(path, language=None):
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        text = handle.read()
    return count_lines(text, language or language_for(path))


def count_package_lines(root, suffixes=(".py",)):
    """Sum LineCounts over every matching file under *root*.

    Returns (total LineCounts, {relative path: LineCounts}).
    """
    total = LineCounts()
    per_file = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if not filename.endswith(tuple(suffixes)):
                continue
            path = os.path.join(dirpath, filename)
            counts = count_file_lines(path)
            per_file[os.path.relpath(path, root)] = counts
            total = total + counts
    return total, per_file

"""Footprint accounting: code size and runtime-subset measurement.

Backs two of the paper's claims:

- Section 4.2: "it took us about two weeks and 700 lines of tcl code to
  build an IIOP compatible tcl ORB" — :func:`count_lines` measures the
  regenerated Tcl ORB against that number;
- Section 4.2: "it is possible to write templates for stubs and
  skeletons that only use portions of the ORB library to minimize the
  ORB footprint" — :func:`import_closure` computes which runtime
  modules a generated artifact actually pulls in.
"""

from repro.footprint.loc import LineCounts, count_lines, count_package_lines
from repro.footprint.imports import import_closure, module_loc, subset_report

__all__ = [
    "LineCounts",
    "count_lines",
    "count_package_lines",
    "import_closure",
    "module_loc",
    "subset_report",
]

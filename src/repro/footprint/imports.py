"""Static import-closure analysis over the repro packages.

``import_closure`` walks ``import``/``from`` statements (via ``ast``)
starting from one or more modules, restricted to a package prefix, and
returns every reachable module.  The footprint bench uses it to show
that a stub generated against the text protocol never pulls in the GIOP
substrate — the "minimal ORB" the paper says templates make possible.
"""

import ast
import importlib.util
import os


def _module_path(module_name):
    try:
        spec = importlib.util.find_spec(module_name)
    except (ModuleNotFoundError, ValueError):
        # `from pkg.mod import name` guesses `pkg.mod.name` as a module
        # candidate; when `name` is a class/function the guess fails.
        return None
    if spec is None or spec.origin in (None, "built-in"):
        return None
    return spec.origin


def _imports_of(module_name):
    path = _module_path(module_name)
    if path is None or not path.endswith(".py"):
        return set()
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=path)
    found = set()
    # Only module- and class-level imports count: imports inside function
    # bodies are lazy by design (the ORB loads GIOP that way precisely to
    # keep the minimal footprint minimal) and must not inflate it.
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.ClassDef):
            stack.extend(node.body)
        elif isinstance(node, (ast.If, ast.Try)):
            for child in ast.iter_child_nodes(node):
                stack.append(child)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                found.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            found.add(node.module)
            # `from pkg import name` may name a submodule.
            for alias in node.names:
                found.add(f"{node.module}.{alias.name}")
    return found


def import_closure(roots, prefix="repro"):
    """All *prefix*-internal modules transitively imported from *roots*.

    Only statically written imports count; dynamic imports (like the
    ORB's lazy GIOP loading) are intentionally excluded — that laziness
    is exactly what keeps the minimal footprint minimal.
    """
    if isinstance(roots, str):
        roots = [roots]
    closure = set()
    stack = [root for root in roots]
    while stack:
        module_name = stack.pop()
        if not module_name.startswith(prefix):
            continue
        if _module_path(module_name) is None:
            continue
        if module_name in closure:
            continue
        closure.add(module_name)
        for imported in _imports_of(module_name):
            if imported.startswith(prefix) and imported not in closure:
                stack.append(imported)
    return sorted(closure)


def module_loc(module_name):
    """Code lines of one module (0 when it has no source file)."""
    from repro.footprint.loc import count_file_lines

    path = _module_path(module_name)
    if path is None or not path.endswith(".py"):
        return 0
    return count_file_lines(path, "python").code


def subset_report(roots, prefix="repro"):
    """{module: code-lines} for the closure of *roots*, plus a total."""
    modules = import_closure(roots, prefix=prefix)
    report = {module: module_loc(module) for module in modules}
    report["<total>"] = sum(report.values())
    return report

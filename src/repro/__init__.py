"""Reproduction of *Customizing IDL Mappings and ORB Protocols* (Middleware 2000).

The package provides:

- :mod:`repro.idl` — an OMG IDL front-end (lexer, parser, semantic
  analysis) extended with the paper's ``incopy`` qualifier and default
  parameter values.
- :mod:`repro.est` — the *Enhanced Syntax Tree*: a parse tree whose
  children are grouped by kind, plus an emitter that renders an EST as an
  executable program which rebuilds it (the paper's generated-Perl stage,
  here generating Python).
- :mod:`repro.templates` — a Jeeves-style template engine with the
  paper's directive set (``@foreach``, ``@if``, ``@openfile``, ``-map``,
  ``-ifMore``) and two-step compilation.
- :mod:`repro.mappings` — template packs: the CORBA-prescribed C++
  mapping, the HeidiRMI C++ mapping, a Java mapping, the Tcl ORB mapping,
  and a live Python mapping that executes on the bundled runtime.
- :mod:`repro.heidirmi` — the HeidiRMI runtime: object references,
  ``Call``/``ObjectCommunicator``, text wire protocol, TCP and in-process
  transports, stub/skeleton/connection caching, dispatch strategies and
  pass-by-value serialization.
- :mod:`repro.giop` — CDR marshalling, GIOP 1.0 messages and IIOP IORs,
  pluggable as an alternate ORB protocol.
- :mod:`repro.compiler` — the two-stage compiler pipeline and CLI.
- :mod:`repro.footprint` — code-size and import-closure accounting used
  by the footprint experiments.
"""

__version__ = "1.0.0"

__all__ = [
    "idl",
    "est",
    "templates",
    "mappings",
    "heidirmi",
    "giop",
    "compiler",
    "footprint",
]

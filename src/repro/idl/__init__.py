"""OMG IDL front-end with the paper's syntax extensions.

The front-end follows the classical lexer → parser → semantic-analysis
split.  It supports the OMG IDL subset exercised by the paper (modules,
interfaces with multiple inheritance and forward declarations, structs,
enums, unions, exceptions, typedefs, constants, attributes, operations,
sequences, arrays and all primitive types) plus the two HeidiRMI
extensions described in Section 3.1:

- **default parameters** — ``void p(in long l = 0);``
- **incopy** — a pass-by-value parameter direction,
  ``void g(incopy S s);``

Use :func:`parse` for the common case::

    from repro.idl import parse
    spec = parse(open("A.idl").read(), filename="A.idl")
"""

from repro.idl.ast import (
    Attribute,
    ConstDecl,
    EnumDecl,
    ExceptionDecl,
    Forward,
    Include,
    InterfaceDecl,
    Module,
    Operation,
    Parameter,
    Specification,
    StructDecl,
    StructMember,
    TypedefDecl,
    UnionCase,
    UnionDecl,
)
from repro.idl.errors import IdlError, IdlSyntaxError, IdlSemanticError, SourceLocation
from repro.idl.lexer import Lexer, tokenize
from repro.idl.parser import Parser, parse_tokens
from repro.idl.semantics import SemanticAnalyzer, analyze
from repro.idl.tokens import Token, TokenKind
from repro.idl.types import (
    AnyType,
    ArrayType,
    FixedType,
    IdlType,
    NamedType,
    ObjectType,
    PrimitiveKind,
    PrimitiveType,
    SequenceType,
    StringType,
    VoidType,
)


def parse(source, filename="<string>", analyze_semantics=True, include_paths=()):
    """Parse IDL source text into a :class:`Specification`.

    When *analyze_semantics* is true (the default) the resulting tree has
    scoped names resolved, repository IDs assigned, and inheritance
    checked; otherwise the raw syntax tree is returned.
    """
    tokens = tokenize(source, filename=filename)
    spec = parse_tokens(tokens, filename=filename, include_paths=include_paths)
    if analyze_semantics:
        analyze(spec)
    return spec


__all__ = [
    "parse",
    "tokenize",
    "parse_tokens",
    "analyze",
    "Lexer",
    "Parser",
    "SemanticAnalyzer",
    "Token",
    "TokenKind",
    "SourceLocation",
    "IdlError",
    "IdlSyntaxError",
    "IdlSemanticError",
    "Specification",
    "Module",
    "InterfaceDecl",
    "Forward",
    "Include",
    "Operation",
    "Parameter",
    "Attribute",
    "TypedefDecl",
    "StructDecl",
    "StructMember",
    "EnumDecl",
    "UnionDecl",
    "UnionCase",
    "ExceptionDecl",
    "ConstDecl",
    "IdlType",
    "PrimitiveType",
    "PrimitiveKind",
    "NamedType",
    "SequenceType",
    "StringType",
    "ArrayType",
    "FixedType",
    "VoidType",
    "AnyType",
    "ObjectType",
]

"""Recursive-descent parser for the supported OMG IDL subset.

The grammar follows OMG IDL 2.x with the two HeidiRMI extensions:

- an extra parameter direction ``incopy`` (pass-by-value), and
- optional default values on ``in``/``incopy`` parameters
  (``void p(in long l = 0);``).

``#include`` directives are resolved inline (with include-once
semantics) when include paths are supplied; ``#pragma prefix`` /
``#pragma version`` / ``#pragma ID`` are honoured for repository IDs.
"""

import os

from repro.idl import ast
from repro.idl.errors import IdlSyntaxError
from repro.idl.tokens import Token, TokenKind
from repro.idl.lexer import tokenize
from repro.idl.types import (
    AnyType,
    FixedType,
    NamedType,
    ObjectType,
    PrimitiveKind,
    PrimitiveType,
    SequenceType,
    StringType,
    VoidType,
)

_PARAM_DIRECTIONS = ("in", "out", "inout", "incopy")

_SIMPLE_PRIMITIVES = {
    "boolean": PrimitiveKind.BOOLEAN,
    "char": PrimitiveKind.CHAR,
    "wchar": PrimitiveKind.WCHAR,
    "octet": PrimitiveKind.OCTET,
    "short": PrimitiveKind.SHORT,
    "float": PrimitiveKind.FLOAT,
    "double": PrimitiveKind.DOUBLE,
}


class Parser:
    """Parses a token stream into a :class:`repro.idl.ast.Specification`."""

    def __init__(self, tokens, filename="<string>", include_paths=(), _included_from=None):
        self._tokens = list(tokens)
        self._pos = 0
        self._filename = filename
        self._include_paths = tuple(include_paths)
        # Shared across nested includes so each file is parsed once.
        self._included_files = _included_from if _included_from is not None else set()
        self._pragma_versions = {}
        self._pragma_ids = {}

    # -- token-stream helpers ---------------------------------------------

    def _peek(self, offset=0):
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self):
        token = self._tokens[self._pos]
        if self._pos < len(self._tokens) - 1:
            self._pos += 1
        return token

    def _error(self, message, token=None):
        token = token or self._peek()
        raise IdlSyntaxError(message, token.location)

    def _expect(self, kind, what=None):
        token = self._peek()
        if token.kind is not kind:
            self._error(f"expected {what or kind.value!r}, found {token.text!r}")
        return self._advance()

    def _expect_keyword(self, word):
        token = self._peek()
        if not token.is_keyword(word):
            self._error(f"expected keyword {word!r}, found {token.text!r}")
        return self._advance()

    def _accept(self, kind):
        if self._peek().kind is kind:
            return self._advance()
        return None

    def _accept_keyword(self, word):
        if self._peek().is_keyword(word):
            return self._advance()
        return None

    def _identifier(self, what="identifier"):
        return self._expect(TokenKind.IDENTIFIER, what).text

    def _expect_close_angle(self):
        """Consume ``>``, splitting a ``>>`` as in ``sequence<sequence<T>>``."""
        token = self._peek()
        if token.kind is TokenKind.GT:
            self._advance()
            return
        if token.kind is TokenKind.RSHIFT:
            # Split: consume one '>' and leave the other in the stream.
            self._tokens[self._pos] = Token(
                TokenKind.GT, ">", ">", token.location
            )
            return
        self._error(f"expected '>', found {token.text!r}")

    # -- entry point --------------------------------------------------------

    def parse_specification(self):
        spec = ast.Specification(filename=self._filename)
        while self._peek().kind is not TokenKind.EOF:
            decl = self._parse_definition(spec)
            if decl is not None:
                decl.parent = spec
                spec.declarations.append(decl)
        spec.pragma_versions = dict(self._pragma_versions)
        spec.pragma_ids = dict(self._pragma_ids)
        return spec

    # -- definitions ----------------------------------------------------------

    def _parse_definition(self, scope):
        token = self._peek()
        if token.kind is TokenKind.PRAGMA:
            self._handle_pragma(scope)
            return None
        if token.kind is TokenKind.INCLUDE_DIRECTIVE:
            return self._parse_include()
        if token.is_keyword("module"):
            return self._parse_module()
        if token.is_keyword("interface") or (
            token.is_keyword("abstract") and self._peek(1).is_keyword("interface")
        ):
            return self._parse_interface_or_forward()
        if token.is_keyword("typedef"):
            return self._parse_typedef()
        if token.is_keyword("struct"):
            return self._finish_with_semicolon(self._parse_struct())
        if token.is_keyword("union"):
            return self._finish_with_semicolon(self._parse_union())
        if token.is_keyword("enum"):
            return self._finish_with_semicolon(self._parse_enum())
        if token.is_keyword("const"):
            return self._parse_const()
        if token.is_keyword("exception"):
            return self._parse_exception()
        if token.is_keyword("native"):
            return self._parse_native()
        self._error(f"unexpected {token.text!r} at top of scope")

    def _finish_with_semicolon(self, decl):
        self._expect(TokenKind.SEMICOLON)
        return decl

    def _handle_pragma(self, scope):
        token = self._advance()
        parts = token.text.split(None, 2)
        if not parts:
            return
        kind = parts[0]
        if kind == "prefix" and len(parts) >= 2:
            scope.prefix = parts[1].strip('"')
        elif kind == "version" and len(parts) == 3:
            self._pragma_versions[parts[1]] = parts[2]
        elif kind == "ID" and len(parts) == 3:
            self._pragma_ids[parts[1]] = parts[2].strip('"')
        # Unknown pragmas are ignored, as the spec requires.

    def _parse_include(self):
        token = self._advance()
        path = token.value
        node = ast.Include(name=path, path=path, location=token.location)
        resolved = self._resolve_include(path)
        if resolved is not None and resolved not in self._included_files:
            self._included_files.add(resolved)
            with open(resolved, "r", encoding="utf-8") as handle:
                source = handle.read()
            sub_tokens = tokenize(source, filename=resolved)
            sub_parser = Parser(
                sub_tokens,
                filename=resolved,
                include_paths=self._include_paths + (os.path.dirname(resolved),),
                _included_from=self._included_files,
            )
            node.spec = sub_parser.parse_specification()
        return node

    def _resolve_include(self, path):
        candidates = [os.path.join(base, path) for base in self._include_paths]
        if not os.path.isabs(path):
            candidates.insert(0, os.path.join(os.path.dirname(self._filename), path))
        else:
            candidates.insert(0, path)
        for candidate in candidates:
            if os.path.isfile(candidate):
                return os.path.abspath(candidate)
        return None

    def _parse_module(self):
        start = self._expect_keyword("module")
        name = self._identifier("module name")
        module = ast.Module(name=name, location=start.location)
        self._expect(TokenKind.LBRACE)
        while not self._accept(TokenKind.RBRACE):
            if self._peek().kind is TokenKind.EOF:
                self._error("unterminated module body", start)
            decl = self._parse_definition(module)
            if decl is not None:
                decl.parent = module
                module.declarations.append(decl)
        self._expect(TokenKind.SEMICOLON)
        return module

    def _parse_interface_or_forward(self):
        is_abstract = bool(self._accept_keyword("abstract"))
        start = self._expect_keyword("interface")
        name = self._identifier("interface name")
        if self._peek().kind is TokenKind.SEMICOLON:
            self._advance()
            return ast.Forward(name=name, is_abstract=is_abstract, location=start.location)

        interface = ast.InterfaceDecl(
            name=name, is_abstract=is_abstract, location=start.location
        )
        if self._accept(TokenKind.COLON):
            interface.bases.append(self._parse_scoped_name())
            while self._accept(TokenKind.COMMA):
                interface.bases.append(self._parse_scoped_name())
        self._expect(TokenKind.LBRACE)
        while not self._accept(TokenKind.RBRACE):
            if self._peek().kind is TokenKind.EOF:
                self._error("unterminated interface body", start)
            export = self._parse_export(interface)
            if export is not None:
                export.parent = interface
                interface.body.append(export)
        self._expect(TokenKind.SEMICOLON)
        return interface

    def _parse_export(self, interface):
        token = self._peek()
        if token.kind is TokenKind.PRAGMA:
            self._handle_pragma(interface)
            return None
        if token.is_keyword("typedef"):
            return self._parse_typedef()
        if token.is_keyword("struct"):
            return self._finish_with_semicolon(self._parse_struct())
        if token.is_keyword("union"):
            return self._finish_with_semicolon(self._parse_union())
        if token.is_keyword("enum"):
            return self._finish_with_semicolon(self._parse_enum())
        if token.is_keyword("const"):
            return self._parse_const()
        if token.is_keyword("exception"):
            return self._parse_exception()
        if token.is_keyword("native"):
            return self._parse_native()
        if token.is_keyword("readonly") or token.is_keyword("attribute"):
            return self._parse_attribute()
        return self._parse_operation()

    # -- interface members ---------------------------------------------------

    def _parse_attribute(self):
        start = self._peek()
        readonly = bool(self._accept_keyword("readonly"))
        self._expect_keyword("attribute")
        idl_type = self._parse_type()
        name = self._identifier("attribute name")
        attr = ast.Attribute(
            name=name, idl_type=idl_type, readonly=readonly, location=start.location
        )
        # IDL allows `attribute long a, b;` — we return the first and queue
        # the rest by rewriting the token stream is overkill; instead
        # multiple declarators are collected into siblings via the parent
        # in _parse_export.  Simplest correct approach: disallow here and
        # require one declarator per attribute, matching the paper's usage.
        if self._peek().kind is TokenKind.COMMA:
            self._error("multiple declarators per attribute are not supported; "
                        "declare each attribute separately")
        self._expect(TokenKind.SEMICOLON)
        return attr

    def _parse_operation(self):
        start = self._peek()
        is_oneway = bool(self._accept_keyword("oneway"))
        if self._peek().is_keyword("void"):
            self._advance()
            return_type = VoidType()
        else:
            return_type = self._parse_type()
        name = self._identifier("operation name")
        op = ast.Operation(
            name=name,
            return_type=return_type,
            is_oneway=is_oneway,
            location=start.location,
        )
        self._expect(TokenKind.LPAREN)
        if not self._accept(TokenKind.RPAREN):
            op.parameters.append(self._parse_parameter())
            while self._accept(TokenKind.COMMA):
                op.parameters.append(self._parse_parameter())
            self._expect(TokenKind.RPAREN)
        for param in op.parameters:
            param.parent = op
        if self._accept_keyword("raises"):
            self._expect(TokenKind.LPAREN)
            op.raises.append(self._parse_scoped_name())
            while self._accept(TokenKind.COMMA):
                op.raises.append(self._parse_scoped_name())
            self._expect(TokenKind.RPAREN)
        if self._accept_keyword("context"):
            self._expect(TokenKind.LPAREN)
            op.context.append(self._expect(TokenKind.STRING).value)
            while self._accept(TokenKind.COMMA):
                op.context.append(self._expect(TokenKind.STRING).value)
            self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMICOLON)
        return op

    def _parse_parameter(self):
        token = self._peek()
        direction = None
        for word in _PARAM_DIRECTIONS:
            if token.is_keyword(word):
                direction = word
                self._advance()
                break
        if direction is None:
            self._error(
                f"expected parameter direction (in/out/inout/incopy), found {token.text!r}"
            )
        idl_type = self._parse_type()
        name = self._identifier("parameter name")
        param = ast.Parameter(
            name=name, idl_type=idl_type, direction=direction, location=token.location
        )
        if self._accept(TokenKind.EQUALS):
            # HeidiRMI extension: default parameter value.
            if direction not in ("in", "incopy"):
                self._error("default values are only allowed on in/incopy parameters",
                            token)
            param.default = self._parse_const_expr()
        return param

    # -- type declarations -----------------------------------------------------

    def _parse_typedef(self):
        start = self._expect_keyword("typedef")
        base_type = self._parse_type()
        decls = [self._parse_declarator(base_type, start)]
        while self._accept(TokenKind.COMMA):
            decls.append(self._parse_declarator(base_type, start))
        self._expect(TokenKind.SEMICOLON)
        if len(decls) == 1:
            return decls[0]
        group = ast.Module(name="", location=start.location)
        # Multiple declarators become sibling typedefs; we flatten them by
        # returning a synthetic container the caller splices.  To keep the
        # tree simple we instead chain them through a small wrapper:
        group.declarations = decls
        group.is_typedef_group = True
        return group

    def _parse_declarator(self, base_type, start):
        name = self._identifier("declarator")
        dimensions = []
        while self._accept(TokenKind.LBRACKET):
            size = self._parse_const_expr()
            self._expect(TokenKind.RBRACKET)
            dimensions.append(size)
        if dimensions:
            from repro.idl.types import ArrayType

            evaluated = tuple(_literal_int(d) for d in dimensions)
            idl_type = ArrayType(element=base_type, dimensions=evaluated)
        else:
            idl_type = base_type
        return ast.TypedefDecl(name=name, aliased_type=idl_type, location=start.location)

    def _parse_struct(self):
        start = self._expect_keyword("struct")
        name = self._identifier("struct name")
        struct = ast.StructDecl(name=name, location=start.location)
        self._expect(TokenKind.LBRACE)
        while not self._accept(TokenKind.RBRACE):
            member_type = self._parse_type()
            struct.members.append(self._parse_struct_member(member_type, struct))
            while self._accept(TokenKind.COMMA):
                struct.members.append(self._parse_struct_member(member_type, struct))
            self._expect(TokenKind.SEMICOLON)
        return struct

    def _parse_struct_member(self, member_type, struct):
        token = self._peek()
        name = self._identifier("member name")
        member = ast.StructMember(name=name, idl_type=member_type, location=token.location)
        member.parent = struct
        return member

    def _parse_union(self):
        start = self._expect_keyword("union")
        name = self._identifier("union name")
        self._expect_keyword("switch")
        self._expect(TokenKind.LPAREN)
        discriminator = self._parse_type()
        self._expect(TokenKind.RPAREN)
        union = ast.UnionDecl(name=name, discriminator=discriminator, location=start.location)
        self._expect(TokenKind.LBRACE)
        while not self._accept(TokenKind.RBRACE):
            union.cases.append(self._parse_union_case(union))
        return union

    def _parse_union_case(self, union):
        labels = []
        token = self._peek()
        while True:
            if self._accept_keyword("case"):
                labels.append(self._parse_const_expr())
                self._expect(TokenKind.COLON)
            elif self._accept_keyword("default"):
                labels.append(None)
                self._expect(TokenKind.COLON)
            else:
                break
        if not labels:
            self._error("expected 'case' or 'default' in union body")
        case_type = self._parse_type()
        name = self._identifier("union case declarator")
        self._expect(TokenKind.SEMICOLON)
        case = ast.UnionCase(
            name=name, labels=labels, idl_type=case_type, location=token.location
        )
        case.parent = union
        return case

    def _parse_enum(self):
        start = self._expect_keyword("enum")
        name = self._identifier("enum name")
        enum_decl = ast.EnumDecl(name=name, location=start.location)
        self._expect(TokenKind.LBRACE)
        enum_decl.enumerators.append(self._identifier("enumerator"))
        while self._accept(TokenKind.COMMA):
            if self._peek().kind is TokenKind.RBRACE:
                break  # tolerate trailing comma
            enum_decl.enumerators.append(self._identifier("enumerator"))
        self._expect(TokenKind.RBRACE)
        return enum_decl

    def _parse_const(self):
        start = self._expect_keyword("const")
        idl_type = self._parse_type()
        name = self._identifier("constant name")
        self._expect(TokenKind.EQUALS)
        value = self._parse_const_expr()
        self._expect(TokenKind.SEMICOLON)
        return ast.ConstDecl(name=name, idl_type=idl_type, value=value, location=start.location)

    def _parse_exception(self):
        start = self._expect_keyword("exception")
        name = self._identifier("exception name")
        exc = ast.ExceptionDecl(name=name, location=start.location)
        self._expect(TokenKind.LBRACE)
        while not self._accept(TokenKind.RBRACE):
            member_type = self._parse_type()
            token = self._peek()
            member_name = self._identifier("member name")
            member = ast.StructMember(
                name=member_name, idl_type=member_type, location=token.location
            )
            member.parent = exc
            exc.members.append(member)
            while self._accept(TokenKind.COMMA):
                token = self._peek()
                member_name = self._identifier("member name")
                member = ast.StructMember(
                    name=member_name, idl_type=member_type, location=token.location
                )
                member.parent = exc
                exc.members.append(member)
            self._expect(TokenKind.SEMICOLON)
        self._expect(TokenKind.SEMICOLON)
        return exc

    def _parse_native(self):
        start = self._expect_keyword("native")
        name = self._identifier("native type name")
        self._expect(TokenKind.SEMICOLON)
        return ast.NativeDecl(name=name, location=start.location)

    # -- types ------------------------------------------------------------------

    def _parse_type(self):
        token = self._peek()
        if token.kind is TokenKind.KEYWORD:
            return self._parse_keyword_type()
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.SCOPE):
            return NamedType(scoped_name=self._parse_scoped_name(),
                             location=token.location)
        self._error(f"expected a type, found {token.text!r}")

    def _parse_keyword_type(self):
        token = self._peek()
        word = token.text
        if word in _SIMPLE_PRIMITIVES:
            self._advance()
            return PrimitiveType(_SIMPLE_PRIMITIVES[word])
        if word == "long":
            self._advance()
            if self._accept_keyword("long"):
                return PrimitiveType(PrimitiveKind.LONGLONG)
            if self._accept_keyword("double"):
                return PrimitiveType(PrimitiveKind.LONGDOUBLE)
            return PrimitiveType(PrimitiveKind.LONG)
        if word == "unsigned":
            self._advance()
            if self._accept_keyword("short"):
                return PrimitiveType(PrimitiveKind.USHORT)
            if self._accept_keyword("long"):
                if self._accept_keyword("long"):
                    return PrimitiveType(PrimitiveKind.ULONGLONG)
                return PrimitiveType(PrimitiveKind.ULONG)
            self._error("expected 'short' or 'long' after 'unsigned'")
        if word == "string" or word == "wstring":
            self._advance()
            bound, bound_expr = 0, None
            if self._accept(TokenKind.LT):
                bound, bound_expr = self._parse_bound()
                self._expect_close_angle()
            return StringType(bound=bound, wide=(word == "wstring"),
                              bound_expr=bound_expr)
        if word == "sequence":
            self._advance()
            self._expect(TokenKind.LT)
            element = self._parse_type()
            bound, bound_expr = 0, None
            if self._accept(TokenKind.COMMA):
                bound, bound_expr = self._parse_bound()
            self._expect_close_angle()
            return SequenceType(element=element, bound=bound,
                                bound_expr=bound_expr)
        if word == "fixed":
            self._advance()
            digits = scale = 0
            if self._accept(TokenKind.LT):
                digits = _literal_int(self._parse_const_expr())
                self._expect(TokenKind.COMMA)
                scale = _literal_int(self._parse_const_expr())
                self._expect_close_angle()
            return FixedType(digits=digits, scale=scale)
        if word == "any":
            self._advance()
            return AnyType()
        if word == "Object":
            self._advance()
            return ObjectType()
        self._error(f"{word!r} is not a type")

    def _parse_bound(self):
        """A bound: (evaluated int, None) or (0, expr) for named consts."""
        expr = self._parse_const_expr()
        try:
            return _literal_int(expr), None
        except IdlSyntaxError:
            # References a constant; semantic analysis resolves it.
            return 0, expr

    def _parse_scoped_name(self):
        parts = []
        if self._accept(TokenKind.SCOPE):
            parts.append("")  # leading :: (file scope)
        parts.append(self._identifier("scoped name"))
        while self._peek().kind is TokenKind.SCOPE:
            self._advance()
            parts.append(self._identifier("scoped name"))
        return "::".join(parts)

    # -- constant expressions ------------------------------------------------

    def _parse_const_expr(self):
        return self._parse_or_expr()

    def _binary_level(self, sub_parser, kinds):
        left = sub_parser()
        while self._peek().kind in kinds:
            op = self._advance()
            right = sub_parser()
            left = ast.BinaryExpr(op=op.text, left=left, right=right, location=op.location)
        return left

    def _parse_or_expr(self):
        return self._binary_level(self._parse_xor_expr, (TokenKind.PIPE,))

    def _parse_xor_expr(self):
        return self._binary_level(self._parse_and_expr, (TokenKind.CARET,))

    def _parse_and_expr(self):
        return self._binary_level(self._parse_shift_expr, (TokenKind.AMP,))

    def _parse_shift_expr(self):
        return self._binary_level(
            self._parse_add_expr, (TokenKind.LSHIFT, TokenKind.RSHIFT)
        )

    def _parse_add_expr(self):
        return self._binary_level(
            self._parse_mult_expr, (TokenKind.PLUS, TokenKind.MINUS)
        )

    def _parse_mult_expr(self):
        return self._binary_level(
            self._parse_unary_expr, (TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT)
        )

    def _parse_unary_expr(self):
        token = self._peek()
        if token.kind in (TokenKind.PLUS, TokenKind.MINUS, TokenKind.TILDE):
            self._advance()
            operand = self._parse_unary_expr()
            return ast.UnaryExpr(op=token.text, operand=operand, location=token.location)
        return self._parse_primary_expr()

    def _parse_primary_expr(self):
        token = self._peek()
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_const_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.INTEGER:
            self._advance()
            return ast.Literal(value=token.value, kind="int", location=token.location)
        if token.kind is TokenKind.FLOAT:
            self._advance()
            return ast.Literal(value=token.value, kind="float", location=token.location)
        if token.kind is TokenKind.FIXED:
            self._advance()
            return ast.Literal(value=token.value, kind="fixed", location=token.location)
        if token.kind in (TokenKind.CHAR, TokenKind.WCHAR):
            self._advance()
            return ast.Literal(value=token.value, kind="char", location=token.location)
        if token.kind in (TokenKind.STRING, TokenKind.WSTRING):
            # Adjacent string literals concatenate, as in C.
            parts = [self._advance().value]
            while self._peek().kind in (TokenKind.STRING, TokenKind.WSTRING):
                parts.append(self._advance().value)
            return ast.Literal(value="".join(parts), kind="string", location=token.location)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(value=True, kind="bool", location=token.location)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(value=False, kind="bool", location=token.location)
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.SCOPE):
            return ast.NameRef(scoped_name=self._parse_scoped_name(), location=token.location)
        self._error(f"expected a constant expression, found {token.text!r}")


def _literal_int(expr):
    """Evaluate a constant expression that must be a plain non-negative int."""
    from repro.idl.semantics import evaluate_const

    value = evaluate_const(expr)
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise IdlSyntaxError(
            f"expected a non-negative integer constant, got {value!r}", expr.location
        )
    return value


def parse_tokens(tokens, filename="<string>", include_paths=()):
    """Parse a token list into a Specification, splicing typedef groups."""
    parser = Parser(tokens, filename=filename, include_paths=include_paths)
    spec = parser.parse_specification()
    _splice_typedef_groups(spec)
    return spec


def _splice_typedef_groups(scope):
    """Replace synthetic typedef-group containers with their members."""
    container = getattr(scope, "declarations", None)
    if container is None:
        container = getattr(scope, "body", None)
    if container is None:
        return
    flattened = []
    for decl in container:
        if getattr(decl, "is_typedef_group", False):
            for inner in decl.declarations:
                inner.parent = scope
                flattened.append(inner)
        else:
            flattened.append(decl)
            _splice_typedef_groups(decl)
    container[:] = flattened

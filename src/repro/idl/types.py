"""The IDL type model.

Types are immutable descriptions; declarations (in :mod:`repro.idl.ast`)
carry them.  ``NamedType`` starts as an unresolved scoped name and is
bound to its declaration by semantic analysis.
"""

import enum
from dataclasses import dataclass, field


class PrimitiveKind(enum.Enum):
    """The IDL basic types."""

    BOOLEAN = "boolean"
    CHAR = "char"
    WCHAR = "wchar"
    OCTET = "octet"
    SHORT = "short"
    USHORT = "unsigned short"
    LONG = "long"
    ULONG = "unsigned long"
    LONGLONG = "long long"
    ULONGLONG = "unsigned long long"
    FLOAT = "float"
    DOUBLE = "double"
    LONGDOUBLE = "long double"

    @property
    def is_integer(self):
        return self in _INTEGER_KINDS

    @property
    def is_floating(self):
        return self in _FLOAT_KINDS


_INTEGER_KINDS = frozenset(
    {
        PrimitiveKind.OCTET,
        PrimitiveKind.SHORT,
        PrimitiveKind.USHORT,
        PrimitiveKind.LONG,
        PrimitiveKind.ULONG,
        PrimitiveKind.LONGLONG,
        PrimitiveKind.ULONGLONG,
    }
)
_FLOAT_KINDS = frozenset(
    {PrimitiveKind.FLOAT, PrimitiveKind.DOUBLE, PrimitiveKind.LONGDOUBLE}
)

# Value ranges for integer primitives, used for constant checking.
INTEGER_RANGES = {
    PrimitiveKind.OCTET: (0, 2**8 - 1),
    PrimitiveKind.SHORT: (-(2**15), 2**15 - 1),
    PrimitiveKind.USHORT: (0, 2**16 - 1),
    PrimitiveKind.LONG: (-(2**31), 2**31 - 1),
    PrimitiveKind.ULONG: (0, 2**32 - 1),
    PrimitiveKind.LONGLONG: (-(2**63), 2**63 - 1),
    PrimitiveKind.ULONGLONG: (0, 2**64 - 1),
}


class IdlType:
    """Base class for all type descriptions."""

    #: True when instances of the type can vary in marshalled size.  The
    #: EST exposes this as the ``IsVariable`` property (see Fig. 8).
    is_variable = False

    def idl_name(self):
        """The type's spelling in IDL source."""
        raise NotImplementedError


@dataclass(frozen=True)
class PrimitiveType(IdlType):
    kind: PrimitiveKind

    def idl_name(self):
        return self.kind.value

    def __str__(self):
        return self.idl_name()


@dataclass(frozen=True)
class VoidType(IdlType):
    def idl_name(self):
        return "void"

    def __str__(self):
        return "void"


@dataclass(frozen=True)
class AnyType(IdlType):
    is_variable = True

    def idl_name(self):
        return "any"

    def __str__(self):
        return "any"


@dataclass(frozen=True)
class ObjectType(IdlType):
    """The CORBA ``Object`` pseudo-type (base of all object references)."""

    is_variable = True

    def idl_name(self):
        return "Object"

    def __str__(self):
        return "Object"


@dataclass(frozen=True)
class StringType(IdlType):
    bound: int = 0  # 0 means unbounded
    wide: bool = False
    #: Unevaluated bound expression (a named constant); resolved by
    #: semantic analysis, which then fills in ``bound``.
    bound_expr: object = field(default=None, compare=False, repr=False)
    is_variable = True

    def idl_name(self):
        base = "wstring" if self.wide else "string"
        return f"{base}<{self.bound}>" if self.bound else base

    def __str__(self):
        return self.idl_name()


@dataclass(frozen=True)
class FixedType(IdlType):
    digits: int = 0
    scale: int = 0

    def idl_name(self):
        if self.digits:
            return f"fixed<{self.digits},{self.scale}>"
        return "fixed"

    def __str__(self):
        return self.idl_name()


@dataclass(frozen=True)
class SequenceType(IdlType):
    element: IdlType
    bound: int = 0  # 0 means unbounded
    #: Unevaluated bound expression (a named constant); resolved by
    #: semantic analysis, which then fills in ``bound``.
    bound_expr: object = field(default=None, compare=False, repr=False)
    is_variable = True

    def idl_name(self):
        if self.bound:
            return f"sequence<{self.element.idl_name()}, {self.bound}>"
        return f"sequence<{self.element.idl_name()}>"

    def __str__(self):
        return self.idl_name()


@dataclass(frozen=True)
class ArrayType(IdlType):
    """A (possibly multi-dimensional) array introduced by a declarator."""

    element: IdlType
    dimensions: tuple

    @property
    def is_variable(self):
        return self.element.is_variable

    def idl_name(self):
        dims = "".join(f"[{d}]" for d in self.dimensions)
        return f"{self.element.idl_name()}{dims}"

    def __str__(self):
        return self.idl_name()


@dataclass(eq=False)
class NamedType(IdlType):
    """A scoped-name reference such as ``Heidi::SSequence`` or ``S``.

    ``declaration`` is filled in by semantic analysis and points to the
    declaring AST node (interface, struct, enum, typedef, ...).
    """

    scoped_name: str
    declaration: object = field(default=None, repr=False)
    #: Where the reference appears, so diagnostics anchor to the exact
    #: type spelling rather than the enclosing declaration.
    location: object = field(default=None, repr=False)

    @property
    def is_variable(self):
        decl = self.declaration
        if decl is None:
            return False
        return decl.is_variable_type()

    def resolved(self):
        """Follow typedef chains to the underlying declaration/type."""
        decl = self.declaration
        seen = set()
        while decl is not None and decl.__class__.__name__ == "TypedefDecl":
            if id(decl) in seen:  # pragma: no cover - cycles rejected earlier
                break
            seen.add(id(decl))
            inner = decl.aliased_type
            if isinstance(inner, NamedType):
                decl = inner.declaration
            else:
                return inner
        return decl

    def idl_name(self):
        return self.scoped_name

    def __str__(self):
        return self.scoped_name

"""Token kinds and keyword tables for the IDL lexer.

The keyword set is the OMG IDL 2.x keyword set plus the HeidiRMI
extension keyword ``incopy`` (Section 3.1 of the paper).
"""

import enum
from dataclasses import dataclass, field

from repro.idl.errors import SourceLocation


class TokenKind(enum.Enum):
    """Lexical classes produced by :class:`repro.idl.lexer.Lexer`."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INTEGER = "integer"
    FLOAT = "float"
    CHAR = "char"
    WCHAR = "wchar"
    STRING = "string"
    WSTRING = "wstring"
    FIXED = "fixed_literal"

    # Punctuation and operators.
    SEMICOLON = ";"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COLON = ":"
    SCOPE = "::"
    COMMA = ","
    EQUALS = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    TILDE = "~"
    PIPE = "|"
    CARET = "^"
    AMP = "&"
    LSHIFT = "<<"
    RSHIFT = ">>"
    LT = "<"
    GT = ">"

    PRAGMA = "pragma"
    INCLUDE_DIRECTIVE = "include"
    EOF = "eof"


# OMG IDL keywords (case-sensitive) plus the paper's `incopy` extension.
KEYWORDS = frozenset(
    {
        "abstract",
        "any",
        "attribute",
        "boolean",
        "case",
        "char",
        "const",
        "context",
        "custom",
        "default",
        "double",
        "enum",
        "exception",
        "FALSE",
        "fixed",
        "float",
        "in",
        "incopy",  # HeidiRMI extension: pass-by-value parameter direction.
        "inout",
        "interface",
        "long",
        "module",
        "native",
        "Object",
        "octet",
        "oneway",
        "out",
        "raises",
        "readonly",
        "sequence",
        "short",
        "string",
        "struct",
        "switch",
        "TRUE",
        "typedef",
        "union",
        "unsigned",
        "ValueBase",
        "valuetype",
        "void",
        "wchar",
        "wstring",
    }
)

# Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS = (
    ("::", TokenKind.SCOPE),
    ("<<", TokenKind.LSHIFT),
    (">>", TokenKind.RSHIFT),
)

SINGLE_CHAR_OPERATORS = {
    ";": TokenKind.SEMICOLON,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    "=": TokenKind.EQUALS,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "~": TokenKind.TILDE,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "&": TokenKind.AMP,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload: the identifier/keyword text, the
    numeric value of a literal, or the decoded string contents.  ``text``
    always holds the raw source spelling.
    """

    kind: TokenKind
    text: str
    value: object = None
    location: SourceLocation = field(default_factory=SourceLocation)

    def is_keyword(self, word):
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_punct(self, kind):
        return self.kind is kind

    def __str__(self):
        return f"{self.kind.name}({self.text!r})"

"""Declaration AST produced by the IDL parser.

This is the *regular* parse tree: children appear in source order,
attributes interleaved with operations exactly as written (the paper's
Fig. 3 example interleaves the ``button`` attribute between methods
``q`` and ``s``).  The *Enhanced* Syntax Tree, which regroups children
by kind, is built from this tree by :mod:`repro.est.builder`.
"""

from dataclasses import dataclass, field

from repro.idl.errors import SourceLocation
from repro.idl.types import IdlType, NamedType


# ---------------------------------------------------------------------------
# Constant expressions
# ---------------------------------------------------------------------------


@dataclass
class ConstExpr:
    """Base class for constant-expression nodes."""

    location: SourceLocation = field(default_factory=SourceLocation, kw_only=True)


@dataclass
class Literal(ConstExpr):
    """A literal constant; ``kind`` is one of int/float/char/string/bool/fixed."""

    value: object
    kind: str

    def __str__(self):
        if self.kind == "string":
            return '"{}"'.format(str(self.value).replace("\\", "\\\\").replace('"', '\\"'))
        if self.kind == "char":
            return f"'{self.value}'"
        if self.kind == "bool":
            return "TRUE" if self.value else "FALSE"
        return str(self.value)


@dataclass
class NameRef(ConstExpr):
    """A scoped-name reference in a constant expression (e.g. an enumerator)."""

    scoped_name: str
    declaration: object = field(default=None, repr=False)

    def __str__(self):
        return self.scoped_name


@dataclass
class UnaryExpr(ConstExpr):
    op: str
    operand: ConstExpr

    def __str__(self):
        return f"{self.op}{self.operand}"


@dataclass
class BinaryExpr(ConstExpr):
    op: str
    left: ConstExpr
    right: ConstExpr

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Declaration:
    """Base class for all named declarations."""

    name: str
    location: SourceLocation = field(default_factory=SourceLocation, kw_only=True)
    #: Enclosing declaration (Module/InterfaceDecl/Specification); set by
    #: the parser as the tree is built.
    parent: object = field(default=None, repr=False, kw_only=True)
    #: ``IDL:<prefix>/<path>:<version>``; assigned by semantic analysis.
    repository_id: str = field(default="", kw_only=True)

    def scoped_name(self, separator="::"):
        """The fully qualified name, e.g. ``Heidi::A``."""
        parts = []
        node = self
        while node is not None and getattr(node, "name", ""):
            parts.append(node.name)
            node = getattr(node, "parent", None)
        return separator.join(reversed(parts))

    def enclosing_scopes(self):
        """Yield enclosing declarations from innermost to outermost."""
        node = getattr(self, "parent", None)
        while node is not None:
            yield node
            node = getattr(node, "parent", None)

    def is_variable_type(self):
        """Whether values of this type have variable marshalled size."""
        return False


@dataclass
class Specification(Declaration):
    """The root of a parsed IDL file (an unnamed scope)."""

    name: str = ""
    declarations: list = field(default_factory=list)
    filename: str = "<string>"
    #: ``#pragma prefix`` value in effect at file scope.
    prefix: str = ""

    def iter_tree(self):
        """Yield every declaration in the file, depth-first, source order."""
        stack = list(reversed(self.declarations))
        while stack:
            node = stack.pop()
            yield node
            children = getattr(node, "declarations", None) or getattr(node, "body", None)
            if children:
                stack.extend(reversed(children))

    def find(self, scoped_name):
        """Find a declaration by fully qualified name (``A::B`` form).

        A full definition wins over a forward declaration of the same
        name, whatever their source order.
        """
        forward = None
        for node in self.iter_tree():
            if node.scoped_name() == scoped_name:
                if isinstance(node, Forward):
                    forward = forward or node
                else:
                    return node
        return forward


@dataclass
class Module(Declaration):
    declarations: list = field(default_factory=list)
    prefix: str = ""


@dataclass
class Forward(Declaration):
    """A forward interface declaration: ``interface S;``"""

    is_abstract: bool = False
    #: Set by semantic analysis to the full InterfaceDecl when one exists.
    definition: object = field(default=None, repr=False)

    def is_variable_type(self):
        return True  # object references are variable-length


@dataclass
class InterfaceDecl(Declaration):
    #: Scoped names of the inherited interfaces, in declaration order.
    bases: list = field(default_factory=list)
    #: Body declarations in source order (attributes interleaved with
    #: operations, nested types, constants, exceptions).
    body: list = field(default_factory=list)
    is_abstract: bool = False
    #: Resolved InterfaceDecl objects for ``bases``; set by semantics.
    resolved_bases: list = field(default_factory=list, repr=False)

    def is_variable_type(self):
        return True

    def operations(self):
        return [d for d in self.body if isinstance(d, Operation)]

    def attributes(self):
        return [d for d in self.body if isinstance(d, Attribute)]

    def all_bases(self):
        """All transitive bases, depth-first in declaration order, deduped."""
        seen = []
        for base in self.resolved_bases:
            for ancestor in base.all_bases():
                if ancestor not in seen:
                    seen.append(ancestor)
            if base not in seen:
                seen.append(base)
        return seen

    def all_operations(self):
        """Own and inherited operations (inherited first, base order)."""
        ops = []
        for base in self.all_bases():
            ops.extend(base.operations())
        ops.extend(self.operations())
        return ops

    def all_attributes(self):
        attrs = []
        for base in self.all_bases():
            attrs.extend(base.attributes())
        attrs.extend(self.attributes())
        return attrs


@dataclass
class Parameter(Declaration):
    """An operation parameter.

    ``direction`` is one of ``in``/``out``/``inout``/``incopy``; the
    last is the paper's pass-by-value extension (Section 3.1).
    """

    idl_type: IdlType = None
    direction: str = "in"
    #: Default-value expression (HeidiRMI extension) or None.
    default: ConstExpr = None


@dataclass
class Operation(Declaration):
    return_type: IdlType = None
    parameters: list = field(default_factory=list)
    is_oneway: bool = False
    raises: list = field(default_factory=list)  # scoped names
    context: list = field(default_factory=list)  # context strings
    resolved_raises: list = field(default_factory=list, repr=False)


@dataclass
class Attribute(Declaration):
    idl_type: IdlType = None
    readonly: bool = False


@dataclass
class TypedefDecl(Declaration):
    aliased_type: IdlType = None

    def is_variable_type(self):
        return self.aliased_type.is_variable


@dataclass
class StructMember(Declaration):
    idl_type: IdlType = None


@dataclass
class StructDecl(Declaration):
    members: list = field(default_factory=list)

    def is_variable_type(self):
        return any(m.idl_type.is_variable for m in self.members)


@dataclass
class EnumDecl(Declaration):
    #: Enumerator names in declaration order.
    enumerators: list = field(default_factory=list)

    def enumerator_value(self, name):
        return self.enumerators.index(name)


@dataclass
class UnionCase(Declaration):
    """One union branch; ``labels`` holds ConstExprs, None = default."""

    labels: list = field(default_factory=list)
    idl_type: IdlType = None


@dataclass
class UnionDecl(Declaration):
    discriminator: IdlType = None
    cases: list = field(default_factory=list)

    def is_variable_type(self):
        return any(c.idl_type.is_variable for c in self.cases)


@dataclass
class ExceptionDecl(Declaration):
    members: list = field(default_factory=list)

    def is_variable_type(self):
        return any(m.idl_type.is_variable for m in self.members)


@dataclass
class ConstDecl(Declaration):
    idl_type: IdlType = None
    value: ConstExpr = None
    #: Evaluated Python value; filled in by semantic analysis.
    evaluated: object = None


@dataclass
class Include(Declaration):
    """Recorded ``#include``; ``spec`` holds the parsed included file."""

    path: str = ""
    spec: Specification = None


@dataclass
class NativeDecl(Declaration):
    """A ``native`` declaration (opaque implementation-defined type)."""

    def is_variable_type(self):
        return True


def walk(node):
    """Yield *node* and every declaration beneath it, depth-first."""
    yield node
    children = []
    if isinstance(node, (Specification, Module)):
        children = node.declarations
    elif isinstance(node, InterfaceDecl):
        children = node.body
    elif isinstance(node, Operation):
        children = node.parameters
    elif isinstance(node, (StructDecl, ExceptionDecl)):
        children = node.members
    elif isinstance(node, UnionDecl):
        children = node.cases
    elif isinstance(node, Include) and node.spec is not None:
        children = node.spec.declarations
    for child in children:
        yield from walk(child)

"""IDL pretty-printer.

``unparse(spec)`` renders a parsed (optionally analyzed) specification
back to IDL source.  The output re-parses to an equivalent tree, which
the property-based tests rely on (parse ∘ unparse ∘ parse is a fixpoint).
"""

from repro.idl import ast
from repro.idl.types import ArrayType

_INDENT = "  "


def unparse(spec):
    """Render a Specification back to IDL source text."""
    writer = _Writer()
    if spec.prefix:
        writer.line(f'#pragma prefix "{spec.prefix}"')
    for decl in spec.declarations:
        _emit(decl, writer)
    return writer.text()


class _Writer:
    def __init__(self):
        self._lines = []
        self._depth = 0

    def line(self, text=""):
        if text:
            self._lines.append(_INDENT * self._depth + text)
        else:
            self._lines.append("")

    def indent(self):
        self._depth += 1

    def dedent(self):
        self._depth -= 1

    def text(self):
        return "\n".join(self._lines) + "\n"


def _emit(decl, writer):
    if isinstance(decl, ast.Module):
        _emit_module(decl, writer)
    elif isinstance(decl, ast.InterfaceDecl):
        _emit_interface(decl, writer)
    elif isinstance(decl, ast.Forward):
        abstract = "abstract " if decl.is_abstract else ""
        writer.line(f"{abstract}interface {decl.name};")
    elif isinstance(decl, ast.TypedefDecl):
        _emit_typedef(decl, writer)
    elif isinstance(decl, ast.StructDecl):
        _emit_struct(decl, writer)
    elif isinstance(decl, ast.EnumDecl):
        writer.line(f"enum {decl.name} {{{', '.join(decl.enumerators)}}};")
    elif isinstance(decl, ast.UnionDecl):
        _emit_union(decl, writer)
    elif isinstance(decl, ast.ExceptionDecl):
        _emit_exception(decl, writer)
    elif isinstance(decl, ast.ConstDecl):
        writer.line(f"const {_type_name(decl.idl_type)} {decl.name} = {decl.value};")
    elif isinstance(decl, ast.Attribute):
        readonly = "readonly " if decl.readonly else ""
        writer.line(f"{readonly}attribute {_type_name(decl.idl_type)} {decl.name};")
    elif isinstance(decl, ast.Operation):
        _emit_operation(decl, writer)
    elif isinstance(decl, ast.NativeDecl):
        writer.line(f"native {decl.name};")
    elif isinstance(decl, ast.Include):
        writer.line(f'#include "{decl.path}"')
    else:  # pragma: no cover - all node kinds handled above
        raise TypeError(f"cannot unparse {decl!r}")


def _emit_module(module, writer):
    writer.line(f"module {module.name} {{")
    writer.indent()
    if module.prefix:
        writer.line(f'#pragma prefix "{module.prefix}"')
    for decl in module.declarations:
        _emit(decl, writer)
    writer.dedent()
    writer.line("};")


def _emit_interface(interface, writer):
    abstract = "abstract " if interface.is_abstract else ""
    bases = f" : {', '.join(interface.bases)}" if interface.bases else ""
    writer.line(f"{abstract}interface {interface.name}{bases} {{")
    writer.indent()
    for member in interface.body:
        _emit(member, writer)
    writer.dedent()
    writer.line("};")


def _emit_typedef(decl, writer):
    if isinstance(decl.aliased_type, ArrayType):
        array = decl.aliased_type
        dims = "".join(f"[{d}]" for d in array.dimensions)
        writer.line(f"typedef {_type_name(array.element)} {decl.name}{dims};")
    else:
        writer.line(f"typedef {_type_name(decl.aliased_type)} {decl.name};")


def _emit_struct(struct, writer):
    writer.line(f"struct {struct.name} {{")
    writer.indent()
    for member in struct.members:
        writer.line(f"{_type_name(member.idl_type)} {member.name};")
    writer.dedent()
    writer.line("};")


def _emit_union(union, writer):
    writer.line(f"union {union.name} switch ({_type_name(union.discriminator)}) {{")
    writer.indent()
    for case in union.cases:
        for label in case.labels:
            if label is None:
                writer.line("default:")
            else:
                writer.line(f"case {label}:")
        writer.indent()
        writer.line(f"{_type_name(case.idl_type)} {case.name};")
        writer.dedent()
    writer.dedent()
    writer.line("};")


def _emit_exception(exc, writer):
    writer.line(f"exception {exc.name} {{")
    writer.indent()
    for member in exc.members:
        writer.line(f"{_type_name(member.idl_type)} {member.name};")
    writer.dedent()
    writer.line("};")


def _emit_operation(op, writer):
    oneway = "oneway " if op.is_oneway else ""
    params = ", ".join(_param_text(p) for p in op.parameters)
    suffix = ""
    if op.raises:
        suffix += f" raises ({', '.join(op.raises)})"
    if op.context:
        quoted = ", ".join(f'"{c}"' for c in op.context)
        suffix += f" context ({quoted})"
    writer.line(f"{oneway}{_type_name(op.return_type)} {op.name}({params}){suffix};")


def _param_text(param):
    text = f"{param.direction} {_type_name(param.idl_type)} {param.name}"
    if param.default is not None:
        text += f" = {param.default}"
    return text


def _type_name(idl_type):
    return idl_type.idl_name()

"""Source-located diagnostics for the IDL front-end."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in an IDL source file (1-based line and column)."""

    filename: str = "<string>"
    line: int = 1
    column: int = 1

    def __str__(self):
        return f"{self.filename}:{self.line}:{self.column}"


class IdlError(Exception):
    """Base class for all IDL front-end errors."""

    def __init__(self, message, location=None):
        self.message = message
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class IdlSyntaxError(IdlError):
    """Raised by the lexer or parser on malformed input."""


class IdlSemanticError(IdlError):
    """Raised by semantic analysis (unresolved names, bad inheritance...)."""
